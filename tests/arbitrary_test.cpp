// Tests for the arbitrary-deadline federated extension (paper §V future
// work; see federated/arbitrary.h for the soundness arguments).
#include "fedcons/federated/arbitrary.h"

#include <gtest/gtest.h>

#include <array>

#include "fedcons/core/builders.h"
#include "fedcons/gen/taskset_gen.h"
#include "fedcons/sim/cluster_sim.h"
#include "fedcons/util/check.h"
#include "fedcons/util/rng.h"

namespace fedcons {
namespace {

DagTask simple_task(Time wcet, Time deadline, Time period) {
  Dag g;
  g.add_vertex(wcet);
  return DagTask(std::move(g), deadline, period);
}

/// An arbitrary-deadline heavy task: chain with len > T but len ≤ D.
DagTask overlapping_task() {
  std::array<Time, 3> w{4, 4, 4};  // len = vol = 12
  return DagTask(make_chain(w), /*deadline=*/15, /*period=*/5,
                 "overlapping-chain");
}

TEST(ArbitraryFedTest, StrategyNames) {
  EXPECT_STREQ(to_string(ArbitraryStrategy::kClampToPeriod),
               "clamp-to-period");
  EXPECT_STREQ(to_string(ArbitraryStrategy::kPipelined), "pipelined");
}

TEST(ArbitraryFedTest, ConstrainedSystemsDegenerateToFedcons) {
  TaskSystem sys;
  sys.add(make_paper_example_task());
  sys.add(simple_task(2, 10, 20));
  auto arb = arbitrary_federated_schedule(sys, 2);
  ASSERT_TRUE(arb.success);
  for (const auto& c : arb.clusters) EXPECT_EQ(c.instances, 1);
  EXPECT_TRUE(fedcons_schedulable(sys, 2));
}

TEST(ArbitraryFedTest, PipelinedHandlesDeadlineBeyondPeriod) {
  // The overlapping chain: one dag-job takes len = 12 > T = 5, so up to
  // three dag-jobs are live at once. δ = 12/min(15,5) = 2.4 → high-density.
  // Pipelined: μ = 1 (chain), L = 12, k = ⌈12/5⌉ = 3 instances.
  TaskSystem sys;
  sys.add(overlapping_task());
  auto arb = arbitrary_federated_schedule(sys, 4,
                                          ArbitraryStrategy::kPipelined);
  ASSERT_TRUE(arb.success) << arb.describe(sys);
  ASSERT_EQ(arb.clusters.size(), 1u);
  EXPECT_EQ(arb.clusters[0].processors_per_instance, 1);
  EXPECT_EQ(arb.clusters[0].instances, 3);
  EXPECT_EQ(arb.clusters[0].total_processors(), 3);
}

TEST(ArbitraryFedTest, ClampRejectsWhatPipelineAccepts) {
  // Clamping to D' = T = 5 makes the chain infeasible (len 12 > 5): the
  // clamped strategy fails at any m, demonstrating the slack it wastes.
  TaskSystem sys;
  sys.add(overlapping_task());
  EXPECT_FALSE(
      arbitrary_federated_schedulable(sys, 64,
                                      ArbitraryStrategy::kClampToPeriod));
  EXPECT_TRUE(arbitrary_federated_schedulable(
      sys, 3, ArbitraryStrategy::kPipelined));
}

TEST(ArbitraryFedTest, FailsWhenBudgetTooSmall) {
  TaskSystem sys;
  sys.add(overlapping_task());  // needs 3 processors pipelined
  auto r = arbitrary_federated_schedule(sys, 2,
                                        ArbitraryStrategy::kPipelined);
  EXPECT_FALSE(r.success);
  ASSERT_TRUE(r.failed_task.has_value());
  EXPECT_EQ(*r.failed_task, 0u);
}

TEST(ArbitraryFedTest, InfeasibleCriticalPathRejected) {
  std::array<Time, 3> w{10, 10, 10};
  TaskSystem sys;
  sys.add(DagTask(make_chain(w), 20, 5));  // len 30 > D 20
  EXPECT_FALSE(arbitrary_federated_schedulable(sys, 64));
}

TEST(ArbitraryFedTest, MixedSystemWithLowDensityTail) {
  TaskSystem sys;
  sys.add(overlapping_task());            // 3 dedicated processors
  sys.add(simple_task(2, 30, 20));        // low density (δ = 2/20), D > T
  sys.add(simple_task(3, 12, 16));        // constrained low
  auto arb = arbitrary_federated_schedule(sys, 5);
  ASSERT_TRUE(arb.success) << arb.describe(sys);
  EXPECT_EQ(arb.shared_processors, 2);
  std::size_t shared = 0;
  for (const auto& p : arb.shared_assignment) shared += p.size();
  EXPECT_EQ(shared, 2u);
}

TEST(ArbitraryFedTest, DescribeMentionsInstances) {
  TaskSystem sys;
  sys.add(overlapping_task());
  auto arb = arbitrary_federated_schedule(sys, 4);
  EXPECT_NE(arb.describe(sys).find("3 instance(s)"), std::string::npos);
}

TEST(PipelinedSimTest, NoMissesAndNoOverlap) {
  TaskSystem sys;
  sys.add(overlapping_task());
  auto arb = arbitrary_federated_schedule(sys, 4);
  ASSERT_TRUE(arb.success);
  const auto& cluster = arb.clusters[0];
  SimConfig cfg;
  cfg.horizon = 50000;
  cfg.release = ReleaseModel::kSporadic;  // and thus also periodic-legal
  cfg.jitter_frac = 0.4;
  cfg.exec = ExecModel::kUniform;
  cfg.exec_lo = 0.5;
  Rng rng(5);
  auto releases = generate_releases(sys[0], cfg, rng);
  // Throws on overlap; returns stats otherwise.
  SimStats s = simulate_pipelined_cluster(sys[0], cluster.sigma,
                                          cluster.instances, releases, cfg);
  EXPECT_GT(s.jobs_released, 1000u);
  EXPECT_EQ(s.deadline_misses, 0u);
}

TEST(PipelinedSimTest, DetectsUnderProvisionedInstances) {
  // Deliberately run with ONE instance: back-to-back periodic releases
  // overlap on the single chain processor and the validator must throw.
  TaskSystem sys;
  sys.add(overlapping_task());
  auto arb = arbitrary_federated_schedule(sys, 4);
  ASSERT_TRUE(arb.success);
  SimConfig cfg;
  cfg.horizon = 2000;
  Rng rng(6);
  auto releases = generate_releases(sys[0], cfg, rng);
  EXPECT_THROW(simulate_pipelined_cluster(sys[0], arb.clusters[0].sigma,
                                          /*instances=*/1, releases, cfg),
               ContractViolation);
}

// Property: accepted arbitrary-deadline systems simulate miss-free, and the
// pipelined strategy accepts everything the clamped strategy accepts.
class ArbitraryFedPropertyTest
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ArbitraryFedPropertyTest, PipelinedDominatesClampedInAggregate) {
  // Near-domination: pipelined uses no more cluster processors per task and
  // partitions with the looser original deadlines; only bin-packing order
  // anomalies could flip an individual instance, so we assert the aggregate.
  Rng rng(GetParam());
  int clamped_count = 0, pipelined_count = 0;
  for (int trial = 0; trial < 40; ++trial) {
    // Arbitrary-deadline generator: start from a constrained draw, then
    // stretch some deadlines past the period.
    TaskSetParams params;
    params.num_tasks = 6;
    params.total_utilization = 2.0;
    params.utilization_cap = 3.0;
    Rng sys_rng = rng.split();
    TaskSystem base = generate_task_system(sys_rng, params);
    TaskSystem sys;
    for (const auto& t : base) {
      Time d = t.deadline();
      if (sys_rng.bernoulli(0.4)) {
        d = checked_mul(t.deadline(), sys_rng.uniform_int(2, 3));
      }
      Dag g = t.graph();
      sys.add(DagTask(std::move(g), d, t.period(), t.name()));
    }
    if (arbitrary_federated_schedulable(sys, 6,
                                        ArbitraryStrategy::kClampToPeriod)) {
      ++clamped_count;
    }
    if (arbitrary_federated_schedulable(sys, 6,
                                        ArbitraryStrategy::kPipelined)) {
      ++pipelined_count;
    }
  }
  EXPECT_GE(pipelined_count, clamped_count);
}

TEST_P(ArbitraryFedPropertyTest, AcceptedClustersSimulateMissFree) {
  Rng rng(GetParam() ^ 0xabc);
  SimConfig cfg;
  cfg.horizon = 20000;
  cfg.release = ReleaseModel::kSporadic;
  cfg.exec = ExecModel::kUniform;
  int simulated = 0;
  for (int trial = 0; trial < 30; ++trial) {
    TaskSetParams params;
    params.num_tasks = 4;
    params.total_utilization = 2.5;
    params.utilization_cap = 3.0;
    params.period_min = 20;
    params.period_max = 500;
    Rng sys_rng = rng.split();
    TaskSystem base = generate_task_system(sys_rng, params);
    TaskSystem sys;
    for (const auto& t : base) {
      Time d = sys_rng.bernoulli(0.5)
                   ? checked_mul(t.deadline(), 2)
                   : t.deadline();
      Dag g = t.graph();
      sys.add(DagTask(std::move(g), d, t.period(), t.name()));
    }
    auto arb = arbitrary_federated_schedule(sys, 8);
    if (!arb.success) continue;
    for (const auto& c : arb.clusters) {
      Rng rel_rng = sys_rng.split();
      auto releases = generate_releases(sys[c.task], cfg, rel_rng);
      SimStats s = simulate_pipelined_cluster(sys[c.task], c.sigma,
                                              c.instances, releases, cfg);
      EXPECT_EQ(s.deadline_misses, 0u);
      ++simulated;
    }
  }
  EXPECT_GT(simulated, 0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ArbitraryFedPropertyTest,
                         ::testing::Values(81u, 82u, 83u));

}  // namespace
}  // namespace fedcons
