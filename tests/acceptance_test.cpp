// Tests for the experiment harness (acceptance sweeps, speedup experiment,
// report tables).
#include "fedcons/expr/acceptance.h"

#include <gtest/gtest.h>

#include <sstream>

#include "fedcons/expr/reports.h"
#include "fedcons/expr/speedup_experiment.h"
#include "fedcons/federated/speedup.h"
#include "fedcons/util/check.h"

namespace fedcons {
namespace {

SweepConfig small_sweep() {
  SweepConfig cfg;
  cfg.m = 4;
  cfg.normalized_utils = {0.1, 0.5, 0.9};
  cfg.trials = 30;
  cfg.seed = 2024;
  cfg.base.num_tasks = 5;
  cfg.base.period_min = 50;
  cfg.base.period_max = 5000;
  return cfg;
}

TEST(AcceptanceSweepTest, ShapesAndCounts) {
  auto algos = standard_algorithms();
  ASSERT_EQ(algos.size(), 6u);
  auto points = run_acceptance_sweep(small_sweep(), algos);
  ASSERT_EQ(points.size(), 3u);
  for (const auto& p : points) {
    EXPECT_EQ(p.trials, 30u);
    ASSERT_EQ(p.accepted.size(), algos.size());
    for (std::size_t a = 0; a < algos.size(); ++a) {
      EXPECT_LE(p.accepted[a], p.trials);
    }
    EXPECT_LE(p.feasible_upper_bound, p.trials);
  }
}

TEST(AcceptanceSweepTest, FedconsDegradesWithLoad) {
  auto algos = standard_algorithms();
  auto points = run_acceptance_sweep(small_sweep(), algos);
  // FEDCONS is algorithm 0; acceptance at U/m = 0.1 must dominate U/m = 0.9.
  EXPECT_GE(points.front().accepted[0], points.back().accepted[0]);
  // At U/m = 0.1 essentially everything is schedulable.
  EXPECT_GE(points.front().accepted[0], points.front().trials - 3);
}

TEST(AcceptanceSweepTest, NoAlgorithmBeatsNecessaryConditions) {
  auto algos = standard_algorithms();
  auto points = run_acceptance_sweep(small_sweep(), algos);
  // FEDCONS (a sound algorithm) never accepts a system failing the
  // necessary conditions, so its count is bounded by the proxy's.
  for (const auto& p : points) {
    EXPECT_LE(p.accepted[0], p.feasible_upper_bound);
  }
}

TEST(AcceptanceSweepTest, DeterministicAcrossRuns) {
  auto algos = standard_algorithms();
  auto a = run_acceptance_sweep(small_sweep(), algos);
  auto b = run_acceptance_sweep(small_sweep(), algos);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].accepted, b[i].accepted);
    EXPECT_EQ(a[i].feasible_upper_bound, b[i].feasible_upper_bound);
  }
}

TEST(AcceptanceSweepTest, ValidatesConfig) {
  auto algos = standard_algorithms();
  SweepConfig bad = small_sweep();
  bad.m = 0;
  EXPECT_THROW(run_acceptance_sweep(bad, algos), ContractViolation);
  bad = small_sweep();
  bad.trials = 0;
  EXPECT_THROW(run_acceptance_sweep(bad, algos), ContractViolation);
  EXPECT_THROW(run_acceptance_sweep(small_sweep(), {}), ContractViolation);
}

TEST(SpeedupExperimentTest, ProducesSamplesBelowBound) {
  SpeedupExperimentConfig cfg;
  cfg.m = 4;
  cfg.normalized_util = 0.4;
  cfg.samples = 10;
  cfg.max_attempts = 200;
  cfg.base.num_tasks = 5;
  auto r = run_speedup_experiment(cfg);
  EXPECT_GT(r.measured, 0);
  // Empirical speedups should sit far below 3 − 1/m at this load.
  for (double s : r.speeds) {
    EXPECT_GE(s, 1.0);
    EXPECT_LE(s, cfg.max_speed);
  }
}

TEST(WeightedSchedulabilityTest, HandWorkedValues) {
  // Two points: U/m = 0.5 with ratio 1.0 and U/m = 1.0 with ratio 0.4:
  // W = (0.5·1.0 + 1.0·0.4) / 1.5 = 0.6.
  std::vector<AcceptancePoint> points(2);
  points[0].normalized_util = 0.5;
  points[0].trials = 10;
  points[0].accepted = {10};
  points[1].normalized_util = 1.0;
  points[1].trials = 10;
  points[1].accepted = {4};
  auto w = weighted_schedulability(points, 1);
  ASSERT_EQ(w.size(), 1u);
  EXPECT_NEAR(w[0], 0.6, 1e-12);
}

TEST(WeightedSchedulabilityTest, BoundsAndOrdering) {
  auto algos = standard_algorithms();
  auto points = run_acceptance_sweep(small_sweep(), algos);
  auto w = weighted_schedulability(points, algos.size());
  ASSERT_EQ(w.size(), algos.size());
  for (double v : w) {
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 1.0);
  }
  // FEDCONS (index 0) dominates the paper-literal variant? They coincide on
  // constrained DM — equal is fine; it must dominate P-SEQ (index 3) and
  // GEDF-density (index 5).
  EXPECT_GE(w[0], w[3]);
  EXPECT_GE(w[0], w[5]);
}

TEST(WeightedSchedulabilityTest, ValidatesInput) {
  EXPECT_THROW(weighted_schedulability({}, 1), ContractViolation);
  std::vector<AcceptancePoint> bad(1);
  bad[0].normalized_util = 0.5;
  bad[0].trials = 10;
  bad[0].accepted = {1, 2};  // arity mismatch vs num_algorithms = 1
  EXPECT_THROW(weighted_schedulability(bad, 1), ContractViolation);
}

TEST(ReportTest, AcceptanceTableWithConfidenceIntervals) {
  auto algos = standard_algorithms();
  auto points = run_acceptance_sweep(small_sweep(), algos);
  Table t = acceptance_table(points, algos, /*with_ci=*/true);
  std::ostringstream os;
  t.print(os);
  EXPECT_NE(os.str().find("±"), std::string::npos);
}

TEST(ReportTest, AcceptanceTableRendering) {
  auto algos = standard_algorithms();
  auto points = run_acceptance_sweep(small_sweep(), algos);
  Table t = acceptance_table(points, algos);
  EXPECT_EQ(t.num_rows(), points.size());
  EXPECT_EQ(t.num_cols(), 3 + algos.size());
  std::ostringstream os;
  print_report(os, "E3 sample", t, /*also_csv=*/true);
  EXPECT_NE(os.str().find("E3 sample"), std::string::npos);
  EXPECT_NE(os.str().find("FEDCONS"), std::string::npos);
  EXPECT_NE(os.str().find("csv"), std::string::npos);
}

TEST(ReportTest, SpeedupTableRendering) {
  SpeedupExperimentResult r;
  r.speeds = {1.0, 1.25, 1.5};
  r.measured = 3;
  r.accepted_at_unit = 1;
  Table t = speedup_table(r, 4);
  std::ostringstream os;
  t.print(os);
  EXPECT_NE(os.str().find("min speed (mean)"), std::string::npos);
  EXPECT_NE(os.str().find("2.750"), std::string::npos);  // 3 − 1/4
}

}  // namespace
}  // namespace fedcons
