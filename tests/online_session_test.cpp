// AdmissionSession end to end: event semantics (admission control, release
// anomalies, swap atomicity), trace round-trips, memo visibility, the
// differential fuzz harness itself, and replay of the pinned online corpus.
#include "fedcons/online/admission_session.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "fedcons/conform/online_check.h"
#include "fedcons/online/trace.h"
#include "fedcons/util/check.h"
#include "fedcons/util/parse_error.h"

namespace fedcons {
namespace {

DagTask unit_task(Time wcet, Time deadline, Time period,
                  const std::string& name = {}) {
  Dag g;
  g.add_vertex(wcet);
  return DagTask(g, deadline, period, name);
}

// Four parallel WCET-10 vertices, D = T = 20: density 2, μ = 2.
DagTask high_task() {
  Dag g;
  for (int v = 0; v < 4; ++v) g.add_vertex(10);
  return DagTask(g, 20, 20);
}

TEST(AdmissionSession, AdmitAssignsSequentialIdsEvenOnReject) {
  AdmissionSession::Config cfg;
  cfg.processors = 2;
  AdmissionSession session(cfg);
  const EventOutcome a = session.admit(unit_task(10, 64, 64));
  ASSERT_TRUE(a.applied);
  EXPECT_EQ(a.admitted_ids, (std::vector<SessionTaskId>{0}));

  // μ = 2 would consume the whole machine with a resident low task: the
  // shared pool would shrink to 0 bins and the low task fits nowhere.
  const EventOutcome rejected = session.admit(high_task());
  EXPECT_FALSE(rejected.applied);
  EXPECT_EQ(rejected.reject_reason, FedconsFailure::kPartitionPhase);
  EXPECT_TRUE(session.verdict().success);  // state untouched
  EXPECT_EQ(session.num_residents(), 1u);

  // The rejected admit still consumed id 1: the next admit gets id 2.
  const EventOutcome b = session.admit(unit_task(1, 64, 64));
  ASSERT_TRUE(b.applied);
  EXPECT_EQ(b.admitted_ids, (std::vector<SessionTaskId>{2}));
}

TEST(AdmissionSession, HighDensityPhaseOneReject) {
  AdmissionSession::Config cfg;
  cfg.processors = 1;  // μ = 2 > m
  AdmissionSession session(cfg);
  const EventOutcome out = session.admit(high_task());
  EXPECT_FALSE(out.applied);
  EXPECT_EQ(out.reject_reason, FedconsFailure::kHighDensityPhase);
  ASSERT_TRUE(out.failed_task.has_value());
  EXPECT_EQ(*out.failed_task, 0u);
  EXPECT_EQ(session.num_residents(), 0u);
}

TEST(AdmissionSession, ReleaseUnknownIdThrows) {
  AdmissionSession session(AdmissionSession::Config{});
  EXPECT_THROW((void)session.release(0), ContractViolation);
}

TEST(AdmissionSession, SwapIsAllOrNothing) {
  AdmissionSession::Config cfg;
  cfg.processors = 2;
  AdmissionSession session(cfg);
  ASSERT_TRUE(session.admit(unit_task(40, 64, 64)).applied);  // id 0
  ASSERT_TRUE(session.admit(unit_task(40, 64, 64)).applied);  // id 1
  const SessionVerdict before = session.verdict();

  // Infeasible batch: releases id 0 but admits two tasks that cannot both
  // land next to id 1. Nothing may change — including id 0 staying resident.
  AdmissionSession::SwapBatch bad;
  bad.release_ids = {0};
  bad.admits = {unit_task(60, 64, 64), unit_task(60, 64, 64)};
  const EventOutcome failed = session.swap(bad);
  EXPECT_FALSE(failed.applied);
  EXPECT_TRUE(failed.admitted_ids.empty());
  EXPECT_TRUE(session.contains(0));
  EXPECT_EQ(session.num_residents(), 2u);
  EXPECT_EQ(session.verdict().success, before.success);

  // The failed swap still consumed ids 2 and 3 (deterministic id stream).
  AdmissionSession::SwapBatch good;
  good.release_ids = {0, 1};
  good.admits = {unit_task(30, 64, 64)};
  const EventOutcome applied = session.swap(good);
  ASSERT_TRUE(applied.applied);
  EXPECT_EQ(applied.admitted_ids, (std::vector<SessionTaskId>{4}));
  EXPECT_FALSE(session.contains(0));
  EXPECT_FALSE(session.contains(1));
  EXPECT_TRUE(session.contains(4));
}

TEST(AdmissionSession, SwapWithUnknownReleaseThrowsBeforeMutating) {
  AdmissionSession session(AdmissionSession::Config{});
  ASSERT_TRUE(session.admit(unit_task(1, 64, 64)).applied);
  AdmissionSession::SwapBatch batch;
  batch.release_ids = {0, 99};
  EXPECT_THROW((void)session.swap(batch), ContractViolation);
  EXPECT_TRUE(session.contains(0));
}

TEST(AdmissionSession, MemoHitOnRepeatedContent) {
  AdmissionSession::Config cfg;
  cfg.processors = 6;
  AdmissionSession session(cfg);
  const EventOutcome first = session.admit(high_task());
  ASSERT_TRUE(first.applied);
  EXPECT_FALSE(first.memo_hit);
  const EventOutcome second = session.admit(high_task());
  ASSERT_TRUE(second.applied);
  EXPECT_TRUE(second.memo_hit);
  EXPECT_TRUE(session.from_memo(second.admitted_ids[0]));
  EXPECT_FALSE(session.from_memo(first.admitted_ids[0]));
  const MinprocsMemoStats stats = session.memo_stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  // Both residents report the same scan trajectory (the hit replayed it).
  const MinprocsProvenance* a = session.scan_of(first.admitted_ids[0]);
  const MinprocsProvenance* b = session.scan_of(second.admitted_ids[0]);
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(a->chosen_mu, b->chosen_mu);
  ASSERT_EQ(a->probes.size(), b->probes.size());
}

// The constructed first-fit release anomaly (see tests/online_corpus/):
// releasing a task can leave the remaining residents unschedulable; the
// session reports it, further admits are rejected, and a second release
// that repacks feasibly recovers.
TEST(AdmissionSession, ReleaseAnomalyAndRecovery) {
  const std::vector<Time> sizes = {25, 10, 41, 42, 36, 17, 11, 28, 21, 22};
  AdmissionSession::Config cfg;
  cfg.processors = 4;
  AdmissionSession session(cfg);
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    ASSERT_TRUE(session.admit(unit_task(sizes[i], 64, 64)).applied) << i;
  }
  ASSERT_TRUE(session.verdict().success);

  const EventOutcome release = session.release(1);  // the WCET-10 task
  EXPECT_TRUE(release.applied);  // departures always apply...
  EXPECT_FALSE(release.schedulable);  // ...even into a failed state
  const SessionVerdict failed = session.verdict();
  EXPECT_FALSE(failed.success);
  EXPECT_EQ(failed.failure, FedconsFailure::kPartitionPhase);
  ASSERT_TRUE(failed.failed_task.has_value());

  // Admission control holds in the failed state: even a trivial task is
  // rejected because the system as a whole is still unschedulable.
  const EventOutcome tiny = session.admit(unit_task(1, 64, 64));
  EXPECT_FALSE(tiny.applied);

  // Releasing the WCET-36 task lets first-fit repack the rest feasibly.
  const EventOutcome recover = session.release(4);
  EXPECT_TRUE(recover.applied);
  EXPECT_TRUE(recover.schedulable);
  EXPECT_TRUE(session.verdict().success);
}

TEST(OnlineTrace, RoundTripThroughTextForm) {
  OnlineTrace trace;
  trace.processors = 3;
  OnlineEvent admit;
  admit.kind = OnlineEvent::Kind::kAdmit;
  admit.admits.push_back(unit_task(5, 40, 50, "round trip"));
  trace.events.push_back(admit);
  OnlineEvent swap;
  swap.kind = OnlineEvent::Kind::kSwap;
  swap.release_ids = {0};
  swap.admits = {unit_task(7, 30, 30), high_task()};
  trace.events.push_back(swap);
  OnlineEvent release;
  release.kind = OnlineEvent::Kind::kRelease;
  release.release_ids = {2};
  trace.events.push_back(release);

  const std::string text = write_online_trace(trace);
  const OnlineTrace parsed = parse_online_trace(text);
  EXPECT_EQ(parsed.processors, 3);
  ASSERT_EQ(parsed.events.size(), 3u);
  EXPECT_EQ(parsed.events[0].kind, OnlineEvent::Kind::kAdmit);
  EXPECT_EQ(parsed.events[1].kind, OnlineEvent::Kind::kSwap);
  EXPECT_EQ(parsed.events[1].release_ids, (std::vector<SessionTaskId>{0}));
  EXPECT_EQ(parsed.events[1].admits.size(), 2u);
  EXPECT_EQ(parsed.events[2].release_ids, (std::vector<SessionTaskId>{2}));
  // Serialization is canonical: a second round trip is byte-stable.
  EXPECT_EQ(write_online_trace(parsed), text);
}

TEST(OnlineTrace, ParserRejectsMalformedInput) {
  EXPECT_THROW((void)parse_online_trace(""), ParseError);
  EXPECT_THROW((void)parse_online_trace("{\"format\": \"wrong\"}\n"),
               ParseError);
  const std::string header =
      "{\"format\": \"fedcons-online-trace\", \"version\": 1, "
      "\"processors\": 2}\n";
  EXPECT_THROW((void)parse_online_trace(header + "{\"event\": \"bogus\"}\n"),
               ParseError);
  EXPECT_THROW((void)parse_online_trace(
                   header + "{\"event\": \"release\", \"id\": \"x\"}\n"),
               ParseError);
  EXPECT_NO_THROW((void)parse_online_trace(header));
}

// A short in-process run of the differential fuzz: zero divergences, and
// bit-identical reports across thread counts (the determinism contract the
// 500-trial `fedcons_conform --online` acceptance run relies on).
TEST(OnlineFuzz, ShortRunConformsAndIsThreadCountInvariant) {
  OnlineFuzzConfig config;
  config.trials = 40;
  config.events_per_trial = 25;
  config.master_seed = 2026;
  config.num_threads = 1;
  const OnlineFuzzReport serial = run_online_fuzz(config);
  EXPECT_TRUE(serial.ok()) << serial.divergences.front().detail;
  EXPECT_EQ(serial.events, 40u * 25u);
  EXPECT_GT(serial.memo_hits, 0u);

  config.num_threads = 3;
  const OnlineFuzzReport threaded = run_online_fuzz(config);
  EXPECT_TRUE(threaded.ok());
  EXPECT_EQ(threaded.applied, serial.applied);
  EXPECT_EQ(threaded.rejected, serial.rejected);
  EXPECT_EQ(threaded.memo_hits, serial.memo_hits);
  EXPECT_EQ(threaded.memo_misses, serial.memo_misses);
  EXPECT_EQ(threaded.bins_revalidated, serial.bins_revalidated);
  EXPECT_EQ(online_fuzz_report_json(threaded),
            online_fuzz_report_json(serial));
}

// Every pinned trace in tests/online_corpus/ must parse and conform: the
// incremental engine equals the batch analysis after each of its events.
TEST(OnlineCorpus, PinnedTracesConform) {
  const std::filesystem::path dir(ONLINE_CORPUS_DIR);
  ASSERT_TRUE(std::filesystem::exists(dir)) << dir;
  int replayed = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.path().extension() != ".json") continue;
    std::ifstream in(entry.path());
    ASSERT_TRUE(in.is_open()) << entry.path();
    std::stringstream buffer;
    buffer << in.rdbuf();
    const OnlineTrace trace = parse_online_trace(buffer.str());
    EXPECT_GT(trace.events.size(), 0u) << entry.path();
    const auto divergence = check_online_trace(trace);
    EXPECT_FALSE(divergence.has_value())
        << entry.path() << ": " << *divergence;
    ++replayed;
  }
  EXPECT_GE(replayed, 1) << "corpus must never be empty";
}

// The corpus anomaly exhibit replayed through the driver: all eleven events
// apply and the final state is the (legitimate) failed partition.
TEST(OnlineCorpus, ReleaseAnomalyExhibitShape) {
  const std::filesystem::path path =
      std::filesystem::path(ONLINE_CORPUS_DIR) / "release-anomaly.trace.json";
  std::ifstream in(path);
  ASSERT_TRUE(in.is_open()) << path;
  std::stringstream buffer;
  buffer << in.rdbuf();
  const OnlineTrace trace = parse_online_trace(buffer.str());
  AdmissionSession::Config cfg;
  cfg.processors = trace.processors;
  AdmissionSession session(cfg);
  const OnlineReplayResult result =
      replay_online_trace(trace, session, nullptr);
  EXPECT_EQ(result.events, 11u);
  EXPECT_EQ(result.applied, 11u);
  EXPECT_EQ(result.rejected, 0u);
  EXPECT_FALSE(result.final_schedulable);
  EXPECT_FALSE(session.verdict().success);
}

}  // namespace
}  // namespace fedcons
