// Cross-cutting randomized consistency checks ("fuzz" battery): invariants
// that tie independent implementations together across module boundaries.
// These complement the per-module suites with oracle comparisons that only
// make sense at whole-library scope.
#include <gtest/gtest.h>

#include <vector>

#include "fedcons/analysis/dbf.h"
#include "fedcons/analysis/edf_uniproc.h"
#include "fedcons/federated/fedcons_algorithm.h"
#include "fedcons/gen/taskset_gen.h"
#include "fedcons/util/rng.h"

namespace fedcons {
namespace {

class ConsistencyFuzzTest : public ::testing::TestWithParam<std::uint64_t> {};

// Oracle: hyperperiod-exhaustive demand scan on tiny sets must agree with
// both exact EDF implementations.
TEST_P(ConsistencyFuzzTest, EdfAgreesWithHyperperiodScan) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 120; ++trial) {
    std::vector<SporadicTask> tasks;
    int n = static_cast<int>(rng.uniform_int(1, 4));
    Time hyper = 1;
    BigRational u;
    for (int j = 0; j < n; ++j) {
      Time period = rng.uniform_int(2, 12);
      Time deadline = rng.uniform_int(1, period);
      Time wcet = rng.uniform_int(1, deadline);
      tasks.emplace_back(wcet, deadline, period);
      hyper = checked_lcm(hyper, period);
      u += tasks.back().utilization();
    }
    Time dmax = 0;
    for (const auto& t : tasks) dmax = std::max(dmax, t.deadline);
    bool oracle = u <= BigRational(1);
    for (Time t = 1; t <= hyper + dmax && oracle; ++t) {
      if (total_dbf(tasks, t) > t) oracle = false;
    }
    EXPECT_EQ(edf_schedulable_pdc(tasks).schedulable, oracle);
    EXPECT_EQ(edf_schedulable_qpa(tasks).schedulable, oracle);
  }
}

// DBF structure: increments are exactly 0 or C, and occur exactly at
// D + k·T.
TEST_P(ConsistencyFuzzTest, DbfStepStructure) {
  Rng rng(GetParam() ^ 0x1111);
  for (int trial = 0; trial < 80; ++trial) {
    Time period = rng.uniform_int(2, 40);
    Time deadline = rng.uniform_int(1, period);
    Time wcet = rng.uniform_int(1, deadline);
    SporadicTask task(wcet, deadline, period);
    for (Time t = 1; t <= 3 * period + deadline; ++t) {
      Time step = dbf(task, t) - dbf(task, t - 1);
      bool at_step_point = t >= deadline && (t - deadline) % period == 0;
      EXPECT_EQ(step, at_step_point ? wcet : 0) << "t=" << t;
    }
  }
}

// Exact EDF acceptance is sustainable under WCET reduction: shrinking any
// task's execution demand never breaks schedulability.
TEST_P(ConsistencyFuzzTest, EdfSustainableUnderWcetReduction) {
  Rng rng(GetParam() ^ 0x2222);
  int exercised = 0;
  for (int trial = 0; trial < 80; ++trial) {
    std::vector<SporadicTask> tasks;
    int n = static_cast<int>(rng.uniform_int(2, 5));
    for (int j = 0; j < n; ++j) {
      Time period = rng.uniform_int(4, 60);
      Time deadline = rng.uniform_int(2, period);
      Time wcet = rng.uniform_int(1, deadline);
      tasks.emplace_back(wcet, deadline, period);
    }
    if (!edf_schedulable(tasks)) continue;
    ++exercised;
    auto reduced = tasks;
    for (auto& t : reduced) {
      if (t.wcet > 1 && rng.bernoulli(0.6)) {
        t.wcet = rng.uniform_int(1, t.wcet);
      }
    }
    EXPECT_TRUE(edf_schedulable(reduced))
        << "WCET reduction broke exact EDF acceptance (trial " << trial
        << ")";
  }
  EXPECT_GT(exercised, 0);
}

// FEDCONS acceptance is invariant under task-order permutation of the
// system: the high-density phase sums per-task MINPROCS counts (order only
// affects which task is blamed for failure), and PARTITION sorts
// deadline-monotonically internally.
TEST_P(ConsistencyFuzzTest, FedconsPermutationInvariant) {
  Rng rng(GetParam() ^ 0x3333);
  TaskSetParams params;
  params.num_tasks = 8;
  params.total_utilization = 3.5;
  params.utilization_cap = 5.0;
  for (int trial = 0; trial < 20; ++trial) {
    Rng sys_rng = rng.split();
    TaskSystem sys = generate_task_system(sys_rng, params);
    const bool base = fedcons_schedulable(sys, 6);
    std::vector<std::size_t> order(sys.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    for (int shuffle = 0; shuffle < 3; ++shuffle) {
      sys_rng.shuffle(order);
      TaskSystem permuted;
      for (std::size_t i : order) {
        Dag g = sys[i].graph();
        permuted.add(DagTask(std::move(g), sys[i].deadline(),
                             sys[i].period(), sys[i].name()));
      }
      EXPECT_EQ(fedcons_schedulable(permuted, 6), base)
          << "acceptance depended on task ordering (trial " << trial << ")";
    }
  }
}

// FEDCONS acceptance under uniform platform speedups — an empirical smoke
// check pinned to these seeds, NOT a theorem: because MINPROCS re-runs LS
// on the ⌈e/s⌉-scaled graph, Graham's anomaly means a faster platform can in
// principle lengthen a template schedule and flip an acceptance. Such
// regressions appear to be vanishingly rare under these generators (none in
// the pinned sample); if this test ever fails, it has FOUND such an anomaly
// — capture the instance as a regression artifact rather than reseeding.
TEST_P(ConsistencyFuzzTest, FedconsAcceptanceSurvivesUniformSpeedup) {
  Rng rng(GetParam() ^ 0x4444);
  TaskSetParams params;
  params.num_tasks = 6;
  params.total_utilization = 3.0;
  params.utilization_cap = 4.0;
  int exercised = 0;
  for (int trial = 0; trial < 20; ++trial) {
    Rng sys_rng = rng.split();
    TaskSystem sys = generate_task_system(sys_rng, params);
    if (!fedcons_schedulable(sys, 6)) continue;
    ++exercised;
    for (double s : {1.25, 2.0, 4.0}) {
      EXPECT_TRUE(fedcons_schedulable(sys.scaled_by_speed(s), 6))
          << "speed " << s << " lost an accepted system (trial " << trial
          << ")";
    }
  }
  EXPECT_GT(exercised, 0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ConsistencyFuzzTest,
                         ::testing::Values(1001u, 2002u, 3003u));

}  // namespace
}  // namespace fedcons
