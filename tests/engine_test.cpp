// Engine layer: registry lookup, adapters, batch runner, and the
// determinism contract (parallel == serial, bit for bit).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cctype>
#include <set>
#include <stdexcept>

#include "fedcons/core/builders.h"
#include "fedcons/engine/adapters.h"
#include "fedcons/engine/batch_runner.h"
#include "fedcons/engine/registry.h"
#include "fedcons/expr/acceptance.h"
#include "fedcons/expr/speedup_experiment.h"
#include "fedcons/federated/fedcons_algorithm.h"
#include "fedcons/gen/taskset_gen.h"
#include "fedcons/util/check.h"

namespace fedcons {
namespace {

DagTask simple_task(Time wcet, Time deadline, Time period) {
  Dag g;
  g.add_vertex(wcet);
  return DagTask(std::move(g), deadline, period);
}

TaskSystem constrained_system() {
  TaskSystem sys;
  sys.add(simple_task(2, 8, 10));
  sys.add(simple_task(3, 10, 20));
  return sys;
}

TaskSystem arbitrary_system() {
  TaskSystem sys;
  sys.add(simple_task(2, 15, 10));  // D > T
  return sys;
}

// ---------------------------------------------------------------- registry

TEST(RegistryTest, GlobalContainsBuiltinBattery) {
  TestRegistry& reg = TestRegistry::global();
  for (const char* name :
       {"FEDCONS", "FEDCONS-lit", "FED-LI-implicit", "FED-LI-adapt", "P-SEQ",
        "P-DM", "GEDF-density", "ARBFED", "ARBFED-clamp"}) {
    EXPECT_TRUE(reg.contains(name)) << name;
    EXPECT_EQ(reg.make(name)->name(), name);
  }
}

TEST(RegistryTest, LookupIsCaseInsensitive) {
  TestRegistry& reg = TestRegistry::global();
  EXPECT_TRUE(reg.contains("fedcons"));
  EXPECT_TRUE(reg.contains("Gedf-Density"));
  // Display capitalization is preserved regardless of the query's.
  EXPECT_EQ(reg.make("fedcons")->name(), "FEDCONS");
}

TEST(RegistryTest, UnknownNameThrows) {
  EXPECT_FALSE(TestRegistry::global().contains("no-such-algorithm"));
  EXPECT_THROW(TestRegistry::global().make("no-such-algorithm"),
               ContractViolation);
}

TEST(RegistryTest, DuplicateAddThrows) {
  TestRegistry reg;
  register_builtin_tests(reg);
  EXPECT_THROW(
      reg.add(make_function_test("fedcons", "case-insensitive clash",
                                 [](const TaskSystem&, int) { return true; })),
      ContractViolation);
}

TEST(RegistryTest, NamesAreSorted) {
  TestRegistry reg;
  register_builtin_tests(reg);
  auto names = reg.names();
  EXPECT_EQ(names.size(), 9u);
  auto lower = [](std::string s) {
    for (char& c : s) c = static_cast<char>(std::tolower(c));
    return s;
  };
  EXPECT_TRUE(std::is_sorted(names.begin(), names.end(),
                             [&](const std::string& a, const std::string& b) {
                               return lower(a) < lower(b);
                             }));
}

// ---------------------------------------------------------------- adapters

TEST(AdapterTest, FedconsAdapterMatchesDirectCall) {
  TestPtr test = TestRegistry::global().make("FEDCONS");
  TaskSetParams params;
  params.num_tasks = 8;
  params.total_utilization = 3.0;
  Rng rng(17);
  for (int i = 0; i < 20; ++i) {
    Rng sys_rng = rng.split();
    TaskSystem sys = generate_task_system(sys_rng, params);
    EXPECT_EQ(test->admits(sys, 4), fedcons_schedulable(sys, 4)) << i;
  }
}

TEST(AdapterTest, DeadlineClassGating) {
  TestRegistry& reg = TestRegistry::global();
  EXPECT_EQ(reg.make("FEDCONS")->max_deadline_class(),
            DeadlineClass::kConstrained);
  EXPECT_EQ(reg.make("FED-LI-implicit")->max_deadline_class(),
            DeadlineClass::kImplicit);
  EXPECT_EQ(reg.make("ARBFED")->max_deadline_class(),
            DeadlineClass::kArbitrary);

  TaskSystem constrained = constrained_system();
  TaskSystem arbitrary = arbitrary_system();
  EXPECT_TRUE(reg.make("FEDCONS")->supports(constrained));
  EXPECT_FALSE(reg.make("FEDCONS")->supports(arbitrary));
  EXPECT_FALSE(reg.make("FED-LI-implicit")->supports(constrained));
  EXPECT_TRUE(reg.make("ARBFED")->supports(arbitrary));

  // admits_checked turns the contract into a rejection instead of a throw.
  EXPECT_FALSE(reg.make("FEDCONS")->admits_checked(arbitrary, 4));
  EXPECT_TRUE(reg.make("ARBFED")->admits_checked(constrained, 4));
}

TEST(AdapterTest, FunctionTestCarriesMetadata) {
  TestPtr t = make_function_test(
      "always-yes", "accepts everything",
      [](const TaskSystem&, int) { return true; }, DeadlineClass::kArbitrary);
  EXPECT_EQ(t->name(), "always-yes");
  EXPECT_EQ(t->description(), "accepts everything");
  EXPECT_EQ(t->max_deadline_class(), DeadlineClass::kArbitrary);
  EXPECT_TRUE(t->admits(constrained_system(), 1));
}

// ------------------------------------------------------------ batch runner

TEST(BatchRunnerTest, TrialSeedIsPureAndWellSpread) {
  EXPECT_EQ(trial_seed(42, 0), trial_seed(42, 0));
  std::set<std::uint64_t> seeds;
  for (std::uint64_t i = 0; i < 1000; ++i) seeds.insert(trial_seed(42, i));
  EXPECT_EQ(seeds.size(), 1000u);          // no collisions across indices
  EXPECT_NE(trial_seed(42, 0), trial_seed(43, 0));  // master seed matters
}

TEST(BatchRunnerTest, ParallelForCoversEveryIndexOnce) {
  for (int threads : {1, 2, 4}) {
    BatchRunner runner(threads);
    EXPECT_GE(runner.num_threads(), 1);
    constexpr std::size_t n = 257;  // not a multiple of any thread count
    std::vector<std::atomic<int>> hits(n);
    runner.parallel_for(n, [&](std::size_t i) { hits[i].fetch_add(1); });
    for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
    // An empty batch and a reused runner are both fine.
    runner.parallel_for(0, [&](std::size_t) { FAIL(); });
    std::atomic<int> count{0};
    runner.parallel_for(5, [&](std::size_t) { count.fetch_add(1); });
    EXPECT_EQ(count.load(), 5);
  }
}

TEST(BatchRunnerTest, ExceptionsPropagateToCaller) {
  for (int threads : {1, 3}) {
    BatchRunner runner(threads);
    EXPECT_THROW(runner.parallel_for(
                     8,
                     [](std::size_t i) {
                       if (i == 5) throw std::runtime_error("boom");
                     }),
                 std::runtime_error);
    // The pool survives a throwing batch.
    std::atomic<int> count{0};
    runner.parallel_for(3, [&](std::size_t) { count.fetch_add(1); });
    EXPECT_EQ(count.load(), 3);
  }
}

TEST(BatchRunnerTest, RunTrialsIsThreadCountInvariant) {
  const std::function<std::uint64_t(std::size_t, Rng&)> trial =
      [](std::size_t i, Rng& rng) { return rng.next_u64() ^ i; };
  BatchRunner serial(1);
  auto expected = serial.run_trials<std::uint64_t>(100, 9001, trial);
  for (int threads : {2, 4}) {
    BatchRunner runner(threads);
    EXPECT_EQ(runner.run_trials<std::uint64_t>(100, 9001, trial), expected)
        << threads;
  }
}

// ------------------------------------------- determinism of the experiments

std::vector<AcceptancePoint> small_sweep(int num_threads) {
  SweepConfig cfg;
  cfg.m = 4;
  cfg.trials = 30;
  cfg.seed = 1234;
  cfg.num_threads = num_threads;
  cfg.normalized_utils = {0.3, 0.6, 0.9};
  cfg.base.num_tasks = 6;
  return run_acceptance_sweep(cfg, standard_algorithms());
}

TEST(DeterminismTest, SweepVerdictsIdenticalAcrossThreadCounts) {
  auto serial = small_sweep(1);
  ASSERT_EQ(serial.size(), 3u);
  for (int threads : {2, 4}) {
    auto parallel = small_sweep(threads);
    ASSERT_EQ(parallel.size(), serial.size()) << threads;
    for (std::size_t p = 0; p < serial.size(); ++p) {
      EXPECT_EQ(parallel[p].normalized_util, serial[p].normalized_util);
      EXPECT_EQ(parallel[p].trials, serial[p].trials);
      EXPECT_EQ(parallel[p].feasible_upper_bound,
                serial[p].feasible_upper_bound);
      EXPECT_EQ(parallel[p].accepted, serial[p].accepted);
      EXPECT_EQ(parallel[p].counters, serial[p].counters);
    }
  }
}

TEST(DeterminismTest, SpeedupExperimentIdenticalAcrossThreadCounts) {
  auto run = [](int num_threads) {
    SpeedupExperimentConfig cfg;
    cfg.m = 4;
    cfg.samples = 10;
    cfg.max_attempts = 300;
    cfg.seed = 77;
    cfg.num_threads = num_threads;
    cfg.base.num_tasks = 6;
    return run_speedup_experiment(cfg);
  };
  auto serial = run(1);
  EXPECT_EQ(serial.measured,
            static_cast<int>(serial.speeds.size()) + serial.never_accepted);
  for (int threads : {2, 4}) {
    auto parallel = run(threads);
    EXPECT_EQ(parallel.speeds, serial.speeds) << threads;
    EXPECT_EQ(parallel.accepted_at_unit, serial.accepted_at_unit);
    EXPECT_EQ(parallel.never_accepted, serial.never_accepted);
    EXPECT_EQ(parallel.measured, serial.measured);
  }
}

TEST(DeterminismTest, CountersAccumulateAcrossAlgorithms) {
  auto points = small_sweep(2);
  // The battery includes FEDCONS and P-SEQ, so every point must have done
  // some DBF* partitioning work and (at nontrivial load) LS/MINPROCS work.
  std::uint64_t dbf = 0, ls = 0, scans = 0;
  for (const auto& p : points) {
    dbf += p.counters.dbf_star_evaluations;
    ls += p.counters.ls_invocations;
    scans += p.counters.minprocs_scan_iterations;
  }
  EXPECT_GT(dbf, 0u);
  // LS runs only when high-density tasks exist; the heavy 0.9-load point
  // makes that overwhelmingly likely, and MINPROCS scans accompany it.
  EXPECT_EQ(ls == 0, scans == 0);
}

}  // namespace
}  // namespace fedcons
