// Tests for release/execution-time sequence generation.
#include "fedcons/sim/release_generator.h"

#include <gtest/gtest.h>

#include "fedcons/core/builders.h"
#include "fedcons/util/check.h"

namespace fedcons {
namespace {

TEST(ReleaseGenTest, PeriodicSpacingIsExactlyT) {
  DagTask t = make_paper_example_task();  // D 16, T 20
  SimConfig cfg;
  cfg.horizon = 200;
  Rng rng(1);
  auto rel = generate_releases(t, cfg, rng);
  // Releases at 0, 20, …, 180 (deadline 196 ≤ 200): 10 of them.
  ASSERT_EQ(rel.size(), 10u);
  for (std::size_t i = 0; i < rel.size(); ++i) {
    EXPECT_EQ(rel[i].release, static_cast<Time>(i) * 20);
  }
}

TEST(ReleaseGenTest, SporadicSpacingAtLeastT) {
  DagTask t = make_paper_example_task();
  SimConfig cfg;
  cfg.horizon = 100000;
  cfg.release = ReleaseModel::kSporadic;
  cfg.jitter_frac = 0.5;
  Rng rng(2);
  auto rel = generate_releases(t, cfg, rng);
  ASSERT_GT(rel.size(), 10u);
  bool saw_jitter = false;
  for (std::size_t i = 1; i < rel.size(); ++i) {
    Time gap = rel[i].release - rel[i - 1].release;
    EXPECT_GE(gap, t.period());
    EXPECT_LE(gap, t.period() + t.period() / 2);
    if (gap > t.period()) saw_jitter = true;
  }
  EXPECT_TRUE(saw_jitter);
}

TEST(ReleaseGenTest, WcetModeUsesFullWcets) {
  DagTask t = make_paper_example_task();
  SimConfig cfg;
  Rng rng(3);
  auto rel = generate_releases(t, cfg, rng);
  for (const auto& job : rel) {
    ASSERT_EQ(job.exec_times.size(), t.graph().num_vertices());
    for (std::size_t v = 0; v < job.exec_times.size(); ++v) {
      EXPECT_EQ(job.exec_times[v], t.graph().wcet(static_cast<VertexId>(v)));
    }
  }
}

TEST(ReleaseGenTest, UniformExecWithinBounds) {
  DagTask t = make_paper_example_task();
  SimConfig cfg;
  cfg.exec = ExecModel::kUniform;
  cfg.exec_lo = 0.5;
  cfg.horizon = 100000;
  Rng rng(4);
  auto rel = generate_releases(t, cfg, rng);
  bool saw_reduced = false;
  for (const auto& job : rel) {
    for (std::size_t v = 0; v < job.exec_times.size(); ++v) {
      Time w = t.graph().wcet(static_cast<VertexId>(v));
      EXPECT_GE(job.exec_times[v], 1);
      EXPECT_LE(job.exec_times[v], w);
      if (job.exec_times[v] < w) saw_reduced = true;
    }
  }
  EXPECT_TRUE(saw_reduced);
}

TEST(ReleaseGenTest, DeadlinesFitHorizon) {
  DagTask t = make_paper_example_task();
  SimConfig cfg;
  cfg.horizon = 77;  // releases at 0, 20, 40, 60 have deadlines ≤ 76 ✓ 76≤77
  Rng rng(5);
  auto rel = generate_releases(t, cfg, rng);
  for (const auto& job : rel) {
    EXPECT_LE(job.release + t.deadline(), cfg.horizon);
  }
  ASSERT_FALSE(rel.empty());
  EXPECT_EQ(rel.back().release, 60);
}

TEST(ReleaseGenTest, SequentialReleases) {
  SimConfig cfg;
  cfg.horizon = 50;
  Rng rng(6);
  auto rel = generate_sequential_releases(3, 10, 15, cfg, rng);
  // Releases at 0, 15, 30 (deadline 40 ≤ 50); release 45 → deadline 55 > 50.
  ASSERT_EQ(rel.size(), 3u);
  EXPECT_EQ(rel[0].abs_deadline, 10);
  EXPECT_EQ(rel[2].release, 30);
  for (const auto& j : rel) EXPECT_EQ(j.exec_time, 3);
}

TEST(ReleaseGenTest, ValidatesArguments) {
  SimConfig cfg;
  cfg.horizon = 0;
  Rng rng(7);
  EXPECT_THROW(generate_releases(make_paper_example_task(), cfg, rng),
               ContractViolation);
  SimConfig cfg2;
  cfg2.exec_lo = 0.0;
  EXPECT_THROW(generate_releases(make_paper_example_task(), cfg2, rng),
               ContractViolation);
  EXPECT_THROW(generate_sequential_releases(0, 1, 1, SimConfig{}, rng),
               ContractViolation);
}

}  // namespace
}  // namespace fedcons
