// Tests for the exact branch-and-bound makespan solver, including the
// empirical face of Lemma 1: LS/OPT never exceeds 2 − 1/m.
#include "fedcons/listsched/optimal_makespan.h"

#include <gtest/gtest.h>

#include <array>

#include "fedcons/core/builders.h"
#include "fedcons/gen/dag_gen.h"
#include "fedcons/listsched/anomaly.h"
#include "fedcons/listsched/list_scheduler.h"
#include "fedcons/util/check.h"
#include "fedcons/util/rng.h"

namespace fedcons {
namespace {

TEST(OptimalMakespanTest, SingleVertex) {
  Dag g;
  g.add_vertex(7);
  auto r = optimal_makespan(g, 3);
  EXPECT_EQ(r.makespan, 7);
  EXPECT_TRUE(r.exact);
}

TEST(OptimalMakespanTest, ChainEqualsVolume) {
  std::array<Time, 4> w{2, 5, 1, 4};
  Dag g = make_chain(w);
  EXPECT_EQ(optimal_makespan(g, 1).makespan, 12);
  EXPECT_EQ(optimal_makespan(g, 4).makespan, 12);
}

TEST(OptimalMakespanTest, IndependentJobsPackOptimally) {
  // {3,3,2,2,2} on 2 machines: OPT = 6 (3+3 | 2+2+2); vertex-order LS gets 7.
  std::array<Time, 5> w{3, 3, 2, 2, 2};
  Dag g = make_independent(w);
  EXPECT_EQ(list_schedule(g, 2).makespan(), 7);
  auto r = optimal_makespan(g, 2);
  EXPECT_TRUE(r.exact);
  EXPECT_EQ(r.makespan, 6);
}

TEST(OptimalMakespanTest, ForkJoinUsesParallelism) {
  std::array<Time, 3> branches{4, 4, 4};
  Dag g = make_fork_join(1, branches, 1);
  EXPECT_EQ(optimal_makespan(g, 3).makespan, 6);   // 1 + 4 + 1
  EXPECT_EQ(optimal_makespan(g, 2).makespan, 10);  // 1 + (4+4 | 4) + 1
  EXPECT_EQ(optimal_makespan(g, 1).makespan, 14);  // vol
}

TEST(OptimalMakespanTest, GrahamInstanceOptimum) {
  // The classic 9-job instance: LS achieves 12 on 3 machines; the optimum
  // is also 12 (T9 (9 units) must follow T1 (3 units): 3 + 9 = 12 = len).
  AnomalyInstance inst = make_graham_anomaly_instance();
  auto r = optimal_makespan(inst.dag, inst.processors);
  EXPECT_TRUE(r.exact);
  EXPECT_EQ(r.makespan, 12);
}

TEST(OptimalMakespanTest, ValidatesArguments) {
  Dag g;
  EXPECT_THROW(optimal_makespan(g, 1), ContractViolation);
  g.add_vertex(1);
  EXPECT_THROW(optimal_makespan(g, 0), ContractViolation);
  Dag big;
  for (int i = 0; i < 21; ++i) big.add_vertex(1);
  EXPECT_THROW(optimal_makespan(big, 2), ContractViolation);
}

TEST(OptimalMakespanTest, BudgetExhaustionIsReported) {
  Rng rng(9);
  LayeredDagParams p;
  p.min_layers = 3;
  p.max_layers = 3;
  p.min_width = 4;
  p.max_width = 4;
  Dag g = generate_layered_dag(rng, p);
  auto r = optimal_makespan(g, 2, /*node_budget=*/3);
  EXPECT_FALSE(r.exact);
  // Incumbent still valid (it is an LS makespan).
  EXPECT_GE(r.makespan, makespan_lower_bound(g, 2));
}

// Property battery over random small DAGs.
class OptimalMakespanPropertyTest
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, int>> {};

TEST_P(OptimalMakespanPropertyTest, BoundsAndLemmaOne) {
  auto [seed, m] = GetParam();
  Rng rng(seed);
  LayeredDagParams p;
  p.min_layers = 2;
  p.max_layers = 4;
  p.min_width = 1;
  p.max_width = 3;
  p.max_wcet = 9;
  for (int trial = 0; trial < 25; ++trial) {
    Dag g = generate_layered_dag(rng, p);
    if (g.num_vertices() > 12) continue;
    auto opt = optimal_makespan(g, m);
    if (!opt.exact) continue;
    // OPT respects the universal lower bound and is ≤ every LS run.
    EXPECT_GE(opt.makespan, makespan_lower_bound(g, m));
    for (ListPolicy policy :
         {ListPolicy::kVertexOrder, ListPolicy::kCriticalPath,
          ListPolicy::kLongestWcet}) {
      Time ls = list_schedule(g, m, policy).makespan();
      EXPECT_LE(opt.makespan, ls);
      // Lemma 1's empirical face: LS ≤ (2 − 1/m)·OPT_preemptive ≤
      // (2 − 1/m)·OPT_nonpreemptive. Integer-safe: m·LS ≤ (2m−1)·OPT.
      EXPECT_LE(static_cast<long long>(m) * ls,
                static_cast<long long>(2 * m - 1) * opt.makespan)
          << "policy " << to_string(policy) << " m=" << m;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, OptimalMakespanPropertyTest,
    ::testing::Combine(::testing::Values(1u, 2u), ::testing::Values(2, 3)));

}  // namespace
}  // namespace fedcons
