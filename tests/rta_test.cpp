// Tests for fixed-priority response-time analysis.
#include "fedcons/analysis/rta.h"

#include <gtest/gtest.h>

#include <vector>

#include "fedcons/analysis/edf_uniproc.h"
#include "fedcons/util/rng.h"

namespace fedcons {
namespace {

TEST(ResponseTimeTest, NoInterferenceIsWcet) {
  SporadicTask t(5, 20, 20);
  auto r = response_time(t, {}, 100);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(*r, 5);
}

TEST(ResponseTimeTest, ClassicTextbookExample) {
  // hp: (C=1, T=4), (C=2, T=6); task C=3.
  // R = 3 + ⌈R/4⌉·1 + ⌈R/6⌉·2 → 3→6→8→9→10→10: fixpoint 10.
  std::vector<SporadicTask> hp{SporadicTask(1, 4, 4), SporadicTask(2, 6, 6)};
  SporadicTask t(3, 20, 20);
  auto r = response_time(t, hp, 100);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(*r, 10);
}

TEST(ResponseTimeTest, DivergesBeyondBound) {
  // Overloaded: hp utilization 1 leaves nothing for the task.
  std::vector<SporadicTask> hp{SporadicTask(4, 4, 4)};
  SporadicTask t(1, 50, 50);
  EXPECT_FALSE(response_time(t, hp, 50).has_value());
}

TEST(FpSchedulableTest, AcceptsAndReportsResponses) {
  std::vector<SporadicTask> tasks{SporadicTask(1, 4, 4),
                                  SporadicTask(2, 6, 6),
                                  SporadicTask(3, 20, 20)};
  auto r = fp_schedulable(tasks);
  ASSERT_TRUE(r.schedulable);
  ASSERT_EQ(r.response_times.size(), 3u);
  EXPECT_EQ(r.response_times[0], 1);
  EXPECT_EQ(r.response_times[1], 3);
  EXPECT_EQ(r.response_times[2], 10);
}

TEST(FpSchedulableTest, RejectsOnDeadlineOverrun) {
  std::vector<SporadicTask> tasks{SporadicTask(3, 4, 4),
                                  SporadicTask(3, 8, 8)};
  // Low-priority response: 3 + ⌈R/4⌉·3 → 3→6→9 > 8.
  EXPECT_FALSE(fp_schedulable(tasks).schedulable);
}

TEST(FpSchedulableTest, EmptySetSchedulable) {
  EXPECT_TRUE(fp_schedulable({}).schedulable);
}

TEST(DeadlineMonotonicOrderTest, SortsByDeadlineStably) {
  std::vector<SporadicTask> tasks{SporadicTask(1, 10, 10),
                                  SporadicTask(1, 5, 10),
                                  SporadicTask(1, 10, 20),
                                  SporadicTask(1, 3, 10)};
  auto order = deadline_monotonic_order(tasks);
  EXPECT_EQ(order, (std::vector<std::size_t>{3, 1, 0, 2}));
}

TEST(DmSchedulableTest, PriorityOrderMatters) {
  // Rate-monotonic-hostile pair: under the GIVEN order (long deadline
  // first) unschedulable, under DM schedulable.
  std::vector<SporadicTask> wrong_order{SporadicTask(4, 10, 10),
                                        SporadicTask(2, 4, 10)};
  EXPECT_FALSE(fp_schedulable(wrong_order).schedulable);
  EXPECT_TRUE(dm_schedulable(wrong_order));
}

TEST(DmVsEdfTest, DmNeverBeatsExactEdf) {
  // EDF is optimal on one processor: anything DM accepts, EDF accepts.
  Rng rng(13);
  int dm_accepted = 0;
  for (int trial = 0; trial < 150; ++trial) {
    std::vector<SporadicTask> tasks;
    int n = static_cast<int>(rng.uniform_int(1, 6));
    for (int j = 0; j < n; ++j) {
      Time period = rng.uniform_int(4, 100);
      Time deadline = rng.uniform_int(2, period);
      Time wcet = rng.uniform_int(1, std::max<Time>(1, deadline / 2));
      tasks.emplace_back(wcet, deadline, period);
    }
    if (dm_schedulable(tasks)) {
      ++dm_accepted;
      EXPECT_TRUE(edf_schedulable(tasks))
          << "DM accepted a set the exact EDF test rejects (trial " << trial
          << ")";
    }
  }
  EXPECT_GT(dm_accepted, 0);
}

TEST(ResponseTimeTest, MonotoneInInterference) {
  // Adding a higher-priority task never reduces the response time.
  SporadicTask t(3, 50, 50);
  std::vector<SporadicTask> hp;
  Time prev = 0;
  for (int i = 0; i < 4; ++i) {
    auto r = response_time(t, hp, 200);
    ASSERT_TRUE(r.has_value());
    EXPECT_GE(*r, prev);
    prev = *r;
    hp.emplace_back(1, 10 + i, 10 + i);
  }
}

}  // namespace
}  // namespace fedcons
