// Tests for procedure MINPROCS (paper, Figure 3).
#include "fedcons/federated/minprocs.h"

#include <gtest/gtest.h>

#include <array>

#include "fedcons/core/builders.h"
#include "fedcons/gen/dag_gen.h"
#include "fedcons/util/rng.h"

namespace fedcons {
namespace {

TEST(MinprocsTest, LowerBoundFormula) {
  // vol = 9, min(D,T) = 16 → ⌈9/16⌉ = 1.
  EXPECT_EQ(minprocs_lower_bound(make_paper_example_task()), 1);
  // vol = 30, D = 10 → ⌈3⌉ = 3.
  Dag g;
  for (int i = 0; i < 30; ++i) g.add_vertex(1);
  DagTask wide(std::move(g), 10, 100);
  EXPECT_EQ(minprocs_lower_bound(wide), 3);
}

TEST(MinprocsTest, PaperExampleNeedsOneProcessor) {
  // Low-density task: vol 9 ≤ D 16, even one processor meets the deadline.
  auto r = minprocs(make_paper_example_task(), 4);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->processors, 1);
  EXPECT_LE(r->sigma.makespan(), 16);
}

TEST(MinprocsTest, WideTaskNeedsExactlyItsParallelism) {
  // 6 independent unit jobs, D = 2: three processors pack them 2 deep.
  std::array<Time, 6> w{1, 1, 1, 1, 1, 1};
  DagTask t(make_independent(w), 2, 10);
  auto r = minprocs(t, 8);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->processors, 3);
  EXPECT_EQ(r->sigma.makespan(), 2);
}

TEST(MinprocsTest, FailsWhenBudgetTooSmall) {
  std::array<Time, 6> w{1, 1, 1, 1, 1, 1};
  DagTask t(make_independent(w), 2, 10);
  EXPECT_FALSE(minprocs(t, 2).has_value());
  EXPECT_FALSE(minprocs(t, 0).has_value());
}

TEST(MinprocsTest, InfeasibleCriticalPathFailsImmediately) {
  std::array<Time, 3> w{5, 5, 5};
  DagTask t(make_chain(w), 10, 20);  // len 15 > D 10
  EXPECT_FALSE(minprocs(t, 1000).has_value());
}

TEST(MinprocsTest, ChainNeedsOneProcessor) {
  std::array<Time, 3> w{5, 5, 5};
  DagTask t(make_chain(w), 15, 20);
  auto r = minprocs(t, 8);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->processors, 1);
  EXPECT_EQ(r->sigma.makespan(), 15);
}

TEST(MinprocsTest, SigmaValidatesAgainstGraph) {
  std::array<Time, 3> branches{7, 5, 3};
  DagTask t(make_fork_join(1, branches, 1), 12, 30);
  auto r = minprocs(t, 8);
  ASSERT_TRUE(r.has_value());
  EXPECT_TRUE(r->sigma.validate_against(t.graph()));
  EXPECT_LE(r->sigma.makespan(), t.deadline());
}

TEST(MinprocsTest, ScanStartsAtDensityCeiling) {
  // High-density task where ⌈δ⌉ already suffices: 8 unit jobs, D = 2:
  // δ = 4, and 4 processors give makespan 2.
  std::array<Time, 8> w{1, 1, 1, 1, 1, 1, 1, 1};
  DagTask t(make_independent(w), 2, 4);
  EXPECT_EQ(minprocs_lower_bound(t), 4);
  auto r = minprocs(t, 16);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->processors, 4);
}

// Property: over random DAG tasks, MINPROCS output is structurally valid,
// never below ⌈δ⌉, and "minimal" with respect to the LS makespan scan.
class MinprocsPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MinprocsPropertyTest, OutputsAreValidAndMinimal) {
  Rng rng(GetParam());
  LayeredDagParams params;
  params.max_width = 6;
  params.max_wcet = 12;
  for (int trial = 0; trial < 40; ++trial) {
    Dag g = generate_layered_dag(rng, params);
    // Deadline between len and vol keeps the instance interesting.
    Time deadline = rng.uniform_int(g.len(), g.vol());
    DagTask t(g, deadline, deadline + rng.uniform_int(0, 50));
    auto r = minprocs(t, 12);
    if (!r.has_value()) continue;
    EXPECT_GE(r->processors, minprocs_lower_bound(t));
    EXPECT_LE(r->sigma.makespan(), t.deadline());
    EXPECT_TRUE(r->sigma.validate_against(t.graph()));
    // Minimality within the scan: every smaller μ ≥ ⌈δ⌉ must overshoot D.
    for (int mu = minprocs_lower_bound(t); mu < r->processors; ++mu) {
      EXPECT_GT(list_schedule(t.graph(), mu).makespan(), t.deadline());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MinprocsPropertyTest,
                         ::testing::Values(41u, 42u, 43u));

}  // namespace
}  // namespace fedcons
