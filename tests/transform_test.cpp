// Tests for DAG transformations: transitive reduction, chain merging,
// sequentialization.
#include "fedcons/core/transform.h"

#include <gtest/gtest.h>

#include <array>

#include "fedcons/core/builders.h"
#include "fedcons/gen/dag_gen.h"
#include "fedcons/util/check.h"
#include "fedcons/util/rng.h"

namespace fedcons {
namespace {

TEST(TransitiveReductionTest, RemovesImpliedEdge) {
  // a→b→c plus the redundant a→c.
  Dag g = DagBuilder{}
              .vertices({1, 2, 3})
              .edge(0, 1)
              .edge(1, 2)
              .edge(0, 2)
              .build();
  EXPECT_FALSE(is_transitively_reduced(g));
  Dag r = transitive_reduction(g);
  EXPECT_EQ(r.num_edges(), 2u);
  EXPECT_TRUE(r.has_edge(0, 1));
  EXPECT_TRUE(r.has_edge(1, 2));
  EXPECT_FALSE(r.has_edge(0, 2));
  EXPECT_TRUE(is_transitively_reduced(r));
}

TEST(TransitiveReductionTest, KeepsNecessaryEdges) {
  DagTask t = make_paper_example_task();  // already reduced
  EXPECT_TRUE(is_transitively_reduced(t.graph()));
  Dag r = transitive_reduction(t.graph());
  EXPECT_EQ(r.num_edges(), t.graph().num_edges());
}

TEST(TransitiveReductionTest, PreservesReachabilityAndMetrics) {
  Rng rng(3);
  LayeredDagParams p;
  p.skip_probability = 0.4;  // plenty of redundant skip edges
  for (int trial = 0; trial < 40; ++trial) {
    Dag g = generate_layered_dag(rng, p);
    Dag r = transitive_reduction(g);
    EXPECT_LE(r.num_edges(), g.num_edges());
    EXPECT_EQ(r.vol(), g.vol());
    EXPECT_EQ(r.len(), g.len());
    EXPECT_EQ(r.width(), g.width());
    EXPECT_TRUE(is_transitively_reduced(r));
    for (VertexId u = 0; u < g.num_vertices(); ++u) {
      for (VertexId v = 0; v < g.num_vertices(); ++v) {
        if (u == v) continue;
        EXPECT_EQ(r.reaches(u, v), g.reaches(u, v))
            << "reachability changed for (" << u << ", " << v << ")";
      }
    }
  }
}

TEST(MergeLinearChainsTest, CollapsesPureChain) {
  std::array<Time, 4> w{2, 3, 4, 5};
  Dag g = make_chain(w);
  Dag m = merge_linear_chains(g);
  EXPECT_EQ(m.num_vertices(), 1u);
  EXPECT_EQ(m.num_edges(), 0u);
  EXPECT_EQ(m.vol(), 14);
  EXPECT_EQ(m.len(), 14);
}

TEST(MergeLinearChainsTest, KeepsBranchingStructure) {
  // src → {chain a1→a2, b} → sink: the interior chain a1→a2 merges; the
  // fork/join vertices survive.
  Dag g = DagBuilder{}
              .vertices({1, 2, 3, 4, 1})  // src, a1, a2, b, sink
              .edge(0, 1)
              .edge(1, 2)
              .edge(0, 3)
              .edge(2, 4)
              .edge(3, 4)
              .build();
  Dag m = merge_linear_chains(g);
  EXPECT_EQ(m.num_vertices(), 4u);  // src, (a1+a2), b, sink
  EXPECT_EQ(m.vol(), g.vol());
  EXPECT_EQ(m.len(), g.len());
  EXPECT_EQ(m.width(), g.width());
}

TEST(MergeLinearChainsTest, NoOpOnBranchyGraphs) {
  std::array<Time, 3> branches{4, 5, 6};
  Dag g = make_fork_join(1, branches, 1);
  Dag m = merge_linear_chains(g);
  EXPECT_EQ(m.num_vertices(), g.num_vertices());
  EXPECT_EQ(m.num_edges(), g.num_edges());
}

TEST(MergeLinearChainsTest, PreservesLenVolOnRandomDags) {
  Rng rng(4);
  LayeredDagParams p;
  p.min_width = 1;
  p.max_width = 3;
  for (int trial = 0; trial < 40; ++trial) {
    Dag g = generate_layered_dag(rng, p);
    Dag m = merge_linear_chains(g);
    EXPECT_LE(m.num_vertices(), g.num_vertices());
    EXPECT_EQ(m.vol(), g.vol());
    EXPECT_EQ(m.len(), g.len());
    // Idempotent.
    Dag mm = merge_linear_chains(m);
    EXPECT_EQ(mm.num_vertices(), m.num_vertices());
  }
}

TEST(SequentializeTest, ChainsEverything) {
  DagTask t = make_paper_example_task();
  Dag s = sequentialize(t.graph());
  EXPECT_EQ(s.num_vertices(), 5u);
  EXPECT_EQ(s.num_edges(), 4u);
  EXPECT_EQ(s.vol(), 9);
  EXPECT_EQ(s.len(), 9);  // len == vol after sequentialization
  EXPECT_EQ(s.width(), 1u);
  EXPECT_TRUE(s.is_acyclic());
}

TEST(SequentializeTest, RespectsOriginalPrecedence) {
  Rng rng(5);
  LayeredDagParams p;
  for (int trial = 0; trial < 20; ++trial) {
    Dag g = generate_layered_dag(rng, p);
    Dag s = sequentialize(g);
    // Every original edge must still be a forward path in the chain.
    for (VertexId u = 0; u < g.num_vertices(); ++u) {
      for (VertexId v : g.successors(u)) {
        EXPECT_TRUE(s.reaches(u, v));
      }
    }
  }
}

TEST(TransformTest, ValidateArguments) {
  Dag cyc;
  cyc.add_vertex(1);
  cyc.add_vertex(1);
  cyc.add_edge(0, 1);
  cyc.add_edge(1, 0);
  EXPECT_THROW(transitive_reduction(cyc), ContractViolation);
  EXPECT_THROW(merge_linear_chains(cyc), ContractViolation);
  EXPECT_THROW(sequentialize(Dag{}), ContractViolation);
  EXPECT_FALSE(is_transitively_reduced(cyc));
}

}  // namespace
}  // namespace fedcons
