// Tests for the fluent DAG builder and canned topologies.
#include "fedcons/core/builders.h"

#include <gtest/gtest.h>

#include <array>

#include "fedcons/util/check.h"

namespace fedcons {
namespace {

TEST(DagBuilderTest, FluentConstruction) {
  Dag g = DagBuilder{}
              .vertices({1, 2, 3})
              .edge(0, 1)
              .edge(1, 2)
              .build();
  EXPECT_EQ(g.num_vertices(), 3u);
  EXPECT_EQ(g.num_edges(), 2u);
  EXPECT_EQ(g.len(), 6);
}

TEST(DagBuilderTest, FanOutFanIn) {
  Dag g = DagBuilder{}
              .vertices({1, 1, 1, 1, 1})
              .fan_out(0, {1, 2, 3})
              .fan_in({1, 2, 3}, 4)
              .build();
  EXPECT_EQ(g.num_edges(), 6u);
  EXPECT_EQ(g.len(), 3);
  EXPECT_EQ(g.width(), 3u);
}

TEST(DagBuilderTest, BuildRejectsCycle) {
  DagBuilder b;
  b.vertices({1, 1}).edge(0, 1).edge(1, 0);
  EXPECT_THROW(b.build(), ContractViolation);
}

TEST(DagBuilderTest, BuildResetsBuilder) {
  DagBuilder b;
  b.vertex(7);
  Dag first = b.build();
  EXPECT_EQ(first.num_vertices(), 1u);
  b.vertex(3);
  Dag second = b.build();
  EXPECT_EQ(second.num_vertices(), 1u);
  EXPECT_EQ(second.wcet(0), 3);
}

TEST(MakeChainTest, MetricsMatch) {
  std::array<Time, 4> w{2, 3, 4, 5};
  Dag g = make_chain(w);
  EXPECT_EQ(g.num_vertices(), 4u);
  EXPECT_EQ(g.num_edges(), 3u);
  EXPECT_EQ(g.vol(), 14);
  EXPECT_EQ(g.len(), 14);
  EXPECT_EQ(g.width(), 1u);
}

TEST(MakeChainTest, SingleVertex) {
  std::array<Time, 1> w{9};
  Dag g = make_chain(w);
  EXPECT_EQ(g.num_vertices(), 1u);
  EXPECT_EQ(g.len(), 9);
}

TEST(MakeForkJoinTest, MetricsMatch) {
  std::array<Time, 3> branches{4, 6, 2};
  Dag g = make_fork_join(1, branches, 2);
  EXPECT_EQ(g.num_vertices(), 5u);
  EXPECT_EQ(g.num_edges(), 6u);
  EXPECT_EQ(g.vol(), 15);
  EXPECT_EQ(g.len(), 1 + 6 + 2);
  EXPECT_EQ(g.width(), 3u);
}

TEST(MakeIndependentTest, MetricsMatch) {
  std::array<Time, 3> w{5, 1, 3};
  Dag g = make_independent(w);
  EXPECT_EQ(g.num_edges(), 0u);
  EXPECT_EQ(g.len(), 5);
  EXPECT_EQ(g.vol(), 9);
  EXPECT_EQ(g.width(), 3u);
}

TEST(PaperExampleTest, MatchesEveryStatedMetric) {
  DagTask t = make_paper_example_task();
  EXPECT_EQ(t.graph().num_vertices(), 5u);
  EXPECT_EQ(t.graph().num_edges(), 5u);
  EXPECT_EQ(t.vol(), 9);
  EXPECT_EQ(t.len(), 6);
  EXPECT_EQ(t.density().to_string(), "9/16");
  EXPECT_EQ(t.utilization().to_string(), "9/20");
}

TEST(CapacityAugmentationExampleTest, FamilyShape) {
  EXPECT_THROW(make_capacity_augmentation_counterexample(0),
               ContractViolation);
  for (int n : {1, 3, 10}) {
    TaskSystem sys = make_capacity_augmentation_counterexample(n);
    EXPECT_EQ(sys.size(), static_cast<std::size_t>(n));
    EXPECT_EQ(sys.total_utilization(), BigRational(1));
    EXPECT_EQ(sys.deadline_class(),
              n == 1 ? DeadlineClass::kImplicit : DeadlineClass::kConstrained);
  }
}

}  // namespace
}  // namespace fedcons
