// Tests for the UUniFast / UUniFast-Discard utilization samplers.
#include "fedcons/gen/uunifast.h"

#include <gtest/gtest.h>

#include <numeric>

#include "fedcons/util/check.h"

namespace fedcons {
namespace {

TEST(UunifastTest, SumsToTarget) {
  Rng rng(3);
  for (double total : {0.3, 0.7, 1.0}) {
    for (int n : {1, 2, 5, 20}) {
      auto u = uunifast(rng, n, total);
      ASSERT_EQ(u.size(), static_cast<std::size_t>(n));
      double sum = std::accumulate(u.begin(), u.end(), 0.0);
      EXPECT_NEAR(sum, total, 1e-9);
      for (double x : u) EXPECT_GE(x, 0.0);
    }
  }
}

TEST(UunifastTest, SingleTaskGetsEverything) {
  Rng rng(5);
  auto u = uunifast(rng, 1, 0.42);
  ASSERT_EQ(u.size(), 1u);
  EXPECT_DOUBLE_EQ(u[0], 0.42);
}

TEST(UunifastTest, ValidatesArguments) {
  Rng rng(7);
  EXPECT_THROW(uunifast(rng, 0, 1.0), ContractViolation);
  EXPECT_THROW(uunifast(rng, 3, 0.0), ContractViolation);
  EXPECT_THROW(uunifast(rng, 3, -1.0), ContractViolation);
}

TEST(UunifastTest, MarginalsLookUniform) {
  // For n = 2, U = 1 the first utilization is Uniform(0, 1): its mean is
  // 1/2 and ~half the draws land below 1/2.
  Rng rng(11);
  int below = 0;
  double sum = 0;
  const int kDraws = 20000;
  for (int i = 0; i < kDraws; ++i) {
    auto u = uunifast(rng, 2, 1.0);
    sum += u[0];
    if (u[0] < 0.5) ++below;
  }
  EXPECT_NEAR(sum / kDraws, 0.5, 0.02);
  EXPECT_NEAR(static_cast<double>(below) / kDraws, 0.5, 0.02);
}

TEST(UunifastDiscardTest, RespectsCap) {
  Rng rng(13);
  for (int i = 0; i < 200; ++i) {
    auto u = uunifast_discard(rng, 4, 2.0, 0.8);
    double sum = std::accumulate(u.begin(), u.end(), 0.0);
    EXPECT_NEAR(sum, 2.0, 1e-9);
    for (double x : u) EXPECT_LE(x, 0.8);
  }
}

TEST(UunifastDiscardTest, UnreachableTargetRejected) {
  Rng rng(17);
  EXPECT_THROW(uunifast_discard(rng, 2, 3.0, 1.0), ContractViolation);
}

TEST(UunifastDiscardTest, TightButReachableTargetSucceeds) {
  Rng rng(19);
  // total == n·cap only fits the all-equal vector; rejection would
  // essentially never find it, but a slightly loose cap must succeed.
  auto u = uunifast_discard(rng, 3, 2.7, 0.95);
  for (double x : u) EXPECT_LE(x, 0.95);
}

}  // namespace
}  // namespace fedcons
