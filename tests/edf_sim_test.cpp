// Tests for the preemptive uniprocessor EDF simulator.
#include "fedcons/sim/edf_sim.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <optional>
#include <vector>

#include "fedcons/analysis/edf_uniproc.h"
#include "fedcons/core/sequential_task.h"
#include "fedcons/util/rng.h"

namespace fedcons {
namespace {

EdfTaskStream stream_of(std::vector<JobRelease> jobs) {
  return EdfTaskStream{std::move(jobs)};
}

TEST(EdfSimTest, EmptyRuns) {
  SimConfig cfg;
  SimStats s = simulate_edf_uniproc({}, cfg);
  EXPECT_EQ(s.jobs_released, 0u);
  EXPECT_EQ(s.deadline_misses, 0u);
  EXPECT_DOUBLE_EQ(s.busy_fraction, 0.0);
}

TEST(EdfSimTest, SingleJobRunsToCompletion) {
  SimConfig cfg;
  cfg.horizon = 100;
  std::vector<EdfTaskStream> streams{stream_of({{0, 5, 10}})};
  SimStats s = simulate_edf_uniproc(streams, cfg);
  EXPECT_EQ(s.jobs_released, 1u);
  EXPECT_EQ(s.deadline_misses, 0u);
  EXPECT_EQ(s.max_response_time, 5);
  EXPECT_DOUBLE_EQ(s.busy_fraction, 0.05);
}

TEST(EdfSimTest, EarlierDeadlinePreempts) {
  SimConfig cfg;
  cfg.horizon = 100;
  // Long job (deadline 50) starts at 0; a tight job (deadline 13) arrives at
  // 2 and must preempt, finishing at 5; the long job completes at 13.
  std::vector<EdfTaskStream> streams{stream_of({{0, 10, 50}}),
                                     stream_of({{2, 3, 13}})};
  SimStats s = simulate_edf_uniproc(streams, cfg);
  EXPECT_EQ(s.deadline_misses, 0u);
  // Long job: 2 units before preemption, resumes at 5, ends at 13 → resp 13.
  EXPECT_EQ(s.max_response_time, 13);
}

TEST(EdfSimTest, MissDetectedAndLatenessTracked) {
  SimConfig cfg;
  cfg.horizon = 100;
  // Two simultaneous jobs each needing 4 within deadline 5: second finishes
  // at 8, lateness 3.
  std::vector<EdfTaskStream> streams{stream_of({{0, 4, 5}}),
                                     stream_of({{0, 4, 5}})};
  SimStats s = simulate_edf_uniproc(streams, cfg);
  EXPECT_EQ(s.deadline_misses, 1u);
  EXPECT_EQ(s.max_lateness, 3);
}

TEST(EdfSimTest, DeadlineTieBreaksByStreamIndexDeterministically) {
  SimConfig cfg;
  cfg.horizon = 100;
  std::vector<EdfTaskStream> streams{stream_of({{0, 3, 10}}),
                                     stream_of({{0, 3, 10}})};
  SimStats a = simulate_edf_uniproc(streams, cfg);
  SimStats b = simulate_edf_uniproc(streams, cfg);
  EXPECT_EQ(a.max_response_time, b.max_response_time);
  EXPECT_EQ(a.max_response_time, 6);
}

TEST(EdfSimTest, IdleGapsSkippedCorrectly) {
  SimConfig cfg;
  cfg.horizon = 1000;
  std::vector<EdfTaskStream> streams{stream_of({{0, 2, 10}, {500, 2, 510}})};
  SimStats s = simulate_edf_uniproc(streams, cfg);
  EXPECT_EQ(s.jobs_released, 2u);
  EXPECT_EQ(s.deadline_misses, 0u);
  EXPECT_EQ(s.max_response_time, 2);
}

// The bridge property between analysis and simulation: task sets accepted by
// the exact EDF test never miss under synchronous-periodic WCET releases.
class EdfSimAgreementTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EdfSimAgreementTest, ExactTestImpliesNoSimMisses) {
  Rng rng(GetParam());
  SimConfig cfg;
  cfg.horizon = 5000;
  for (int trial = 0; trial < 60; ++trial) {
    std::vector<SporadicTask> tasks;
    int n = static_cast<int>(rng.uniform_int(1, 5));
    for (int j = 0; j < n; ++j) {
      Time period = rng.uniform_int(5, 60);
      Time deadline = rng.uniform_int(2, period);
      Time wcet = rng.uniform_int(1, std::max<Time>(1, deadline / 2));
      tasks.emplace_back(wcet, deadline, period);
    }
    if (!edf_schedulable(tasks)) continue;
    std::vector<EdfTaskStream> streams;
    Rng stream_rng = rng.split();
    for (const auto& t : tasks) {
      streams.push_back(EdfTaskStream{generate_sequential_releases(
          t.wcet, t.deadline, t.period, cfg, stream_rng)});
    }
    SimStats s = simulate_edf_uniproc(streams, cfg);
    EXPECT_EQ(s.deadline_misses, 0u)
        << "accepted set missed in simulation (seed " << GetParam()
        << ", trial " << trial << ")";
  }
}

TEST_P(EdfSimAgreementTest, SimulationCatchesSynchronousOverload) {
  // Converse sanity: sets whose synchronous demand provably overflows at the
  // first deadline must miss in the periodic simulation too.
  Rng rng(GetParam() ^ 0xaa);
  SimConfig cfg;
  cfg.horizon = 3000;
  for (int trial = 0; trial < 40; ++trial) {
    // Two identical tight tasks: C = D, so together they overflow at t = D.
    Time d = rng.uniform_int(2, 20);
    std::vector<SporadicTask> tasks{SporadicTask(d, d, 10 * d),
                                    SporadicTask(d, d, 10 * d)};
    std::vector<EdfTaskStream> streams;
    Rng stream_rng = rng.split();
    for (const auto& t : tasks) {
      streams.push_back(EdfTaskStream{generate_sequential_releases(
          t.wcet, t.deadline, t.period, cfg, stream_rng)});
    }
    SimStats s = simulate_edf_uniproc(streams, cfg);
    EXPECT_GT(s.deadline_misses, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EdfSimAgreementTest,
                         ::testing::Values(61u, 62u, 63u));

TEST(EdfSimTest, BusyFractionIsZeroNotNanWhenNothingEverRuns) {
  // Regression: with horizon 0 and no releases the simulated span is 0, and
  // busy_fraction used to be computed as 0/0 = NaN, poisoning any average
  // built on top of it. An idle run must report exactly 0.0.
  SimConfig cfg;
  cfg.horizon = 0;
  std::vector<EdfTaskStream> streams{stream_of({})};
  const SimStats edf = simulate_edf_uniproc(streams, cfg);
  EXPECT_EQ(edf.jobs_released, 0u);
  EXPECT_FALSE(std::isnan(edf.busy_fraction));
  EXPECT_DOUBLE_EQ(edf.busy_fraction, 0.0);
  const SimStats fp = simulate_fp_uniproc(streams, cfg);
  EXPECT_FALSE(std::isnan(fp.busy_fraction));
  EXPECT_DOUBLE_EQ(fp.busy_fraction, 0.0);
}

TEST(EdfSimTest, TraceUidsFollowThePackingContract) {
  // The header documents job_uid = (stream << 32) | release-index; the trace
  // consumers (conformance replay validation, gantt rendering) rely on it.
  SimConfig cfg;
  cfg.horizon = 40;
  std::vector<EdfTaskStream> streams{stream_of({{0, 2, 10}, {10, 2, 20}}),
                                     stream_of({{5, 3, 15}})};
  ExecutionTrace trace;
  const SimStats s = simulate_edf_uniproc(streams, cfg, &trace);
  EXPECT_EQ(s.jobs_released, 3u);
  ASSERT_FALSE(trace.empty());
  for (const TraceSegment& seg : trace.segments()) {
    const std::uint64_t stream = seg.job_uid >> 32;
    const std::uint64_t index = seg.job_uid & 0xffffffffull;
    ASSERT_LT(stream, streams.size());
    ASSERT_LT(index, streams[stream].jobs.size());
    // No segment may predate its job's release.
    EXPECT_GE(seg.start, streams[stream].jobs[index].release);
  }
  // Every released job shows up in the trace under its packed uid.
  EXPECT_EQ(trace.executed((0ull << 32) | 0), 2);
  EXPECT_EQ(trace.executed((0ull << 32) | 1), 2);
  EXPECT_EQ(trace.executed((1ull << 32) | 0), 3);
  EXPECT_EQ(trace.validate(), std::nullopt);
}

}  // namespace
}  // namespace fedcons
