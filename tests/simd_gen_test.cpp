// Batched generation ≡ scalar generation, under every backend.
//
// generate_task_system_batch advances four seeds' RNG streams lane-parallel
// but must produce, seed for seed, exactly the system that
// Rng(seed) + generate_task_system would — same graphs, WCETs, deadlines,
// periods, and GenerationInfo. Structural equality is checked field-wise per
// task plus via the canonical content hash (relabeling-invariant, so it would
// also catch an edge-order drift the field checks miss). The whole comparison
// runs under forced-scalar and forced-AVX2 dispatch: the batch path's output
// may not depend on which backend advanced the streams.
#include <gtest/gtest.h>

#include <cstdint>
#include <optional>
#include <vector>

#include "fedcons/core/dag_hash.h"
#include "fedcons/gen/batch_gen.h"
#include "fedcons/gen/taskset_gen.h"
#include "fedcons/simd/dispatch.h"
#include "fedcons/util/rng.h"

namespace fedcons {
namespace {

using simd::SimdBackend;

std::vector<SimdBackend> testable_backends() {
  std::vector<SimdBackend> b{SimdBackend::kScalar};
  if (simd::backend_supported(SimdBackend::kAvx2)) {
    b.push_back(SimdBackend::kAvx2);
  }
  return b;
}

void expect_systems_equal(const TaskSystem& got, const TaskSystem& want,
                          std::size_t seed_index) {
  ASSERT_EQ(got.size(), want.size()) << "seed #" << seed_index;
  for (std::size_t i = 0; i < got.size(); ++i) {
    const DagTask& g = got[i];
    const DagTask& w = want[i];
    EXPECT_EQ(g.deadline(), w.deadline()) << "seed #" << seed_index;
    EXPECT_EQ(g.period(), w.period()) << "seed #" << seed_index;
    EXPECT_EQ(g.vol(), w.vol()) << "seed #" << seed_index;
    EXPECT_EQ(g.len(), w.len()) << "seed #" << seed_index;
    EXPECT_EQ(canonical_task_hash(g), canonical_task_hash(w))
        << "seed #" << seed_index << " task " << i;
  }
}

class SimdGenTest : public ::testing::TestWithParam<DagTopology> {};

TEST_P(SimdGenTest, BatchMatchesPerSeedScalarGeneration) {
  TaskSetParams params;
  params.num_tasks = 6;
  params.total_utilization = 3.0;
  params.topology = GetParam();

  // 11 seeds: two full lane groups plus a partial (3-wide) tail group, so
  // the padding path is exercised.
  std::vector<std::uint64_t> seeds;
  for (std::uint64_t s = 0; s < 11; ++s) seeds.push_back(s * 7919 + 13);

  std::vector<TaskSystem> want;
  std::vector<GenerationInfo> want_infos;
  for (std::uint64_t s : seeds) {
    Rng rng(s);
    GenerationInfo info;
    want.push_back(generate_task_system(rng, params, &info));
    want_infos.push_back(info);
  }

  for (SimdBackend b : testable_backends()) {
    simd::force_backend(b);
    std::vector<GenerationInfo> infos;
    const std::vector<TaskSystem> got =
        generate_task_system_batch(seeds, params, &infos);
    simd::force_backend(std::nullopt);

    ASSERT_EQ(got.size(), seeds.size())
        << "backend " << simd::to_string(b);
    ASSERT_EQ(infos.size(), seeds.size());
    for (std::size_t k = 0; k < seeds.size(); ++k) {
      expect_systems_equal(got[k], want[k], k);
      EXPECT_EQ(infos[k].deadline_clamps, want_infos[k].deadline_clamps)
          << "seed #" << k;
      EXPECT_EQ(infos[k].achieved_utilization,
                want_infos[k].achieved_utilization)
          << "seed #" << k;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Topologies, SimdGenTest,
                         ::testing::Values(DagTopology::kLayered,
                                           DagTopology::kForkJoin,
                                           DagTopology::kMixed));

TEST(SimdGenTest, EmptySeedListYieldsEmptyBatch) {
  TaskSetParams params;
  std::vector<GenerationInfo> infos{GenerationInfo{}};
  const auto got = generate_task_system_batch({}, params, &infos);
  EXPECT_TRUE(got.empty());
  EXPECT_TRUE(infos.empty());  // resized to match
}

TEST(SimdGenTest, DuplicateSeedsYieldIdenticalSystems) {
  TaskSetParams params;
  params.num_tasks = 4;
  const std::vector<std::uint64_t> seeds{42, 42, 42, 42, 42};
  const auto got = generate_task_system_batch(seeds, params);
  ASSERT_EQ(got.size(), seeds.size());
  for (std::size_t k = 1; k < got.size(); ++k) {
    expect_systems_equal(got[k], got[0], k);
  }
}

}  // namespace
}  // namespace fedcons
