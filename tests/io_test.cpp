// Tests for task-system text serialization.
#include "fedcons/core/io.h"

#include <gtest/gtest.h>

#include "fedcons/core/builders.h"
#include "fedcons/gen/taskset_gen.h"
#include "fedcons/util/rng.h"

namespace fedcons {
namespace {

constexpr const char* kSample = R"(
# two-task sample
task alpha
  deadline 16
  period 20
  vertex 1
  vertex 2
  vertex 3   # heavy job
  edge 0 1
  edge 0 2
end

task beta
  period 8
  deadline 4
  vertex 2
end
)";

TEST(IoParseTest, ParsesSample) {
  TaskSystem sys = parse_task_system(std::string(kSample));
  ASSERT_EQ(sys.size(), 2u);
  EXPECT_EQ(sys[0].name(), "alpha");
  EXPECT_EQ(sys[0].deadline(), 16);
  EXPECT_EQ(sys[0].period(), 20);
  EXPECT_EQ(sys[0].vol(), 6);
  EXPECT_EQ(sys[0].len(), 4);  // 1 → 3
  EXPECT_EQ(sys[0].graph().num_edges(), 2u);
  EXPECT_EQ(sys[1].name(), "beta");
  EXPECT_EQ(sys[1].deadline(), 4);
}

TEST(IoParseTest, AnonymousTasksGetNames) {
  TaskSystem sys = parse_task_system(
      "task\n deadline 5\n period 5\n vertex 1\nend\n");
  ASSERT_EQ(sys.size(), 1u);
  EXPECT_EQ(sys[0].name(), "task1");
}

TEST(IoParseTest, EmptyInputIsEmptySystem) {
  EXPECT_TRUE(parse_task_system(std::string("\n# nothing\n")).empty());
}

TEST(IoParseTest, ErrorsCarryLineNumbers) {
  try {
    (void)parse_task_system(std::string("task a\n deadline 5\n bogus 1\n"));
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_EQ(e.line(), 3);
    EXPECT_NE(std::string(e.what()).find("bogus"), std::string::npos);
  }
}

TEST(IoParseTest, RejectsStructuralErrors) {
  EXPECT_THROW(parse_task_system(std::string("deadline 5\n")), ParseError);
  EXPECT_THROW(parse_task_system(std::string("task a\ntask b\n")),
               ParseError);
  EXPECT_THROW(parse_task_system(
                   std::string("task a\n deadline 5\n period 5\n vertex 1\n")),
               ParseError);  // missing end
  EXPECT_THROW(
      parse_task_system(std::string("task a\n period 5\n vertex 1\nend\n")),
      ParseError);  // missing deadline
  EXPECT_THROW(
      parse_task_system(std::string("task a\n deadline 5\n period 5\nend\n")),
      ParseError);  // no vertices
}

TEST(IoParseTest, RejectsBadNumbersAndEdges) {
  EXPECT_THROW(parse_task_system(std::string(
                   "task a\n deadline x\n period 5\n vertex 1\nend\n")),
               ParseError);
  EXPECT_THROW(parse_task_system(std::string(
                   "task a\n deadline 5\n period 5\n vertex 0\nend\n")),
               ParseError);
  EXPECT_THROW(parse_task_system(std::string(
                   "task a\n deadline 5\n period 5\n vertex 1\n edge 0 5\nend\n")),
               ParseError);
  EXPECT_THROW(parse_task_system(std::string(
                   "task a\n deadline 5\n period 5\n vertex 1\n edge 0 0\nend\n")),
               ParseError);
  EXPECT_THROW(
      parse_task_system(std::string("task a\n deadline 5\n period 5\n "
                                    "vertex 1\n vertex 1\n edge 0 1\n "
                                    "edge 0 1\nend\n")),
      ParseError);
}

TEST(IoParseTest, RejectsCycles) {
  EXPECT_THROW(parse_task_system(std::string(
                   "task a\n deadline 5\n period 5\n vertex 1\n vertex 1\n "
                   "edge 0 1\n edge 1 0\nend\n")),
               ParseError);
}

TEST(IoSerializeTest, RoundTripsPaperExample) {
  TaskSystem sys;
  sys.add(make_paper_example_task());
  TaskSystem back = parse_task_system(serialize_task_system(sys));
  ASSERT_EQ(back.size(), 1u);
  EXPECT_EQ(back[0].name(), "fig1-example");
  EXPECT_EQ(back[0].vol(), 9);
  EXPECT_EQ(back[0].len(), 6);
  EXPECT_EQ(back[0].deadline(), 16);
  EXPECT_EQ(back[0].period(), 20);
  EXPECT_EQ(back[0].graph().num_edges(), 5u);
}

TEST(IoSerializeTest, SanitizesAwkwardNames) {
  Dag g;
  g.add_vertex(1);
  TaskSystem sys;
  sys.add(DagTask(std::move(g), 5, 5, "my task # weird"));
  TaskSystem back = parse_task_system(serialize_task_system(sys));
  ASSERT_EQ(back.size(), 1u);
  EXPECT_EQ(back[0].name(), "my-task---weird");
}

// Round-trip property over random systems: every structural and temporal
// attribute survives serialize → parse.
class IoRoundTripTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(IoRoundTripTest, RandomSystemsRoundTrip) {
  Rng rng(GetParam());
  TaskSetParams params;
  params.num_tasks = 6;
  params.topology = DagTopology::kMixed;
  for (int trial = 0; trial < 25; ++trial) {
    TaskSystem sys = generate_task_system(rng, params);
    TaskSystem back = parse_task_system(serialize_task_system(sys));
    ASSERT_EQ(back.size(), sys.size());
    for (std::size_t i = 0; i < sys.size(); ++i) {
      EXPECT_EQ(back[i].deadline(), sys[i].deadline());
      EXPECT_EQ(back[i].period(), sys[i].period());
      EXPECT_EQ(back[i].vol(), sys[i].vol());
      EXPECT_EQ(back[i].len(), sys[i].len());
      EXPECT_EQ(back[i].graph().num_vertices(),
                sys[i].graph().num_vertices());
      EXPECT_EQ(back[i].graph().num_edges(), sys[i].graph().num_edges());
      for (VertexId v = 0; v < sys[i].graph().num_vertices(); ++v) {
        EXPECT_EQ(back[i].graph().wcet(v), sys[i].graph().wcet(v));
        for (VertexId s : sys[i].graph().successors(v)) {
          EXPECT_TRUE(back[i].graph().has_edge(v, s));
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IoRoundTripTest,
                         ::testing::Values(91u, 92u, 93u));

// Robustness: random garbage must produce ParseError (or a valid system),
// never a crash or an uncaught foreign exception.
class IoFuzzTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(IoFuzzTest, GarbageNeverCrashes) {
  Rng rng(GetParam());
  const char* tokens[] = {"task",   "deadline", "period", "vertex",
                          "edge",   "end",      "0",      "1",
                          "-5",     "99999999", "abc",    "#",
                          "\n",     " ",        "t1",     "edge 0",
                          "3.14",   "--",       "task task"};
  for (int trial = 0; trial < 300; ++trial) {
    std::string input;
    int pieces = static_cast<int>(rng.uniform_int(1, 40));
    for (int i = 0; i < pieces; ++i) {
      input += tokens[rng.uniform_int(0, std::size(tokens) - 1)];
      input += rng.bernoulli(0.4) ? "\n" : " ";
    }
    try {
      TaskSystem sys = parse_task_system(input);
      // Accepted inputs must be structurally valid systems.
      for (const auto& t : sys) {
        EXPECT_GE(t.vol(), 1);
        EXPECT_TRUE(t.graph().is_acyclic());
      }
    } catch (const ParseError&) {
      // expected for malformed input
    }
  }
}

TEST_P(IoFuzzTest, RandomBytesNeverCrash) {
  Rng rng(GetParam() ^ 0x5e5e);
  for (int trial = 0; trial < 200; ++trial) {
    std::string input;
    int len = static_cast<int>(rng.uniform_int(0, 200));
    for (int i = 0; i < len; ++i) {
      input += static_cast<char>(rng.uniform_int(9, 126));
    }
    try {
      (void)parse_task_system(input);
    } catch (const ParseError&) {
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IoFuzzTest, ::testing::Values(7u, 8u));

TEST(IoHardeningTest, RejectsFieldsBeyondTheRepresentableCap) {
  // Within int64 but above the 2^50 field cap: diagnosed, not accepted.
  try {
    (void)parse_task_system(std::string(
        "task a\n deadline 1234567890123456789\n period 5\n vertex 1\nend\n"));
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_NE(std::string(e.what()).find("2^50"), std::string::npos);
  }
  // Beyond int64 entirely: stoll overflow funnels into "malformed".
  EXPECT_THROW(parse_task_system(std::string(
                   "task a\n deadline 99999999999999999999999\n period 5\n "
                   "vertex 1\nend\n")),
               ParseError);
  // The cap itself is still accepted (boundary inclusive).
  TaskSystem ok = parse_task_system(std::string(
      "task a\n deadline 1125899906842624\n period 1125899906842624\n "
      "vertex 1\nend\n"));
  EXPECT_EQ(ok[0].deadline(), Time{1} << 50);
}

TEST(IoHardeningTest, RejectsNonIntegerNumericSpellings) {
  EXPECT_THROW(parse_task_system(std::string(
                   "task a\n deadline nan\n period 5\n vertex 1\nend\n")),
               ParseError);
  EXPECT_THROW(parse_task_system(std::string(
                   "task a\n deadline inf\n period 5\n vertex 1\nend\n")),
               ParseError);
  EXPECT_THROW(parse_task_system(std::string(
                   "task a\n deadline 5\n period 5\n vertex 2.5\nend\n")),
               ParseError);
  EXPECT_THROW(parse_task_system(std::string(
                   "task a\n deadline -7\n period 5\n vertex 1\nend\n")),
               ParseError);
}

TEST(IoHardeningTest, TryParseReportsInsteadOfThrowing) {
  const ParseResult good =
      try_parse_task_system("task a\n deadline 5\n period 5\n vertex 1\nend\n");
  EXPECT_TRUE(good.ok);
  EXPECT_EQ(good.system.size(), 1u);
  EXPECT_TRUE(good.error.empty());

  const ParseResult bad =
      try_parse_task_system("task a\n deadline 5\n bogus 1\n");
  EXPECT_FALSE(bad.ok);
  EXPECT_EQ(bad.line, 3);
  EXPECT_NE(bad.error.find("bogus"), std::string::npos);
  EXPECT_TRUE(bad.system.empty());
}

}  // namespace
}  // namespace fedcons
