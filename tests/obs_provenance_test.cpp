// Verdict-provenance tests: golden renderings on hand-constructed instances
// (one witness per failure mode) and the recording-invariance contract.
#include "fedcons/obs/provenance.h"

#include <gtest/gtest.h>

#include <string>

#include "fedcons/core/builders.h"
#include "fedcons/federated/fedcons_algorithm.h"
#include "fedcons/util/perf_counters.h"
#include "test_json.h"

namespace fedcons {
namespace {

DagTask simple_task(Time wcet, Time deadline, Time period,
                    std::string name = {}) {
  Dag g;
  g.add_vertex(wcet);
  return DagTask(std::move(g), deadline, period, std::move(name));
}

DagTask wide_task(int width, Time wcet, Time deadline, Time period,
                  std::string name = {}) {
  Dag g;
  for (int i = 0; i < width; ++i) g.add_vertex(wcet);
  return DagTask(std::move(g), deadline, period, std::move(name));
}

FedconsResult run_with_provenance(const TaskSystem& sys, int m) {
  FedconsOptions options;
  options.record_provenance = true;
  FedconsResult r = fedcons_schedule(sys, m, options);
  EXPECT_NE(r.provenance, nullptr);
  return r;
}

TEST(ProvenanceTest, NullByDefault) {
  TaskSystem sys;
  sys.add(simple_task(2, 10, 20));
  FedconsResult r = fedcons_schedule(sys, 1);
  EXPECT_TRUE(r.success);
  EXPECT_EQ(r.provenance, nullptr);
}

TEST(ProvenanceTest, GoldenMinprocsExhaustionWitness) {
  // Four independent jobs of 2, D = 3: δ = 8/3 → the scan starts at μ = 3,
  // where LS needs makespan 4 > 3. μ = 4 would fit (cap = 4) but m = 3
  // processors exist — the μ-scan exhausts m_r and must report its best
  // probe as the witness.
  TaskSystem sys;
  sys.add(wide_task(4, 2, 3, 4, "wide"));
  FedconsResult r = run_with_provenance(sys, 3);
  ASSERT_FALSE(r.success);
  EXPECT_EQ(r.failure, FedconsFailure::kHighDensityPhase);

  const FedconsProvenance& prov = *r.provenance;
  ASSERT_EQ(prov.clusters.size(), 1u);
  const MinprocsProvenance& scan = prov.clusters[0].scan;
  EXPECT_FALSE(scan.satisfied);
  EXPECT_FALSE(scan.len_exceeds_deadline);
  EXPECT_EQ(scan.scan_lb, 3);
  EXPECT_EQ(scan.scan_cap, 4);
  EXPECT_EQ(scan.max_processors, 3);
  ASSERT_EQ(scan.probes.size(), 1u);
  EXPECT_EQ(scan.probes[0].mu, 3);
  EXPECT_EQ(scan.probes[0].makespan, 4);
  EXPECT_EQ(scan.best_makespan, 4);
  EXPECT_EQ(scan.best_mu, 3);

  EXPECT_EQ(
      explain_text(sys, prov),
      "FEDCONS on m=3: REJECTED in high-density-phase (τ1 'wide')\n"
      "phase 1 — MINPROCS template clusters (1 high-density task(s)):\n"
      "  τ1 'wide' (δ≈2.67, vol=8, len=2, D=3): scan μ ∈ [⌈δ⌉=3, "
      "min(m_r=3, cap=4)] → EXHAUSTED m_r=3: best makespan 4 at μ=3 > D=3; "
      "probes: μ=3:4\n"
      "phase 2 — PARTITION deadline-monotonic first-fit: not reached "
      "(phase 1 failed)\n");
}

TEST(ProvenanceTest, GoldenScanStartExceedsProcessors) {
  // δ = 4 on m = 2: ⌈δ⌉ already exceeds m_r, so no probe ever runs — the
  // witness is the empty scan itself.
  TaskSystem sys;
  sys.add(wide_task(8, 1, 2, 4, "spike"));
  FedconsResult r = run_with_provenance(sys, 2);
  ASSERT_FALSE(r.success);
  const MinprocsProvenance& scan = r.provenance->clusters.at(0).scan;
  EXPECT_TRUE(scan.probes.empty());
  EXPECT_FALSE(scan.len_exceeds_deadline);

  const std::string text = explain_text(sys, *r.provenance);
  EXPECT_NE(text.find("EXHAUSTED: scan start ⌈δ⌉=4 already exceeds m_r=2 "
                      "(no probe run)"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("probes: (none)"), std::string::npos) << text;
}

TEST(ProvenanceTest, GoldenLenExceedsDeadline) {
  // Critical path 4 > D = 3: trivially hopeless, no μ can help.
  TaskSystem sys;
  Dag g = DagBuilder{}.vertices({2, 2}).edge(0, 1).build();
  sys.add(DagTask(std::move(g), 3, 4, "chain"));
  FedconsResult r = run_with_provenance(sys, 8);
  ASSERT_FALSE(r.success);
  EXPECT_TRUE(r.provenance->clusters.at(0).scan.len_exceeds_deadline);
  const std::string text = explain_text(sys, *r.provenance);
  EXPECT_NE(text.find("len > D — no processor count can meet the deadline"),
            std::string::npos)
      << text;
}

TEST(ProvenanceTest, GoldenPartitionDbfBreakpointWitness) {
  // Two C=3, D=5, T=10 tasks on one shared processor: the second task's
  // probe fails the DBF* demand condition at breakpoint t = 5 (3 + 3 > 5).
  TaskSystem sys;
  sys.add(simple_task(3, 5, 10, "a"));
  sys.add(simple_task(3, 5, 10, "b"));
  FedconsResult r = run_with_provenance(sys, 1);
  ASSERT_FALSE(r.success);
  EXPECT_EQ(r.failure, FedconsFailure::kPartitionPhase);
  ASSERT_TRUE(r.failed_task.has_value());
  EXPECT_EQ(*r.failed_task, 1u);

  const FedconsProvenance& prov = *r.provenance;
  ASSERT_TRUE(prov.partition_reached);
  ASSERT_EQ(prov.partition.placements.size(), 2u);
  const PlacementRecord& failed = prov.partition.placements[1];
  EXPECT_EQ(failed.chosen_bin, -1);
  ASSERT_EQ(failed.attempts.size(), 1u);
  EXPECT_FALSE(failed.attempts[0].fits);
  EXPECT_EQ(failed.attempts[0].reason, BinRejectReason::kDemand);
  EXPECT_EQ(failed.attempts[0].breakpoint, 5);

  EXPECT_EQ(
      explain_text(sys, prov),
      "FEDCONS on m=1: REJECTED in partition-phase (τ2 'b')\n"
      "phase 1 — MINPROCS template clusters (0 high-density task(s)):\n"
      "  (no high-density tasks)\n"
      "phase 2 — PARTITION deadline-monotonic first-fit on m_r=1 shared "
      "processor(s), 2 low-density task(s):\n"
      "  τ1 'a' (D=5, C=3) → bin 0\n"
      "  τ2 'b' (D=5, C=3): NO BIN FIT\n"
      "      bin 0: DBF* demand 6 > capacity 5 at breakpoint t=5\n"
      "  (placement aborts at the first task that fits nowhere; later tasks "
      "were not attempted)\n");
}

TEST(ProvenanceTest, UtilizationRejectionIsAttributed) {
  // u = 3/5 each with long deadlines: two fit nowhere together because the
  // long-run capacity check trips before any demand breakpoint.
  TaskSystem sys;
  sys.add(simple_task(3, 5, 5, "u1"));
  sys.add(simple_task(3, 5, 5, "u2"));
  FedconsResult r = run_with_provenance(sys, 1);
  ASSERT_FALSE(r.success);
  const auto& attempts = r.provenance->partition.placements.at(1).attempts;
  ASSERT_EQ(attempts.size(), 1u);
  EXPECT_EQ(attempts[0].reason, BinRejectReason::kUtilization);
  EXPECT_NE(attempts[0].detail.find("utilization"), std::string::npos);
}

TEST(ProvenanceTest, AcceptedSystemRecordsFullTrajectory) {
  TaskSystem sys;
  sys.add(wide_task(8, 1, 2, 4, "high"));  // δ = 4: needs 4 dedicated procs
  sys.add(make_paper_example_task());
  sys.add(simple_task(2, 10, 20));
  FedconsResult r = run_with_provenance(sys, 6);
  ASSERT_TRUE(r.success);

  const FedconsProvenance& prov = *r.provenance;
  EXPECT_TRUE(prov.success);
  EXPECT_EQ(prov.failure, "accepted");
  ASSERT_EQ(prov.clusters.size(), 1u);
  EXPECT_TRUE(prov.clusters[0].scan.satisfied);
  EXPECT_EQ(prov.clusters[0].scan.chosen_mu, 4);
  EXPECT_TRUE(prov.partition_reached);
  EXPECT_EQ(prov.shared_processors, 2);
  ASSERT_EQ(prov.low_tasks.size(), 2u);
  EXPECT_EQ(prov.partition.placements.size(), 2u);
  for (const auto& pl : prov.partition.placements) {
    EXPECT_GE(pl.chosen_bin, 0);
  }
}

TEST(ProvenanceTest, ExplainJsonSchema) {
  TaskSystem sys;
  sys.add(wide_task(4, 2, 3, 4, "wide"));
  sys.add(simple_task(3, 5, 10, "a"));
  FedconsResult r = run_with_provenance(sys, 4);

  auto doc = testjson::parse(explain_json(sys, *r.provenance));
  EXPECT_EQ(doc->at("schema_version").number, 1.0);
  EXPECT_EQ(doc->at("m").number, 4.0);
  ASSERT_TRUE(doc->at("clusters").is_array());
  ASSERT_EQ(doc->at("clusters").array.size(), 1u);
  const auto& cluster = *doc->at("clusters").array[0];
  EXPECT_EQ(cluster.at("name").string, "wide");
  EXPECT_TRUE(cluster.at("probes").is_array());
  for (const auto& probe : cluster.at("probes").array) {
    EXPECT_TRUE(probe->at("mu").is_number());
    EXPECT_TRUE(probe->at("makespan").is_number());
  }
  ASSERT_TRUE(doc->at("placements").is_array());
  for (const auto& pl : doc->at("placements").array) {
    EXPECT_TRUE(pl->at("task").is_number());
    EXPECT_TRUE(pl->at("attempts").is_array());
    for (const auto& at : pl->at("attempts").array) {
      EXPECT_TRUE(at->at("bin").is_number());
      if (!at->at("fits").boolean) {
        EXPECT_TRUE(at->has("reason"));
        EXPECT_TRUE(at->has("breakpoint"));
        EXPECT_TRUE(at->has("detail"));
      }
    }
  }
}

TEST(ProvenanceTest, ExplainJsonRejectionCarriesWitness) {
  TaskSystem sys;
  sys.add(simple_task(3, 5, 10, "a"));
  sys.add(simple_task(3, 5, 10, "b"));
  FedconsResult r = run_with_provenance(sys, 1);
  ASSERT_FALSE(r.success);
  auto doc = testjson::parse(explain_json(sys, *r.provenance));
  EXPECT_EQ(doc->at("schedulable").boolean, false);
  EXPECT_EQ(doc->at("failure").string, "partition-phase");
  EXPECT_EQ(doc->at("failed_task").number, 1.0);
  const auto& attempts = doc->at("placements").array[1]->at("attempts");
  ASSERT_EQ(attempts.array.size(), 1u);
  EXPECT_EQ(attempts.array[0]->at("reason").string, "demand");
  EXPECT_EQ(attempts.array[0]->at("breakpoint").number, 5.0);
}

TEST(ProvenanceTest, RecordingDoesNotPerturbVerdictsOrCounters) {
  // The core contract: recording only observes computations the algorithm
  // already performs. Identical verdict, allocation, and counter deltas
  // with recording on and off — across accept and both reject phases.
  TaskSystem accept, reject_high, reject_part;
  accept.add(wide_task(8, 1, 2, 4));
  accept.add(make_paper_example_task());
  reject_high.add(wide_task(4, 2, 3, 4));
  reject_part.add(simple_task(3, 5, 10));
  reject_part.add(simple_task(3, 5, 10));

  struct Case {
    const TaskSystem* sys;
    int m;
  };
  for (const Case& c : {Case{&accept, 6}, Case{&reject_high, 3},
                        Case{&reject_part, 1}}) {
    FedconsOptions plain;
    const PerfCounters before_plain = perf_counters();
    FedconsResult r_plain = fedcons_schedule(*c.sys, c.m, plain);
    const PerfCounters delta_plain = perf_counters() - before_plain;

    FedconsOptions recording;
    recording.record_provenance = true;
    const PerfCounters before_rec = perf_counters();
    FedconsResult r_rec = fedcons_schedule(*c.sys, c.m, recording);
    const PerfCounters delta_rec = perf_counters() - before_rec;

    EXPECT_EQ(r_plain.success, r_rec.success);
    EXPECT_EQ(r_plain.failure, r_rec.failure);
    EXPECT_EQ(r_plain.failed_task, r_rec.failed_task);
    EXPECT_EQ(r_plain.shared_processors, r_rec.shared_processors);
    EXPECT_EQ(r_plain.shared_assignment, r_rec.shared_assignment);
    EXPECT_EQ(delta_plain.ls_invocations, delta_rec.ls_invocations);
    EXPECT_EQ(delta_plain.minprocs_scan_iterations,
              delta_rec.minprocs_scan_iterations);
    EXPECT_EQ(delta_plain.dbf_star_evaluations,
              delta_rec.dbf_star_evaluations);
    EXPECT_EQ(delta_plain.ls_probes_pruned, delta_rec.ls_probes_pruned);
  }
}

}  // namespace
}  // namespace fedcons
