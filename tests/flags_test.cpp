// Tests for command-line flag parsing.
#include "fedcons/util/flags.h"

#include <gtest/gtest.h>

#include "fedcons/util/check.h"

namespace fedcons {
namespace {

Flags parse(std::initializer_list<const char*> args) {
  std::vector<const char*> argv{"prog"};
  argv.insert(argv.end(), args.begin(), args.end());
  return Flags(static_cast<int>(argv.size()), argv.data());
}

TEST(FlagsTest, EqualsSyntax) {
  Flags f = parse({"--trials=500", "--name=sweep"});
  EXPECT_EQ(f.get_int("trials", 0), 500);
  EXPECT_EQ(f.get_string("name", ""), "sweep");
}

// The two-token "--key value" form is gone: it used to swallow any
// following non-flag token as a value, so "--json file.json" silently lost
// the positional input file. The token after a bare flag is positional.
TEST(FlagsTest, TokenAfterBareFlagIsPositional) {
  Flags f = parse({"--trials", "250"});
  EXPECT_TRUE(f.get_bool("trials", false));
  EXPECT_THROW(f.get_int("trials", 0), ContractViolation);  // value is "true"
  ASSERT_EQ(f.positional().size(), 1u);
  EXPECT_EQ(f.positional()[0], "250");
}

TEST(FlagsTest, BooleanFlagThenPositionalFile) {
  Flags f = parse({"--json", "file.json"});
  EXPECT_TRUE(f.get_bool("json", false));
  ASSERT_EQ(f.positional().size(), 1u);
  EXPECT_EQ(f.positional()[0], "file.json");
}

TEST(FlagsTest, BareFlagIsTrue) {
  Flags f = parse({"--csv"});
  EXPECT_TRUE(f.has("csv"));
  EXPECT_TRUE(f.get_bool("csv", false));
}

TEST(FlagsTest, DefaultsWhenAbsent) {
  Flags f = parse({});
  EXPECT_FALSE(f.has("missing"));
  EXPECT_EQ(f.get_int("missing", 7), 7);
  EXPECT_EQ(f.get_double("missing", 2.5), 2.5);
  EXPECT_EQ(f.get_string("missing", "d"), "d");
  EXPECT_TRUE(f.get_bool("missing", true));
}

TEST(FlagsTest, BoolSpellings) {
  EXPECT_TRUE(parse({"--a=yes"}).get_bool("a", false));
  EXPECT_TRUE(parse({"--a=1"}).get_bool("a", false));
  EXPECT_TRUE(parse({"--a=on"}).get_bool("a", false));
  EXPECT_FALSE(parse({"--a=no"}).get_bool("a", true));
  EXPECT_FALSE(parse({"--a=0"}).get_bool("a", true));
  EXPECT_FALSE(parse({"--a=off"}).get_bool("a", true));
}

TEST(FlagsTest, DoubleParsing) {
  Flags f = parse({"--ratio=0.75"});
  EXPECT_DOUBLE_EQ(f.get_double("ratio", 0.0), 0.75);
}

TEST(FlagsTest, Positional) {
  Flags f = parse({"input.txt", "--k=1", "more"});
  ASSERT_EQ(f.positional().size(), 2u);
  EXPECT_EQ(f.positional()[0], "input.txt");
  EXPECT_EQ(f.positional()[1], "more");
}

TEST(FlagsTest, MalformedValuesThrow) {
  EXPECT_THROW(parse({"--n=abc"}).get_int("n", 0), ContractViolation);
  EXPECT_THROW(parse({"--x=abc"}).get_double("x", 0), ContractViolation);
  EXPECT_THROW(parse({"--b=maybe"}).get_bool("b", false), ContractViolation);
  EXPECT_THROW(parse({"--"}), ContractViolation);
}

// stoll/stod stop at the first bad character and return the prefix, so
// --threads=8x used to run with 8 threads. The whole token must convert.
TEST(FlagsTest, TrailingGarbageThrows) {
  EXPECT_THROW(parse({"--threads=8x"}).get_int("threads", 0),
               ContractViolation);
  EXPECT_THROW(parse({"--n=1 2"}).get_int("n", 0), ContractViolation);
  EXPECT_THROW(parse({"--n=0x10"}).get_int("n", 0), ContractViolation);
  EXPECT_THROW(parse({"--ratio=0.5abc"}).get_double("ratio", 0.0),
               ContractViolation);
  EXPECT_THROW(parse({"--ratio=1e"}).get_double("ratio", 0.0),
               ContractViolation);
  // Surrounding whitespace is stripped, not treated as garbage.
  EXPECT_EQ(parse({"--n= 8 "}).get_int("n", 0), 8);
  EXPECT_DOUBLE_EQ(parse({"--ratio= 0.5"}).get_double("ratio", 0.0), 0.5);
  // Out-of-range still reports as not-an-integer, never saturates.
  EXPECT_THROW(parse({"--n=99999999999999999999"}).get_int("n", 0),
               ContractViolation);
}

TEST(FlagsTest, LaterOccurrenceWins) {
  Flags f = parse({"--k=1", "--k=2"});
  EXPECT_EQ(f.get_int("k", 0), 2);
}

}  // namespace
}  // namespace fedcons
