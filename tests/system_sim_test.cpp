// Tests for whole-platform simulation of FEDCONS allocations.
#include "fedcons/sim/system_sim.h"

#include <gtest/gtest.h>

#include <array>

#include "fedcons/core/builders.h"
#include "fedcons/listsched/anomaly.h"
#include "fedcons/util/check.h"

namespace fedcons {
namespace {

DagTask simple_task(Time wcet, Time deadline, Time period) {
  Dag g;
  g.add_vertex(wcet);
  return DagTask(std::move(g), deadline, period);
}

TaskSystem mixed_system() {
  TaskSystem sys;
  // High-density: 6 unit jobs, D=2, T=8 (δ=3 → 3 processors).
  std::array<Time, 6> w{1, 1, 1, 1, 1, 1};
  sys.add(DagTask(make_independent(w), 2, 8));
  sys.add(make_paper_example_task());
  sys.add(simple_task(2, 8, 32));
  return sys;
}

TEST(SystemSimTest, AcceptedMixedSystemHasNoMisses) {
  TaskSystem sys = mixed_system();
  auto alloc = fedcons_schedule(sys, 5);
  ASSERT_TRUE(alloc.success) << alloc.describe(sys);
  SimConfig cfg;
  cfg.horizon = 20000;
  SystemSimReport rep = simulate_system(sys, alloc, cfg);
  EXPECT_EQ(rep.total.deadline_misses, 0u);
  EXPECT_GT(rep.total.jobs_released, 0u);
  EXPECT_EQ(rep.cluster_stats.size(), alloc.clusters.size());
  EXPECT_EQ(rep.shared_stats.size(), alloc.shared_assignment.size());
}

TEST(SystemSimTest, SporadicReleasesAndReducedExecStaySafe) {
  TaskSystem sys = mixed_system();
  auto alloc = fedcons_schedule(sys, 5);
  ASSERT_TRUE(alloc.success);
  SimConfig cfg;
  cfg.horizon = 50000;
  cfg.release = ReleaseModel::kSporadic;
  cfg.jitter_frac = 0.7;
  cfg.exec = ExecModel::kUniform;
  cfg.exec_lo = 0.4;
  cfg.seed = 99;
  SystemSimReport rep = simulate_system(sys, alloc, cfg);
  EXPECT_EQ(rep.total.deadline_misses, 0u);
}

TEST(SystemSimTest, OnlineRerunDispatchCanViolate) {
  // The anomaly instance as a federated system: accepted with σ makespan
  // exactly D, then run with online LS re-dispatch and reduced times.
  AnomalyInstance inst = make_graham_anomaly_instance();
  TaskSystem sys;
  sys.add(DagTask(inst.dag, inst.wcet_makespan, inst.wcet_makespan));
  auto alloc = fedcons_schedule(sys, inst.processors);
  ASSERT_TRUE(alloc.success);
  ASSERT_EQ(alloc.clusters.size(), 1u);
  SimConfig cfg;
  cfg.horizon = 20000;
  cfg.exec = ExecModel::kUniform;
  cfg.exec_lo = 0.5;
  cfg.seed = 3;
  SystemSimReport replay =
      simulate_system(sys, alloc, cfg, ClusterDispatch::kTemplateReplay);
  EXPECT_EQ(replay.total.deadline_misses, 0u);
  // The online re-run is not *guaranteed* to miss on random reductions, but
  // replay safety must hold regardless; pinpoint miss behaviour is covered
  // in cluster_sim_test with the exact anomalous execution times.
}

TEST(SystemSimTest, ArbitraryCompositionHasNoMisses) {
  // Overlapping chain (needs 3 pipelined instances) plus D>T low task plus
  // a constrained low task — the full arbitrary-deadline platform.
  TaskSystem sys;
  std::array<Time, 3> w{4, 4, 4};
  sys.add(DagTask(make_chain(w), 15, 5, "overlap"));
  sys.add(simple_task(2, 30, 20));
  sys.add(simple_task(3, 12, 16));
  auto alloc = arbitrary_federated_schedule(sys, 5);
  ASSERT_TRUE(alloc.success) << alloc.describe(sys);
  for (auto release : {ReleaseModel::kPeriodic, ReleaseModel::kSporadic}) {
    SimConfig cfg;
    cfg.horizon = 30000;
    cfg.release = release;
    cfg.exec = ExecModel::kUniform;
    cfg.exec_lo = 0.5;
    cfg.seed = 21;
    SystemSimReport rep = simulate_arbitrary_system(sys, alloc, cfg);
    EXPECT_EQ(rep.total.deadline_misses, 0u);
    EXPECT_GT(rep.total.jobs_released, 1000u);
    EXPECT_EQ(rep.cluster_stats.size(), 1u);
  }
}

TEST(SystemSimTest, ArbitraryRejectedAllocationRefused) {
  TaskSystem sys;
  std::array<Time, 3> w{4, 4, 4};
  sys.add(DagTask(make_chain(w), 15, 5));
  auto alloc = arbitrary_federated_schedule(sys, 2);  // needs 3
  ASSERT_FALSE(alloc.success);
  EXPECT_THROW(simulate_arbitrary_system(sys, alloc, SimConfig{}),
               ContractViolation);
}

TEST(SystemSimTest, RejectedAllocationRefused) {
  TaskSystem sys;
  std::array<Time, 8> w{1, 1, 1, 1, 1, 1, 1, 1};
  sys.add(DagTask(make_independent(w), 2, 4));
  auto alloc = fedcons_schedule(sys, 2);
  ASSERT_FALSE(alloc.success);
  EXPECT_THROW(simulate_system(sys, alloc, SimConfig{}), ContractViolation);
}

TEST(SystemSimTest, PerSubsystemStatsAggregate) {
  TaskSystem sys = mixed_system();
  auto alloc = fedcons_schedule(sys, 5);
  ASSERT_TRUE(alloc.success);
  SimConfig cfg;
  cfg.horizon = 10000;
  SystemSimReport rep = simulate_system(sys, alloc, cfg);
  std::uint64_t sum = 0;
  for (const auto& s : rep.cluster_stats) sum += s.jobs_released;
  for (const auto& s : rep.shared_stats) sum += s.jobs_released;
  EXPECT_EQ(sum, rep.total.jobs_released);
}

}  // namespace
}  // namespace fedcons
