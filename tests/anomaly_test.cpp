// Regression tests for Graham's timing anomaly — the justification for
// FEDCONS's template-replay run-time rule (paper, footnote 2).
#include "fedcons/listsched/anomaly.h"

#include <gtest/gtest.h>

#include "fedcons/gen/dag_gen.h"
#include "fedcons/listsched/list_scheduler.h"
#include "fedcons/util/rng.h"

namespace fedcons {
namespace {

TEST(AnomalyTest, GrahamClassicInstanceNumbers) {
  AnomalyInstance inst = make_graham_anomaly_instance();
  EXPECT_EQ(inst.processors, 3);
  EXPECT_EQ(inst.dag.num_vertices(), 9u);
  EXPECT_EQ(inst.dag.num_edges(), 5u);
  // The canonical figures: 12 with full WCETs, 13 with unit-shorter jobs.
  EXPECT_EQ(inst.wcet_makespan, 12);
  EXPECT_EQ(inst.reduced_makespan, 13);
}

TEST(AnomalyTest, ReducedTimesAreLegal) {
  AnomalyInstance inst = make_graham_anomaly_instance();
  ASSERT_EQ(inst.reduced_exec_times.size(), inst.dag.num_vertices());
  for (std::size_t v = 0; v < inst.dag.num_vertices(); ++v) {
    EXPECT_GE(inst.reduced_exec_times[v], 1);
    EXPECT_LE(inst.reduced_exec_times[v],
              inst.dag.wcet(static_cast<VertexId>(v)));
  }
}

TEST(AnomalyTest, TemplateReplayIsImmune) {
  // With template replay every job finishes no later than its σ slot, so the
  // dag-job completes within the WCET makespan regardless of actual times.
  AnomalyInstance inst = make_graham_anomaly_instance();
  TemplateSchedule sigma = list_schedule(inst.dag, inst.processors);
  Time worst_completion = 0;
  for (const auto& slot : sigma.jobs()) {
    Time finish = slot.start + inst.reduced_exec_times[slot.vertex];
    worst_completion = std::max(worst_completion, finish);
  }
  EXPECT_LE(worst_completion, inst.wcet_makespan);
  EXPECT_LT(worst_completion, inst.reduced_makespan);
}

TEST(AnomalyTest, FindAnomalyLocatesTheClassicOne) {
  AnomalyInstance classic = make_graham_anomaly_instance();
  AnomalyInstance found =
      find_anomaly(classic.dag, classic.processors, /*seed=*/1,
                   /*attempts=*/5000);
  ASSERT_GT(found.processors, 0) << "search failed on a known-anomalous DAG";
  EXPECT_GT(found.reduced_makespan, found.wcet_makespan);
}

TEST(AnomalyTest, FindAnomalyReportsNoneOnChain) {
  // A pure chain has no scheduling freedom: shortening jobs can only help.
  Dag g;
  VertexId prev = g.add_vertex(5);
  for (int i = 0; i < 4; ++i) {
    VertexId v = g.add_vertex(5);
    g.add_edge(prev, v);
    prev = v;
  }
  AnomalyInstance none = find_anomaly(g, 2, /*seed=*/2, /*attempts=*/200);
  EXPECT_EQ(none.processors, 0);
}

TEST(AnomalyTest, AnomaliesExistBeyondTheExactClassicInstance) {
  // Anomalies are not a knife-edge curiosity: WCET perturbations of the
  // Graham structure still admit anomalous execution-time reductions.
  AnomalyInstance classic = make_graham_anomaly_instance();
  Rng rng(99);
  int found = 0;
  for (int i = 0; i < 30 && found == 0; ++i) {
    Dag g;
    for (std::size_t v = 0; v < classic.dag.num_vertices(); ++v) {
      Time w = classic.dag.wcet(static_cast<VertexId>(v));
      g.add_vertex(std::max<Time>(1, w + rng.uniform_int(0, 1)));
    }
    for (VertexId u = 0; u < classic.dag.num_vertices(); ++u) {
      for (VertexId s : classic.dag.successors(u)) g.add_edge(u, s);
    }
    AnomalyInstance inst = find_anomaly(g, classic.processors,
                                        /*seed=*/1000 + i,
                                        /*attempts=*/500);
    if (inst.processors > 0) ++found;
  }
  EXPECT_GE(found, 1);
}

}  // namespace
}  // namespace fedcons
