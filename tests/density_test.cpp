// Tests for density-based sufficient tests.
#include "fedcons/analysis/density.h"

#include <gtest/gtest.h>

#include <vector>

#include "fedcons/analysis/edf_uniproc.h"
#include "fedcons/util/check.h"

namespace fedcons {
namespace {

TEST(DensityTest, TotalsAndMax) {
  std::vector<SporadicTask> tasks{SporadicTask(1, 2, 4),   // δ = 1/2
                                  SporadicTask(1, 4, 4),   // δ = 1/4
                                  SporadicTask(3, 12, 6)}; // δ = 3/6 = 1/2
  EXPECT_EQ(total_density(tasks), BigRational(5, 4));
  EXPECT_EQ(max_density(tasks), BigRational(1, 2));
}

TEST(DensityTest, MaxDensityRequiresNonEmpty) {
  EXPECT_THROW(max_density({}), ContractViolation);
}

TEST(DensityTest, UniprocAcceptsAtBoundary) {
  std::vector<SporadicTask> tasks{SporadicTask(1, 2, 4),
                                  SporadicTask(1, 2, 4)};
  EXPECT_TRUE(uniproc_density_test(tasks));  // Σδ = 1 exactly
  tasks.emplace_back(1, 100, 100);
  EXPECT_FALSE(uniproc_density_test(tasks));  // now strictly above 1
}

TEST(DensityTest, UniprocDensityImpliesExactEdf) {
  // Density test is sufficient: whenever it accepts, the exact test must too.
  std::vector<SporadicTask> tasks{SporadicTask(2, 5, 10),
                                  SporadicTask(1, 4, 8),
                                  SporadicTask(3, 10, 30)};
  ASSERT_TRUE(uniproc_density_test(tasks));
  EXPECT_TRUE(edf_schedulable(tasks));
}

TEST(DensityTest, UniprocDensityIsConservative) {
  // The exact test accepts sets the density test rejects: the classic gap.
  std::vector<SporadicTask> tasks{SporadicTask(1, 1, 3),
                                  SporadicTask(1, 2, 3),
                                  SporadicTask(1, 3, 3)};
  // Σδ = 1 + 1/2 + 1/3 > 1 → density rejects…
  EXPECT_FALSE(uniproc_density_test(tasks));
  // …but demand never exceeds t (1,2,3 staircase) → exact accepts.
  EXPECT_TRUE(edf_schedulable(tasks));
}

TEST(GedfDensityTest, SingleProcessorReducesToUniproc) {
  std::vector<SporadicTask> tasks{SporadicTask(1, 2, 4),
                                  SporadicTask(1, 2, 4)};
  EXPECT_EQ(gedf_density_test(tasks, 1), uniproc_density_test(tasks));
}

TEST(GedfDensityTest, BoundFormula) {
  // Two tasks with δ = 1/2 on m = 2: Σδ = 1 ≤ 2 − 1·(1/2) = 3/2: accept.
  std::vector<SporadicTask> ok{SporadicTask(1, 2, 4), SporadicTask(1, 2, 4)};
  EXPECT_TRUE(gedf_density_test(ok, 2));
  // One δ = 1 task plus two δ = 3/4 tasks on m = 2:
  // Σδ = 5/2 > 2 − 1·1 = 1: reject.
  std::vector<SporadicTask> bad{SporadicTask(4, 4, 4), SporadicTask(3, 4, 4),
                                SporadicTask(3, 4, 4)};
  EXPECT_FALSE(gedf_density_test(bad, 2));
}

TEST(GedfDensityTest, EmptyAcceptsAndValidatesM) {
  EXPECT_TRUE(gedf_density_test({}, 4));
  EXPECT_THROW(gedf_density_test({}, 0), ContractViolation);
}

TEST(GedfDensityTest, MoreProcessorsNeverHurt) {
  std::vector<SporadicTask> tasks{SporadicTask(2, 4, 8),
                                  SporadicTask(3, 6, 6),
                                  SporadicTask(1, 2, 4)};
  bool prev = false;
  for (int m = 1; m <= 8; ++m) {
    bool now = gedf_density_test(tasks, m);
    EXPECT_TRUE(!prev || now) << "acceptance must be monotone in m";
    prev = now;
  }
}

}  // namespace
}  // namespace fedcons
