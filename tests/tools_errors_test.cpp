// CLI error-path tests: all three tools must exit 2 with usage on unknown or
// malformed flags, and nonzero on malformed input — never crash or silently
// succeed. Binaries are injected as compile definitions by CMake.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <string>

#ifdef _WIN32
#error "this suite drives tools through POSIX wait-status decoding"
#endif
#include <sys/wait.h>

namespace {

/// Run a shell command with all output discarded; return its exit code.
int exit_code(const std::string& command) {
  const int status = std::system((command + " >/dev/null 2>&1").c_str());
  if (status == -1) return -1;
  if (WIFEXITED(status)) return WEXITSTATUS(status);
  return -2;  // killed by a signal — always a test failure
}

const std::string kCli = FEDCONS_CLI_BIN;
const std::string kGen = FEDCONS_GEN_BIN;
const std::string kConform = FEDCONS_CONFORM_BIN;
const std::string kServe = FEDCONS_SERVE_BIN;
const std::string kLoadgen = FEDCONS_LOADGEN_BIN;

TEST(ToolsErrorsTest, UnknownFlagsExitTwo) {
  EXPECT_EQ(exit_code(kCli + " --no-such-flag"), 2);
  EXPECT_EQ(exit_code(kGen + " --no-such-flag"), 2);
  EXPECT_EQ(exit_code(kConform + " --no-such-flag"), 2);
  EXPECT_EQ(exit_code(kServe + " --no-such-flag"), 2);
  EXPECT_EQ(exit_code(kLoadgen + " --no-such-flag"), 2);
  // A typo'd known flag must not fall through to a default mode.
  EXPECT_EQ(exit_code(kCli + " --exmple"), 2);
  EXPECT_EQ(exit_code(kGen + " --presets=avionics"), 2);
  EXPECT_EQ(exit_code(kConform + " --trails=10"), 2);
  EXPECT_EQ(exit_code(kServe + " --sockets=/tmp/x.sock"), 2);
  EXPECT_EQ(exit_code(kLoadgen + " --connection=4"), 2);
}

TEST(ToolsErrorsTest, ServeToolsValidateFlagValues) {
  // --threads=8x is the canonical lax-parsing failure: stoll's silent
  // prefix parse would run a daemon with 8 workers. Exit 2, loudly.
  EXPECT_EQ(exit_code(kServe + " --socket=/tmp/x.sock --threads=8x"), 2);
  EXPECT_EQ(exit_code(kServe + " --socket=/tmp/x.sock --max-batch=0x40"), 2);
  EXPECT_EQ(exit_code(kServe +
                      " --socket=/tmp/x.sock --queue-depth=" +
                      "99999999999999999999"), 2);
  // Exactly one listener, and values must be in range.
  EXPECT_EQ(exit_code(kServe), 2);
  EXPECT_EQ(exit_code(kServe + " --socket=/tmp/x.sock --port=0"), 2);
  EXPECT_EQ(exit_code(kServe + " --socket=/tmp/x.sock --threads=0"), 2);
  EXPECT_EQ(exit_code(kLoadgen + " --socket=/tmp/x.sock --pipeline=16x"), 2);
  EXPECT_EQ(exit_code(kLoadgen + " --socket=/tmp/x.sock --duration-s=2s"), 2);
  EXPECT_EQ(exit_code(kLoadgen), 2);  // needs --socket or --port
}

TEST(ToolsErrorsTest, StrayPositionalArgumentsExitTwo) {
  // Bare tokens are always positional — the old space-separated value form
  // consumed "stray" below as a flag value, so "--json file.json" silently
  // swallowed the input file. Both orders must reject now.
  EXPECT_EQ(exit_code(kCli + " stray --example"), 2);
  EXPECT_EQ(exit_code(kCli + " --example stray"), 2);
  EXPECT_EQ(exit_code(kCli + " --json file.json"), 2);
  EXPECT_EQ(exit_code(kGen + " stray --list-presets"), 2);
  EXPECT_EQ(exit_code(kGen + " --list-presets stray"), 2);
  EXPECT_EQ(exit_code(kConform + " stray --list"), 2);
  EXPECT_EQ(exit_code(kConform + " --list stray"), 2);
}

TEST(ToolsErrorsTest, MalformedFlagValuesExitTwo) {
  // --m is read before the workload file is even opened.
  EXPECT_EQ(exit_code(kCli + " --file=whatever --m=banana"), 2);
  EXPECT_EQ(exit_code(kGen + " --tasks=banana"), 2);
  EXPECT_EQ(exit_code(kConform + " --isolation --trials=banana"), 2);
}

TEST(ToolsErrorsTest, TrailingGarbageNumbersExitTwo) {
  // stoll("8x") returns 8, so --threads=8x used to run with 8 threads and
  // --m=8x analyzed on 8 processors. The whole token must parse.
  EXPECT_EQ(exit_code(kConform + " --trials=10 --threads=8x"), 2);
  EXPECT_EQ(exit_code(kCli + " --file=whatever --m=8x"), 2);
  EXPECT_EQ(exit_code(kGen + " --tasks=3.5"), 2);
  EXPECT_EQ(exit_code(kCli + " --file=whatever --m=99999999999999999999"), 2);
}

/// A minimal valid workload on disk, for exercising post-parse flag errors.
std::string valid_workload_path() {
  static const std::string path = [] {
    const std::string p = ::testing::TempDir() + "/tools_errors_ok.tasks";
    std::ofstream out(p);
    out << "task a\n  deadline 5\n  period 5\n  vertex 1\nend\n"
        << "task b\n  deadline 5\n  period 5\n  vertex 1\nend\n";
    return p;
  }();
  return path;
}

TEST(ToolsErrorsTest, MalformedInjectSpecsExitTwo) {
  const std::string base = kCli + " --file=" + valid_workload_path() + " --m=2";
  EXPECT_EQ(exit_code(base + " --inject=bogus:1"), 2);
  EXPECT_EQ(exit_code(base + " --inject=task:"), 2);
  EXPECT_EQ(exit_code(base + " --inject=task:a,overrun:3000 --enforce=banana"),
            2);
  // Processor failures must name a processor the platform actually has.
  EXPECT_EQ(exit_code(base + " --inject=proc:9@100"), 2);
  // The happy paths behind the same flags still work.
  EXPECT_EQ(exit_code(base + " --inject=task:a,overrun:3000 --enforce=on"), 0);
  EXPECT_EQ(exit_code(base + " --inject=proc:1@100"), 0);
}

TEST(ToolsErrorsTest, MalformedWorkloadFilesFailCleanly) {
  const std::string path = ::testing::TempDir() + "/tools_errors_bad.tasks";
  {
    std::ofstream out(path);
    out << "task broken\n  deadline nan\n  period 5\n  vertex 1\nend\n";
  }
  EXPECT_NE(exit_code(kCli + " --file=" + path), 0);
  EXPECT_NE(exit_code(kCli + " --file=/nonexistent/no.tasks"), 0);
}

TEST(ToolsErrorsTest, ValidInvocationsStillExitZero) {
  // Guard against over-eager rejection: the documented happy paths work.
  EXPECT_EQ(exit_code(kCli + " --example"), 0);
  EXPECT_EQ(exit_code(kGen + " --list-presets"), 0);
  EXPECT_EQ(exit_code(kConform + " --list"), 0);
}

}  // namespace
