// Tests for dedicated-cluster simulation: template replay vs online re-run.
#include "fedcons/sim/cluster_sim.h"

#include <gtest/gtest.h>

#include "fedcons/core/builders.h"
#include "fedcons/listsched/anomaly.h"
#include "fedcons/listsched/list_scheduler.h"
#include "fedcons/util/check.h"

namespace fedcons {
namespace {

TEST(ClusterSimTest, TemplateReplayMeetsDeadlinesAtWcet) {
  DagTask t = make_paper_example_task();
  TemplateSchedule sigma = list_schedule(t.graph(), 2);
  ASSERT_LE(sigma.makespan(), t.deadline());
  SimConfig cfg;
  cfg.horizon = 2000;
  Rng rng(1);
  auto releases = generate_releases(t, cfg, rng);
  SimStats s = simulate_cluster(t, sigma, releases, cfg,
                                ClusterDispatch::kTemplateReplay);
  EXPECT_EQ(s.jobs_released, releases.size());
  EXPECT_EQ(s.deadline_misses, 0u);
  EXPECT_LE(s.max_response_time, sigma.makespan());
}

TEST(ClusterSimTest, TemplateReplaySafeUnderReducedExecTimes) {
  DagTask t = make_paper_example_task();
  TemplateSchedule sigma = list_schedule(t.graph(), 2);
  SimConfig cfg;
  cfg.horizon = 5000;
  cfg.exec = ExecModel::kUniform;
  cfg.exec_lo = 0.3;
  Rng rng(2);
  auto releases = generate_releases(t, cfg, rng);
  SimStats s = simulate_cluster(t, sigma, releases, cfg,
                                ClusterDispatch::kTemplateReplay);
  EXPECT_EQ(s.deadline_misses, 0u);
}

TEST(ClusterSimTest, OnlineRerunMissesOnGrahamAnomaly) {
  // The paper's footnote-2 scenario, end to end: σ fits D exactly, the
  // anomalous re-run overshoots it.
  AnomalyInstance inst = make_graham_anomaly_instance();
  DagTask t(inst.dag, /*deadline=*/inst.wcet_makespan,
            /*period=*/inst.wcet_makespan);
  TemplateSchedule sigma = list_schedule(t.graph(), inst.processors);
  ASSERT_EQ(sigma.makespan(), inst.wcet_makespan);

  // One release with exactly the anomalous execution times.
  std::vector<DagJobRelease> releases(1);
  releases[0].release = 0;
  releases[0].exec_times = inst.reduced_exec_times;

  SimConfig cfg;
  cfg.horizon = 100;
  SimStats replay = simulate_cluster(t, sigma, releases, cfg,
                                     ClusterDispatch::kTemplateReplay);
  EXPECT_EQ(replay.deadline_misses, 0u);

  SimStats rerun = simulate_cluster(t, sigma, releases, cfg,
                                    ClusterDispatch::kOnlineRerun);
  EXPECT_EQ(rerun.deadline_misses, 1u);
  EXPECT_EQ(rerun.max_lateness, inst.reduced_makespan - inst.wcet_makespan);
}

TEST(ClusterSimTest, RejectsMismatchedSchedule) {
  DagTask t = make_paper_example_task();
  Dag other;
  other.add_vertex(1);
  TemplateSchedule wrong = list_schedule(other, 1);
  SimConfig cfg;
  Rng rng(3);
  auto releases = generate_releases(t, cfg, rng);
  EXPECT_THROW(simulate_cluster(t, wrong, releases, cfg,
                                ClusterDispatch::kTemplateReplay),
               ContractViolation);
}

TEST(ClusterSimTest, BusyFractionPositive) {
  DagTask t = make_paper_example_task();
  TemplateSchedule sigma = list_schedule(t.graph(), 1);
  SimConfig cfg;
  cfg.horizon = 1000;
  Rng rng(4);
  auto releases = generate_releases(t, cfg, rng);
  SimStats s = simulate_cluster(t, sigma, releases, cfg,
                                ClusterDispatch::kTemplateReplay);
  // vol 9 every 20 ticks on 1 processor ≈ 0.45 busy.
  EXPECT_NEAR(s.busy_fraction, 0.45, 0.05);
}

TEST(ClusterSimTest, DispatchNames) {
  EXPECT_STREQ(to_string(ClusterDispatch::kTemplateReplay),
               "template-replay");
  EXPECT_STREQ(to_string(ClusterDispatch::kOnlineRerun), "online-rerun");
}

}  // namespace
}  // namespace fedcons
