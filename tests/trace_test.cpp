// Tests for execution traces and their validation across every simulator
// engine — the audit trail behind "zero deadline misses".
#include "fedcons/sim/trace.h"

#include <gtest/gtest.h>

#include <array>

#include "fedcons/core/builders.h"
#include "fedcons/sim/cluster_sim.h"
#include "fedcons/sim/edf_sim.h"
#include "fedcons/sim/global_edf_sim.h"
#include "fedcons/util/check.h"

namespace fedcons {
namespace {

TEST(TraceTest, BasicAccounting) {
  ExecutionTrace tr;
  tr.add(0, 1, 0, 5);
  tr.add(0, 2, 5, 7);
  tr.add(1, 1, 3, 4);
  EXPECT_EQ(tr.size(), 3u);
  EXPECT_EQ(tr.total_busy(), 8);
  EXPECT_EQ(tr.busy_on(0), 7);
  EXPECT_EQ(tr.busy_on(1), 1);
  EXPECT_EQ(tr.first_start(1), 0);
  EXPECT_EQ(tr.last_end(1), 5);
  EXPECT_EQ(tr.executed(1), 6);
  EXPECT_EQ(tr.first_start(99), kTimeInfinity);
  EXPECT_EQ(tr.last_end(99), 0);
}

TEST(TraceTest, RejectsMalformedSegments) {
  ExecutionTrace tr;
  EXPECT_THROW(tr.add(0, 1, 5, 5), ContractViolation);
  EXPECT_THROW(tr.add(0, 1, 5, 3), ContractViolation);
  EXPECT_THROW(tr.add(-1, 1, 0, 1), ContractViolation);
}

TEST(TraceTest, ValidateAcceptsLegalSchedule) {
  ExecutionTrace tr;
  tr.add(0, 1, 0, 5);
  tr.add(0, 2, 5, 9);   // back-to-back is fine (end exclusive)
  tr.add(1, 3, 2, 8);   // different processor may overlap in time
  EXPECT_FALSE(tr.validate().has_value());
}

TEST(TraceTest, ValidateCatchesOverlap) {
  ExecutionTrace tr;
  tr.add(0, 1, 0, 5);
  tr.add(0, 2, 4, 6);
  auto err = tr.validate();
  ASSERT_TRUE(err.has_value());
  EXPECT_NE(err->find("overlaps"), std::string::npos);
  EXPECT_NE(err->find("processor 0"), std::string::npos);
}

TEST(TraceTest, EmptyTraceValidates) {
  ExecutionTrace tr;
  EXPECT_TRUE(tr.empty());
  EXPECT_FALSE(tr.validate().has_value());
  EXPECT_EQ(tr.total_busy(), 0);
}

TEST(TraceTest, FirstViolationAdjacentSegmentsPass) {
  // end == next start is legal on one processor, whatever the job identity:
  // segments are half-open, so [0, 5) followed by [5, 9) never co-executes.
  ExecutionTrace tr;
  tr.add(0, 1, 0, 5);
  tr.add(0, 2, 5, 9);
  tr.add(1, 3, 4, 7);
  tr.add(1, 4, 7, 8);
  EXPECT_FALSE(tr.first_violation().has_value());
}

TEST(TraceTest, FirstViolationZeroGapSameUidSegmentsPass) {
  // A preempted job resuming the instant its previous slice ends — same uid,
  // zero gap — is a legal (if redundant) trace, on the same processor or
  // after a migration.
  ExecutionTrace tr;
  tr.add(0, 7, 0, 3);
  tr.add(0, 7, 3, 6);   // same processor, same uid, zero gap
  tr.add(1, 7, 6, 10);  // migrates with zero gap
  EXPECT_FALSE(tr.first_violation().has_value());
  EXPECT_EQ(tr.executed(7), 10);
}

TEST(TraceTest, FirstViolationHonorsReleaseMap) {
  ExecutionTrace tr;
  tr.add(0, 1, 4, 6);
  tr.add(0, 2, 6, 8);
  std::map<std::uint64_t, Time> releases{{1, 4}, {2, 7}};
  auto err = tr.first_violation(releases);
  ASSERT_TRUE(err.has_value());
  EXPECT_NE(err->find("job 2"), std::string::npos);
  EXPECT_NE(err->find("release"), std::string::npos);
  // Starting exactly at release is legal.
  releases[2] = 6;
  EXPECT_FALSE(tr.first_violation(releases).has_value());
}

TEST(TraceTest, FirstViolationUnmappedUidsAreUnconstrained) {
  // Jobs absent from the releases map carry no release constraint — callers
  // may validate a subset of jobs (e.g. one task's stream) without modeling
  // the rest.
  ExecutionTrace tr;
  tr.add(0, 10, 0, 2);  // would "violate" any positive release, but unmapped
  tr.add(0, 11, 2, 5);
  std::map<std::uint64_t, Time> releases{{11, 1}};
  EXPECT_FALSE(tr.first_violation(releases).has_value());
  // An empty map degenerates to overlap checking only == validate().
  EXPECT_FALSE(tr.first_violation({}).has_value());
}

TEST(TraceTest, FirstViolationStillCatchesOverlapWithReleases) {
  ExecutionTrace tr;
  tr.add(0, 1, 0, 5);
  tr.add(0, 2, 4, 6);
  auto err = tr.first_violation({{1, 0}, {2, 0}});
  ASSERT_TRUE(err.has_value());
  EXPECT_NE(err->find("overlaps"), std::string::npos);
}

TEST(TraceTest, ClusterReplayTraceIsLegal) {
  DagTask t = make_paper_example_task();
  TemplateSchedule sigma = list_schedule(t.graph(), 2);
  SimConfig cfg;
  cfg.horizon = 5000;
  cfg.exec = ExecModel::kUniform;
  cfg.exec_lo = 0.4;
  Rng rng(1);
  auto releases = generate_releases(t, cfg, rng);
  ExecutionTrace tr;
  SimStats s = simulate_cluster(t, sigma, releases, cfg,
                                ClusterDispatch::kTemplateReplay,
                                ListPolicy::kVertexOrder, &tr);
  EXPECT_EQ(s.deadline_misses, 0u);
  EXPECT_FALSE(tr.validate().has_value());
  // Every executed tick is in the trace: segment total equals Σ exec times.
  Time expected = 0;
  for (const auto& job : releases) {
    for (Time e : job.exec_times) expected += e;
  }
  EXPECT_EQ(tr.total_busy(), expected);
}

TEST(TraceTest, EdfSimTraceIsLegalAndConserving) {
  SimConfig cfg;
  cfg.horizon = 10000;
  std::vector<EdfTaskStream> streams;
  Rng rng(2);
  streams.push_back(EdfTaskStream{
      generate_sequential_releases(3, 10, 20, cfg, rng)});
  streams.push_back(EdfTaskStream{
      generate_sequential_releases(5, 15, 30, cfg, rng)});
  ExecutionTrace tr;
  SimStats s = simulate_edf_uniproc(streams, cfg, &tr);
  EXPECT_EQ(s.deadline_misses, 0u);
  EXPECT_FALSE(tr.validate().has_value());
  // Work conservation: each job's recorded execution equals its demand.
  for (std::size_t st = 0; st < streams.size(); ++st) {
    for (std::size_t j = 0; j < streams[st].jobs.size(); ++j) {
      std::uint64_t uid = (static_cast<std::uint64_t>(st) << 32) | j;
      EXPECT_EQ(tr.executed(uid), streams[st].jobs[j].exec_time);
      EXPECT_GE(tr.first_start(uid), streams[st].jobs[j].release);
    }
  }
}

TEST(TraceTest, FpSimTraceIsLegal) {
  SimConfig cfg;
  cfg.horizon = 5000;
  std::vector<EdfTaskStream> streams;
  Rng rng(3);
  streams.push_back(EdfTaskStream{
      generate_sequential_releases(2, 5, 10, cfg, rng)});
  streams.push_back(EdfTaskStream{
      generate_sequential_releases(4, 20, 25, cfg, rng)});
  ExecutionTrace tr;
  SimStats s = simulate_fp_uniproc(streams, cfg, &tr);
  EXPECT_EQ(s.deadline_misses, 0u);
  EXPECT_FALSE(tr.validate().has_value());
}

TEST(TraceTest, GlobalEdfTraceIsLegal) {
  TaskSystem sys;
  std::array<Time, 3> branches{4, 5, 6};
  sys.add(DagTask(make_fork_join(1, branches, 1), 20, 40));
  sys.add(make_paper_example_task());
  SimConfig cfg;
  cfg.horizon = 4000;
  Rng rng(4);
  std::vector<std::vector<DagJobRelease>> releases;
  for (const auto& t : sys) {
    Rng child = rng.split();
    releases.push_back(generate_releases(t, cfg, child));
  }
  ExecutionTrace tr;
  SimStats s = simulate_global_edf(sys, releases, 3, cfg, &tr);
  EXPECT_EQ(s.deadline_misses, 0u);
  EXPECT_FALSE(tr.validate().has_value());
  EXPECT_EQ(tr.total_busy(), [&] {
    Time sum = 0;
    for (const auto& stream : releases) {
      for (const auto& job : stream) {
        for (Time e : job.exec_times) sum += e;
      }
    }
    return sum;
  }());
}

TEST(TraceTest, PipelinedClusterTraceIsLegal) {
  std::array<Time, 3> w{4, 4, 4};
  DagTask task(make_chain(w), 15, 5, "overlap");
  TemplateSchedule sigma = list_schedule(task.graph(), 1);
  SimConfig cfg;
  cfg.horizon = 3000;
  Rng rng(5);
  auto releases = generate_releases(task, cfg, rng);
  ExecutionTrace tr;
  SimStats s = simulate_pipelined_cluster(task, sigma, 3, releases, cfg, &tr);
  EXPECT_EQ(s.deadline_misses, 0u);
  EXPECT_FALSE(tr.validate().has_value());
}

}  // namespace
}  // namespace fedcons
