// Tests for workload presets.
#include "fedcons/gen/presets.h"

#include <gtest/gtest.h>

#include "fedcons/util/rng.h"

namespace fedcons {
namespace {

TEST(PresetsTest, AllPresetsListed) {
  const auto& presets = workload_presets();
  ASSERT_EQ(presets.size(), 4u);
  for (const auto& p : presets) {
    EXPECT_FALSE(p.name.empty());
    EXPECT_FALSE(p.description.empty());
  }
}

TEST(PresetsTest, LookupByName) {
  EXPECT_TRUE(find_preset("avionics").has_value());
  EXPECT_TRUE(find_preset("automotive").has_value());
  EXPECT_TRUE(find_preset("vision").has_value());
  EXPECT_TRUE(find_preset("mixed").has_value());
  EXPECT_FALSE(find_preset("nonexistent").has_value());
}

TEST(PresetsTest, EveryPresetGeneratesValidSystems) {
  Rng rng(5);
  for (const auto& preset : workload_presets()) {
    for (int trial = 0; trial < 5; ++trial) {
      TaskSystem sys = generate_task_system(rng, preset.params);
      EXPECT_EQ(sys.size(),
                static_cast<std::size_t>(preset.params.num_tasks))
          << preset.name;
      EXPECT_NE(sys.deadline_class(), DeadlineClass::kArbitrary)
          << preset.name;
      for (const auto& t : sys) EXPECT_LE(t.len(), t.deadline());
    }
  }
}

TEST(PresetsTest, VisionSkewsHighDensity) {
  // The vision preset exists to exercise dedicated clusters: high-density
  // tasks should be common; the automotive preset should mostly avoid them.
  Rng rng(6);
  int vision_high = 0, automotive_high = 0;
  auto vision = *find_preset("vision");
  auto automotive = *find_preset("automotive");
  for (int trial = 0; trial < 20; ++trial) {
    vision_high += static_cast<int>(
        generate_task_system(rng, vision.params).high_density_tasks().size());
    automotive_high += static_cast<int>(
        generate_task_system(rng, automotive.params)
            .high_density_tasks()
            .size());
  }
  EXPECT_GT(vision_high, automotive_high);
}

TEST(PresetsTest, DescribeMentionsEveryName) {
  std::string text = describe_presets();
  for (const auto& p : workload_presets()) {
    EXPECT_NE(text.find(p.name), std::string::npos);
  }
}

}  // namespace
}  // namespace fedcons
