// Dispatch-mode safety: template replay is anomaly-proof under arbitrary
// early completions, online LS rerun demonstrably is not, and every pinned
// artifact in tests/conformance_corpus/ keeps reproducing its violation.
#include "fedcons/sim/cluster_sim.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "fedcons/conform/artifact.h"
#include "fedcons/gen/dag_gen.h"
#include "fedcons/listsched/anomaly.h"
#include "fedcons/sim/release_generator.h"
#include "fedcons/util/rng.h"

namespace fedcons {
namespace {

/// Property: for ANY dag, processor count, release pattern, and actual
/// execution times ≤ WCET, template replay finishes every dag-job within
/// sigma.makespan() of its release — the run-time guarantee MINPROCS'
/// acceptance (makespan ≤ D) relies on.
TEST(TemplateReplaySafetyTest, EarlyCompletionNeverExtendsResponseTimes) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    Rng rng(seed);
    LayeredDagParams params;
    params.max_wcet = 20;
    Dag dag = generate_layered_dag(rng, params);
    const int m = static_cast<int>(rng.uniform_int(1, 4));
    const TemplateSchedule sigma = list_schedule(dag, m);

    // Deadline exactly at the template makespan: the tightest acceptance
    // MINPROCS can make, so any anomaly would surface as a miss.
    const Time d = sigma.makespan();
    const Time t = d + rng.uniform_int(0, 10);
    DagTask task(std::move(dag), d, t, "safety");

    SimConfig cfg;
    cfg.horizon = 50 * t;
    cfg.release = ReleaseModel::kSporadic;
    cfg.jitter_frac = 1.0;
    cfg.exec = ExecModel::kUniform;
    cfg.exec_lo = 0.1;  // aggressive reductions — anomaly bait
    cfg.seed = seed;

    Rng rel_rng(seed ^ 0x9e3779b97f4a7c15ull);
    const auto releases = generate_releases(task, cfg, rel_rng);
    ASSERT_FALSE(releases.empty());
    const SimStats stats =
        simulate_cluster(task, sigma, releases, cfg,
                         ClusterDispatch::kTemplateReplay);
    EXPECT_EQ(stats.deadline_misses, 0u) << "seed " << seed;
    EXPECT_LE(stats.max_response_time, sigma.makespan()) << "seed " << seed;
  }
}

TEST(OnlineRerunAnomalyTest, GrahamInstanceMissesOnlyUnderRerun) {
  const AnomalyInstance inst = make_graham_anomaly_instance();
  ASSERT_EQ(inst.processors, 3);
  ASSERT_GT(inst.reduced_makespan, inst.wcet_makespan);

  const TemplateSchedule sigma = list_schedule(inst.dag, inst.processors);
  ASSERT_EQ(sigma.makespan(), inst.wcet_makespan);

  // Deadline == WCET makespan: schedulable by the template argument, and any
  // online-LS elongation is a miss. One synchronous dag-job with the
  // anomaly's reduced execution times is enough.
  DagTask task(Dag(inst.dag), inst.wcet_makespan, 2 * inst.wcet_makespan,
               "graham");
  std::vector<DagJobRelease> releases{
      DagJobRelease{0, inst.reduced_exec_times}};
  SimConfig cfg;
  cfg.horizon = 2 * inst.wcet_makespan;

  const SimStats online = simulate_cluster(
      task, sigma, releases, cfg, ClusterDispatch::kOnlineRerun);
  EXPECT_EQ(online.deadline_misses, 1u);
  EXPECT_EQ(online.max_lateness, inst.reduced_makespan - inst.wcet_makespan);

  const SimStats replay = simulate_cluster(
      task, sigma, releases, cfg, ClusterDispatch::kTemplateReplay);
  EXPECT_EQ(replay.deadline_misses, 0u);
  EXPECT_LE(replay.max_response_time, sigma.makespan());
}

TEST(ConformanceCorpusTest, EveryPinnedArtifactStillReproduces) {
  const std::filesystem::path dir = CONFORMANCE_CORPUS_DIR;
  ASSERT_TRUE(std::filesystem::is_directory(dir)) << dir;
  std::vector<std::filesystem::path> files;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.path().extension() == ".json") files.push_back(entry.path());
  }
  // The corpus ships at least the hand-crafted witness, the Graham
  // online-rerun exhibit, and one harness-minimized find.
  ASSERT_GE(files.size(), 3u);
  for (const auto& file : files) {
    std::ifstream in(file);
    ASSERT_TRUE(in) << file;
    std::ostringstream text;
    text << in.rdbuf();
    const ViolationArtifact artifact = parse_artifact(text.str());
    const ConformanceOutcome outcome = replay_artifact(artifact);
    EXPECT_TRUE(outcome.supported) << file;
    EXPECT_TRUE(outcome.admitted) << file;
    EXPECT_TRUE(outcome.violation())
        << file << ": pinned violation no longer reproduces";
  }
}

}  // namespace
}  // namespace fedcons
