// Tests for table / CSV rendering.
#include "fedcons/util/table.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "fedcons/util/check.h"

namespace fedcons {
namespace {

TEST(TableTest, RowArityEnforced) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), ContractViolation);
  t.add_row({"x", "y"});
  EXPECT_EQ(t.num_rows(), 1u);
  EXPECT_EQ(t.num_cols(), 2u);
}

TEST(TableTest, EmptyHeaderRejected) {
  EXPECT_THROW(Table({}), ContractViolation);
}

TEST(TableTest, PrintAlignsColumns) {
  Table t({"name", "value"});
  t.add_row({"x", "1"});
  t.add_row({"longer-name", "12345"});
  std::ostringstream os;
  t.print(os);
  std::string out = os.str();
  // Header, separator, two data rows.
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 4);
  EXPECT_NE(out.find("longer-name"), std::string::npos);
  EXPECT_NE(out.find("-----"), std::string::npos);
}

TEST(TableTest, NumericCellsRightAligned) {
  Table t({"v"});
  t.add_row({"7"});
  t.add_row({"1234"});
  std::ostringstream os;
  t.print(os);
  // The short numeric value is padded on the left ("   7").
  EXPECT_NE(os.str().find("   7"), std::string::npos);
}

TEST(TableTest, CsvBasics) {
  Table t({"a", "b"});
  t.add_row({"1", "2"});
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "a,b\n1,2\n");
}

TEST(TableTest, CsvEscapesSpecials) {
  Table t({"text"});
  t.add_row({"has,comma"});
  t.add_row({"has\"quote"});
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_NE(os.str().find("\"has,comma\""), std::string::npos);
  EXPECT_NE(os.str().find("\"has\"\"quote\""), std::string::npos);
}

TEST(FormatTest, FmtDouble) {
  EXPECT_EQ(fmt_double(1.0 / 3.0, 3), "0.333");
  EXPECT_EQ(fmt_double(2.0, 1), "2.0");
  EXPECT_EQ(fmt_double(-0.5, 2), "-0.50");
}

TEST(FormatTest, FmtInt) {
  EXPECT_EQ(fmt_int(0), "0");
  EXPECT_EQ(fmt_int(-12345), "-12345");
}

TEST(FormatTest, FmtRatio) {
  EXPECT_EQ(fmt_ratio(1, 2), "0.500");
  EXPECT_EQ(fmt_ratio(0, 0), "n/a");
  EXPECT_EQ(fmt_ratio(3, 4, 2), "0.75");
}

}  // namespace
}  // namespace fedcons
