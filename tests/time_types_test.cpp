// Tests for checked integer time arithmetic.
#include "fedcons/util/time_types.h"

#include <gtest/gtest.h>

#include <limits>

namespace fedcons {
namespace {

TEST(TimeTypesTest, CheckedAddNormal) {
  EXPECT_EQ(checked_add(2, 3), 5);
  EXPECT_EQ(checked_add(-2, 3), 1);
}

TEST(TimeTypesTest, CheckedAddOverflowThrows) {
  EXPECT_THROW(checked_add(std::numeric_limits<Time>::max(), 1),
               ContractViolation);
  EXPECT_THROW(checked_add(std::numeric_limits<Time>::min(), -1),
               ContractViolation);
}

TEST(TimeTypesTest, CheckedMulNormal) {
  EXPECT_EQ(checked_mul(6, 7), 42);
  EXPECT_EQ(checked_mul(-6, 7), -42);
  EXPECT_EQ(checked_mul(0, std::numeric_limits<Time>::max()), 0);
}

TEST(TimeTypesTest, CheckedMulOverflowThrows) {
  EXPECT_THROW(checked_mul(std::numeric_limits<Time>::max(), 2),
               ContractViolation);
}

TEST(TimeTypesTest, FloorDiv) {
  EXPECT_EQ(floor_div(7, 2), 3);
  EXPECT_EQ(floor_div(6, 2), 3);
  EXPECT_EQ(floor_div(0, 5), 0);
  EXPECT_EQ(floor_div(-7, 2), -4);
  EXPECT_EQ(floor_div(-6, 2), -3);
}

TEST(TimeTypesTest, CeilDiv) {
  EXPECT_EQ(ceil_div(7, 2), 4);
  EXPECT_EQ(ceil_div(6, 2), 3);
  EXPECT_EQ(ceil_div(0, 5), 0);
  EXPECT_EQ(ceil_div(-7, 2), -3);
  EXPECT_EQ(ceil_div(1, 1000000), 1);
}

TEST(TimeTypesTest, FloorCeilConsistency) {
  for (Time a = -20; a <= 20; ++a) {
    for (Time b = 1; b <= 7; ++b) {
      Time f = floor_div(a, b);
      Time c = ceil_div(a, b);
      EXPECT_LE(f * b, a);
      EXPECT_GT((f + 1) * b, a);
      EXPECT_GE(c * b, a);
      EXPECT_LT((c - 1) * b, a);
    }
  }
}

TEST(TimeTypesTest, Gcd) {
  EXPECT_EQ(gcd_time(12, 18), 6);
  EXPECT_EQ(gcd_time(18, 12), 6);
  EXPECT_EQ(gcd_time(-12, 18), 6);
  EXPECT_EQ(gcd_time(0, 5), 5);
  EXPECT_EQ(gcd_time(0, 0), 0);
  EXPECT_EQ(gcd_time(7, 13), 1);
}

TEST(TimeTypesTest, DivisionNeverOverflowsNearTheInt64Edge) {
  // Regression: ceil_div's textbook (a + b - 1)/b form wrapped when a and b
  // were both near 2^62, silently collapsing busy_period (and with it the
  // PDC testing bound) to 0 — a wrong-side schedulability verdict.
  const Time max = std::numeric_limits<Time>::max();
  EXPECT_EQ(ceil_div(max, max), 1);
  EXPECT_EQ(ceil_div(max - 1, max), 1);
  EXPECT_EQ(ceil_div(max, max - 1), 2);
  EXPECT_EQ(ceil_div(Time{1} << 62, (Time{1} << 62) + 8), 1);
  EXPECT_EQ(floor_div(max, max), 1);
  EXPECT_EQ(floor_div(max - 1, max), 0);
  EXPECT_EQ(floor_div(-max, max - 1), -2);
}

TEST(TimeTypesTest, Lcm) {
  EXPECT_EQ(checked_lcm(4, 6), 12);
  EXPECT_EQ(checked_lcm(1, 9), 9);
  EXPECT_EQ(checked_lcm(0, 9), 0);
  EXPECT_THROW(checked_lcm(std::numeric_limits<Time>::max() - 1,
                           std::numeric_limits<Time>::max() - 2),
               ContractViolation);
}

}  // namespace
}  // namespace fedcons
