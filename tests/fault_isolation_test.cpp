// Tests for the isolation property checker: the fuzzed claim that under
// enforcement no fault plan targeting one task can cost a DIFFERENT task a
// deadline, the enforcement-off cascade demonstration, thread-count
// determinism, and the pinned fault-artifact replay loop.
#include "fedcons/fault/isolation.h"

#include <gtest/gtest.h>

#include <array>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "fedcons/core/builders.h"
#include "fedcons/core/io.h"
#include "fedcons/fault/fault_artifact.h"

namespace fedcons {
namespace {

IsolationConfig small_config(std::size_t trials, SupervisionMode mode,
                             std::uint64_t seed) {
  IsolationConfig config = default_isolation_config();
  config.trials = trials;
  config.master_seed = seed;
  config.supervision = mode;
  return config;
}

// The headline acceptance claim: 500 seeded fault plans against enforced
// systems produce ZERO cross-task misses. Target misses are allowed (a
// throttled or deferred faulty task may miss its own deadlines).
TEST(IsolationFuzzTest, EnforcementIsolatesFiveHundredTrials) {
  const IsolationConfig config =
      small_config(500, SupervisionMode::kEnforce, 1);
  const IsolationReport report = run_isolation_fuzz(config);
  EXPECT_EQ(report.trials, 500u);
  EXPECT_GT(report.admitted, 0u);
  EXPECT_TRUE(report.isolated());
  EXPECT_EQ(report.cross_misses, 0u);
  EXPECT_TRUE(report.incidents.empty());
  EXPECT_EQ(report.counters.fault_isolation_trials, 500u);
  // Faults were genuinely injected, not skipped.
  EXPECT_GT(report.counters.fault_injections, 0u);
}

// With supervision off the same harness must demonstrate the cascade the
// enforcement exists to prevent — and shrink it to a pinned witness.
TEST(IsolationFuzzTest, UnsupervisedRunsDemonstrateTheCascade) {
  const IsolationConfig config = small_config(30, SupervisionMode::kNone, 5);
  const IsolationReport report = run_isolation_fuzz(config);
  EXPECT_GT(report.cross_misses, 0u);
  ASSERT_FALSE(report.incidents.empty());
  for (const IsolationIncident& incident : report.incidents) {
    EXPECT_FALSE(incident.target.empty());
    EXPECT_FALSE(incident.system_text.empty());
    EXPECT_FALSE(incident.minimized_text.empty());
    EXPECT_GE(incident.minimized_m, 1);
    EXPECT_GT(incident.shrink_probes, 0u);
    // The minimized witness still parses and still targets a surviving task.
    const TaskSystem minimized = parse_task_system(incident.minimized_text);
    EXPECT_GE(minimized.size(), 2u);  // a target and at least one victim
    // The pinned artifact reproduces the violation from scratch.
    const ConformanceOutcome replay = replay_fault_artifact(incident.artifact);
    EXPECT_TRUE(replay.supported);
    EXPECT_TRUE(replay.admitted);
    EXPECT_TRUE(replay.violation());
    // And it survives a serialize → parse → serialize round trip unchanged.
    const std::string json = to_json(incident.artifact);
    EXPECT_EQ(to_json(parse_fault_artifact(json)), json);
  }
}

TEST(IsolationFuzzTest, ReportIsBitIdenticalAcrossThreadCounts) {
  IsolationConfig serial = small_config(30, SupervisionMode::kNone, 5);
  serial.num_threads = 1;
  IsolationConfig wide = serial;
  wide.num_threads = 8;
  const IsolationReport a = run_isolation_fuzz(serial);
  const IsolationReport b = run_isolation_fuzz(wide);
  EXPECT_EQ(isolation_report_json(a), isolation_report_json(b));
}

TEST(IsolationFuzzTest, JsonCarriesSchemaAndCounters) {
  const IsolationConfig config =
      small_config(20, SupervisionMode::kEnforce, 3);
  const IsolationReport report = run_isolation_fuzz(config);
  const std::string json = isolation_report_json(report);
  EXPECT_NE(json.find("\"schema_version\""), std::string::npos);
  EXPECT_NE(json.find("\"supervision\": \"enforce\""), std::string::npos);
  EXPECT_NE(json.find("\"cross_misses\": 0"), std::string::npos);
  EXPECT_NE(json.find("\"fault_isolation_trials\": 20"), std::string::npos);
}

TEST(IsolationEntryTest, EmptyPlanOnAdmittedSystemIsClean) {
  TaskSystem sys;
  sys.add(DagTask(make_chain(std::array<Time, 1>{1}), 10, 10, "a"));
  sys.add(DagTask(make_chain(std::array<Time, 1>{1}), 10, 10, "b"));
  const ConformanceEntry entry =
      make_isolation_entry(FaultPlan{}, SupervisionMode::kEnforce);
  SimConfig cfg;
  cfg.horizon = 200;
  const ConformanceOutcome outcome = entry.run(sys, 2, cfg);
  EXPECT_TRUE(outcome.supported);
  EXPECT_TRUE(outcome.admitted);
  EXPECT_FALSE(outcome.violation());
}

TEST(IsolationEntryTest, ArbitraryDeadlineSystemsAreUnsupported) {
  TaskSystem sys;
  sys.add(DagTask(make_chain(std::array<Time, 1>{1}), 20, 10, "late"));
  const ConformanceEntry entry =
      make_isolation_entry(FaultPlan{}, SupervisionMode::kEnforce);
  SimConfig cfg;
  cfg.horizon = 200;
  EXPECT_FALSE(entry.run(sys, 2, cfg).supported);
}

TEST(FaultArtifactTest, MalformedDocumentsThrowParseError) {
  EXPECT_THROW((void)parse_fault_artifact("not json"), ParseError);
  EXPECT_THROW((void)parse_fault_artifact("{\"schema\": \"wrong-schema\"}"),
               ParseError);
  // A well-formed envelope with a malformed embedded plan must also fail.
  FaultArtifact artifact;
  artifact.system_text = "task a\n  deadline 5\n  period 5\n  vertex 1\nend\n";
  std::string json = to_json(artifact);
  const auto pos = json.find("\"plan\": \"\"");
  ASSERT_NE(pos, std::string::npos);
  json.replace(pos, 10, "\"plan\": \"bogus:1\"");
  EXPECT_THROW((void)parse_fault_artifact(json), ParseError);
}

// Every artifact pinned under tests/fault_corpus/ must keep reproducing its
// cross-task violation — the same promise the conformance corpus makes for
// schedulability verdicts, extended to the fault layer.
TEST(FaultCorpusTest, PinnedArtifactsStillReproduce) {
  const std::filesystem::path dir(FAULT_CORPUS_DIR);
  ASSERT_TRUE(std::filesystem::is_directory(dir))
      << "missing corpus directory " << dir;
  std::size_t replayed = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.path().extension() != ".json") continue;
    std::ifstream in(entry.path());
    ASSERT_TRUE(in) << entry.path();
    std::ostringstream text;
    text << in.rdbuf();
    const FaultArtifact artifact = parse_fault_artifact(text.str());
    const ConformanceOutcome outcome = replay_fault_artifact(artifact);
    EXPECT_TRUE(outcome.supported) << entry.path();
    EXPECT_TRUE(outcome.admitted) << entry.path();
    EXPECT_TRUE(outcome.violation())
        << entry.path() << ": pinned cascade no longer reproduces";
    ++replayed;
  }
  EXPECT_GE(replayed, 1u) << "fault corpus is empty";
}

}  // namespace
}  // namespace fedcons
