// Tests for the metrics registry: histogram math, merge determinism, and the
// enable-gate contract of the observation points.
#include "fedcons/obs/metrics.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "fedcons/expr/acceptance.h"
#include "fedcons/util/parse_error.h"
#include "test_json.h"

namespace fedcons {
namespace {

using obs::Histogram;
using obs::MetricsRegistry;

TEST(HistogramTest, EmptyIsAllZero) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 0u);
  EXPECT_EQ(h.mean(), 0.0);
  EXPECT_EQ(h.percentile(50), 0u);
}

TEST(HistogramTest, BasicMoments) {
  Histogram h;
  for (std::uint64_t v : {3u, 5u, 9u, 0u, 100u}) h.add(v);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_EQ(h.sum(), 117u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 100u);
  EXPECT_DOUBLE_EQ(h.mean(), 117.0 / 5.0);
}

TEST(HistogramTest, BucketBoundaries) {
  // Bucket b holds [2^(b-1), 2^b); bucket 0 holds {0}.
  Histogram h;
  h.add(0);
  h.add(1);
  h.add(2);
  h.add(3);
  h.add(4);
  h.add(1023);
  h.add(1024);
  const auto& b = h.buckets();
  EXPECT_EQ(b[0], 1u);   // 0
  EXPECT_EQ(b[1], 1u);   // 1
  EXPECT_EQ(b[2], 2u);   // 2, 3
  EXPECT_EQ(b[3], 1u);   // 4..7
  EXPECT_EQ(b[10], 1u);  // 512..1023
  EXPECT_EQ(b[11], 1u);  // 1024..2047
}

TEST(HistogramTest, PercentileIsBucketUpperBoundClampedToMax) {
  Histogram h;
  for (int i = 0; i < 90; ++i) h.add(10);   // bucket 4: [8, 16)
  for (int i = 0; i < 10; ++i) h.add(130);  // bucket 8: [128, 256)
  EXPECT_EQ(h.percentile(50), 15u);   // upper bound of bucket 4
  EXPECT_EQ(h.percentile(99), 130u);  // bucket 8 upper bound, clamped to max
  EXPECT_EQ(h.percentile(0), 15u);    // rank clamps to 1
  EXPECT_EQ(h.percentile(100), 130u);
}

TEST(HistogramTest, SingleValue) {
  Histogram h;
  h.add(42);
  EXPECT_EQ(h.percentile(0), 42u);
  EXPECT_EQ(h.percentile(50), 42u);
  EXPECT_EQ(h.percentile(100), 42u);
  EXPECT_EQ(h.min(), 42u);
  EXPECT_EQ(h.max(), 42u);
}

TEST(HistogramTest, MergeEqualsBulkAdd) {
  // Merging per-shard histograms must equal one histogram fed everything —
  // the property that makes trial-order aggregation deterministic.
  std::vector<std::uint64_t> values;
  for (std::uint64_t i = 0; i < 1000; ++i) values.push_back((i * 37) % 511);

  Histogram bulk;
  for (std::uint64_t v : values) bulk.add(v);

  Histogram a, b, c, merged;
  for (std::size_t i = 0; i < values.size(); ++i) {
    (i % 3 == 0 ? a : i % 3 == 1 ? b : c).add(values[i]);
  }
  merged.merge(a);
  merged.merge(b);
  merged.merge(c);
  EXPECT_EQ(merged, bulk);
}

TEST(HistogramTest, MergeWithEmptyIsIdentity) {
  Histogram h, empty;
  h.add(7);
  Histogram before = h;
  h.merge(empty);
  EXPECT_EQ(h, before);
  empty.merge(h);
  EXPECT_EQ(empty, before);
}

TEST(HistogramDeltaTest, DeltaOfTwoSnapshotsIsHistogramOfIntervalSamples) {
  // The property the monitoring loop relies on: snapshot, add more samples,
  // snapshot again — delta_since(first) must equal (bucket-exactly) a fresh
  // histogram of just the samples added in between.
  Histogram cumulative;
  for (std::uint64_t i = 0; i < 500; ++i) cumulative.add((i * 13) % 900);
  const Histogram earlier = cumulative;

  Histogram interval_only;
  for (std::uint64_t i = 0; i < 300; ++i) {
    const std::uint64_t v = (i * 71) % 4096;
    cumulative.add(v);
    interval_only.add(v);
  }

  const Histogram delta = cumulative.delta_since(earlier);
  EXPECT_EQ(delta.buckets(), interval_only.buckets());
  EXPECT_EQ(delta.count(), interval_only.count());
  EXPECT_EQ(delta.sum(), interval_only.sum());
  // min/max are bucket-bound estimates: within the true values' buckets.
  EXPECT_LE(delta.min(), interval_only.min());
  EXPECT_GE(delta.max(), interval_only.max());
  for (double p : {50.0, 90.0, 99.0}) {
    EXPECT_EQ(delta.percentile(p), interval_only.percentile(p)) << p;
  }
}

TEST(HistogramDeltaTest, DeltaFromEmptyIsIdentity) {
  Histogram h, empty;
  h.add(5);
  h.add(1000);
  EXPECT_EQ(h.delta_since(empty), h);
}

TEST(HistogramDeltaTest, ResetSourceReturnsLaterSnapshotWhole) {
  // "Earlier" has counts the later snapshot lacks — the source restarted.
  // Garbage subtraction would underflow; the contract is to return the
  // later snapshot unchanged.
  Histogram earlier;
  for (int i = 0; i < 100; ++i) earlier.add(1 << 20);
  Histogram later;
  later.add(3);
  EXPECT_EQ(later.delta_since(earlier), later);
}

TEST(HistogramStateTest, BucketsRoundTripThroughJsonString) {
  Histogram h;
  for (std::uint64_t v : {0u, 1u, 7u, 500u, 65536u}) h.add(v);
  const auto doc = testjson::parse(obs::histogram_json(h));
  const Histogram back = Histogram::from_state(
      obs::parse_histogram_buckets(doc->at("buckets").string),
      static_cast<std::uint64_t>(doc->at("count").number),
      static_cast<std::uint64_t>(doc->at("sum").number),
      static_cast<std::uint64_t>(doc->at("min").number),
      static_cast<std::uint64_t>(doc->at("max").number));
  EXPECT_EQ(back, h);
}

TEST(HistogramStateTest, ParseBucketsRejectsGarbage) {
  EXPECT_THROW((void)obs::parse_histogram_buckets("1 2 x"), ParseError);
  EXPECT_THROW((void)obs::parse_histogram_buckets("1 -2"), ParseError);
  std::string too_many;
  for (int i = 0; i < 66; ++i) too_many += "1 ";
  too_many.pop_back();
  EXPECT_THROW((void)obs::parse_histogram_buckets(too_many), ParseError);
  // Empty string = no buckets = the all-zero array.
  const auto zero = obs::parse_histogram_buckets("");
  for (const auto b : zero) EXPECT_EQ(b, 0u);
}

TEST(MetricsRegistryTest, EmptyAndMerge) {
  MetricsRegistry r;
  EXPECT_TRUE(r.empty());
  r.minprocs_mu.add(2);
  EXPECT_FALSE(r.empty());

  MetricsRegistry other;
  other.trial_latency_us.add(100);
  other.partition_bins_touched.add(3);
  r.merge(other);
  EXPECT_EQ(r.minprocs_mu.count(), 1u);
  EXPECT_EQ(r.trial_latency_us.count(), 1u);
  EXPECT_EQ(r.partition_bins_touched.count(), 1u);
}

TEST(MetricsRegistryTest, JsonIsParsableWithFixedShape) {
  MetricsRegistry r;
  r.trial_latency_us.add(50);
  r.minprocs_mu.add(2);
  r.minprocs_mu.add(4);
  r.partition_bins_touched.add(1);
  auto doc = testjson::parse(r.to_json());
  for (const char* metric :
       {"trial_latency_us", "minprocs_mu", "partition_bins_touched"}) {
    const auto& m = doc->at(metric);
    for (const char* key : {"count", "sum", "min", "max", "p50", "p90", "p99"}) {
      EXPECT_TRUE(m.has(key)) << metric << "." << key;
    }
  }
  EXPECT_EQ(doc->at("minprocs_mu").at("count").number, 2.0);
  EXPECT_EQ(doc->at("minprocs_mu").at("sum").number, 6.0);
}

TEST(MetricsRegistryTest, TableHasOneRowPerMetric) {
  MetricsRegistry r;
  Table t = r.to_table();
  EXPECT_EQ(t.num_rows(), 3u);
}

TEST(ObservationPointTest, DisabledObservationsRecordNothing) {
  obs::set_metrics_enabled(false);
  obs::metrics_collector().clear();
  obs::observe_minprocs_mu(3);
  obs::observe_partition_bins_touched(2);
  EXPECT_TRUE(obs::metrics_collector().minprocs_mu.empty());
  EXPECT_TRUE(obs::metrics_collector().partition_bins_touched.empty());
}

TEST(ObservationPointTest, EnabledObservationsLandInThreadCollector) {
  obs::set_metrics_enabled(true);
  obs::metrics_collector().clear();
  obs::observe_minprocs_mu(3);
  obs::observe_minprocs_mu(5);
  obs::observe_partition_bins_touched(2);
  obs::set_metrics_enabled(false);
  ASSERT_EQ(obs::metrics_collector().minprocs_mu.size(), 2u);
  EXPECT_EQ(obs::metrics_collector().minprocs_mu[0], 3u);
  EXPECT_EQ(obs::metrics_collector().minprocs_mu[1], 5u);
  ASSERT_EQ(obs::metrics_collector().partition_bins_touched.size(), 1u);
  obs::metrics_collector().clear();
}

TEST(SweepMetricsTest, ValueHistogramsAreThreadCountInvariant) {
  // The μ and bins-touched histograms are logical measurements: running the
  // same sweep serially and on 4 threads must produce identical histograms.
  // (Latency is physical and excluded from the comparison.)
  obs::set_metrics_enabled(true);
  SweepConfig cfg;
  cfg.m = 4;
  cfg.normalized_utils = {0.5, 0.8};
  cfg.trials = 24;
  cfg.seed = 7;
  cfg.collect_metrics = true;
  cfg.base.num_tasks = 6;
  cfg.base.period_min = 50;
  cfg.base.period_max = 2000;
  auto algorithms = standard_algorithms();

  cfg.num_threads = 1;
  auto serial = run_acceptance_sweep(cfg, algorithms);
  cfg.num_threads = 4;
  auto parallel = run_acceptance_sweep(cfg, algorithms);
  obs::set_metrics_enabled(false);

  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t p = 0; p < serial.size(); ++p) {
    EXPECT_EQ(serial[p].metrics.minprocs_mu, parallel[p].metrics.minprocs_mu)
        << "point " << p;
    EXPECT_EQ(serial[p].metrics.partition_bins_touched,
              parallel[p].metrics.partition_bins_touched)
        << "point " << p;
    EXPECT_GT(serial[p].metrics.trial_latency_us.count(), 0u);
    EXPECT_EQ(serial[p].metrics.trial_latency_us.count(),
              parallel[p].metrics.trial_latency_us.count());
  }
}

TEST(SweepMetricsTest, MetricsOffLeavesPointsEmpty) {
  SweepConfig cfg;
  cfg.m = 2;
  cfg.normalized_utils = {0.5};
  cfg.trials = 4;
  cfg.num_threads = 1;
  cfg.base.num_tasks = 4;
  cfg.base.period_min = 50;
  cfg.base.period_max = 500;
  auto points = run_acceptance_sweep(cfg, standard_algorithms());
  ASSERT_EQ(points.size(), 1u);
  EXPECT_TRUE(points[0].metrics.empty());
}

}  // namespace
}  // namespace fedcons
