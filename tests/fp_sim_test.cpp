// Tests for the fixed-priority uniprocessor simulator and its agreement
// with response-time analysis.
#include <gtest/gtest.h>

#include <vector>

#include "fedcons/analysis/rta.h"
#include "fedcons/sim/edf_sim.h"
#include "fedcons/sim/release_generator.h"
#include "fedcons/util/rng.h"

namespace fedcons {
namespace {

EdfTaskStream periodic_stream(const SporadicTask& t, const SimConfig& cfg,
                              Rng& rng) {
  return EdfTaskStream{generate_sequential_releases(t.wcet, t.deadline,
                                                    t.period, cfg, rng)};
}

TEST(FpSimTest, HighestPriorityRunsFirst) {
  SimConfig cfg;
  cfg.horizon = 100;
  // Stream 0 (highest) and stream 1 released together.
  std::vector<EdfTaskStream> streams{
      EdfTaskStream{{{0, 3, 50}}},
      EdfTaskStream{{{0, 4, 8}}},
  };
  // Under FP, stream 0 runs first despite the later deadline; stream 1 ends
  // at 7.
  auto rep = simulate_fp_uniproc_detailed(streams, cfg);
  EXPECT_EQ(rep.max_response_per_stream[0], 3);
  EXPECT_EQ(rep.max_response_per_stream[1], 7);
  EXPECT_EQ(rep.stats.deadline_misses, 0u);
  // EDF would instead run stream 1 first.
  SimStats edf = simulate_edf_uniproc(streams, cfg);
  EXPECT_EQ(edf.max_response_time, 7);  // stream 0 ends at 7 under EDF
}

TEST(FpSimTest, PreemptionByHigherPriority) {
  SimConfig cfg;
  cfg.horizon = 200;
  // Low-priority long job at 0; high-priority job arrives at 2.
  std::vector<EdfTaskStream> streams{
      EdfTaskStream{{{2, 3, 20}}},   // stream 0: higher priority
      EdfTaskStream{{{0, 10, 100}}}  // stream 1: lower priority
  };
  auto rep = simulate_fp_uniproc_detailed(streams, cfg);
  EXPECT_EQ(rep.max_response_per_stream[0], 3);   // 2→5
  EXPECT_EQ(rep.max_response_per_stream[1], 13);  // 0→13 (3 stolen)
}

TEST(FpSimTest, MissDetected) {
  SimConfig cfg;
  cfg.horizon = 100;
  std::vector<EdfTaskStream> streams{
      EdfTaskStream{{{0, 5, 100}}},
      EdfTaskStream{{{0, 3, 6}}},  // lower priority, deadline 6: ends at 8
  };
  SimStats s = simulate_fp_uniproc(streams, cfg);
  EXPECT_EQ(s.deadline_misses, 1u);
  EXPECT_EQ(s.max_lateness, 2);
}

// The agreement theorem: under synchronous periodic WCET releases the
// observed worst-case response of every task equals its RTA fixed point
// (critical-instant argument, constrained deadlines, schedulable sets).
class FpRtaAgreementTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FpRtaAgreementTest, ObservedResponseEqualsRta) {
  Rng rng(GetParam());
  SimConfig cfg;
  cfg.horizon = 20000;
  int checked = 0;
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<SporadicTask> tasks;
    int n = static_cast<int>(rng.uniform_int(1, 5));
    for (int j = 0; j < n; ++j) {
      Time period = rng.uniform_int(5, 50);
      Time deadline = rng.uniform_int(2, period);
      Time wcet = rng.uniform_int(1, std::max<Time>(1, deadline / 2));
      tasks.emplace_back(wcet, deadline, period);
    }
    // DM order; skip unschedulable sets (responses unbounded there).
    std::vector<SporadicTask> ordered;
    for (std::size_t i : deadline_monotonic_order(tasks)) {
      ordered.push_back(tasks[i]);
    }
    auto rta = fp_schedulable(ordered);
    if (!rta.schedulable) continue;
    std::vector<EdfTaskStream> streams;
    Rng stream_rng = rng.split();
    for (const auto& t : ordered) {
      streams.push_back(periodic_stream(t, cfg, stream_rng));
    }
    auto rep = simulate_fp_uniproc_detailed(streams, cfg);
    ASSERT_EQ(rep.stats.deadline_misses, 0u);
    for (std::size_t i = 0; i < ordered.size(); ++i) {
      EXPECT_EQ(rep.max_response_per_stream[i], rta.response_times[i])
          << "stream " << i << " (seed " << GetParam() << ", trial " << trial
          << ")";
    }
    ++checked;
  }
  EXPECT_GT(checked, 0);
}

TEST_P(FpRtaAgreementTest, SporadicReleasesNeverExceedRta) {
  Rng rng(GetParam() ^ 0x44);
  SimConfig cfg;
  cfg.horizon = 20000;
  cfg.release = ReleaseModel::kSporadic;
  cfg.exec = ExecModel::kUniform;
  for (int trial = 0; trial < 30; ++trial) {
    std::vector<SporadicTask> tasks;
    int n = static_cast<int>(rng.uniform_int(1, 5));
    for (int j = 0; j < n; ++j) {
      Time period = rng.uniform_int(5, 50);
      Time deadline = rng.uniform_int(2, period);
      Time wcet = rng.uniform_int(1, std::max<Time>(1, deadline / 2));
      tasks.emplace_back(wcet, deadline, period);
    }
    std::vector<SporadicTask> ordered;
    for (std::size_t i : deadline_monotonic_order(tasks)) {
      ordered.push_back(tasks[i]);
    }
    auto rta = fp_schedulable(ordered);
    if (!rta.schedulable) continue;
    std::vector<EdfTaskStream> streams;
    Rng stream_rng = rng.split();
    for (const auto& t : ordered) {
      streams.push_back(periodic_stream(t, cfg, stream_rng));
    }
    auto rep = simulate_fp_uniproc_detailed(streams, cfg);
    EXPECT_EQ(rep.stats.deadline_misses, 0u);
    for (std::size_t i = 0; i < ordered.size(); ++i) {
      EXPECT_LE(rep.max_response_per_stream[i], rta.response_times[i]);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FpRtaAgreementTest,
                         ::testing::Values(111u, 222u, 333u));

}  // namespace
}  // namespace fedcons
