// Equivalence suite for the bound-guided MINPROCS fast path (DESIGN.md §7).
//
// The pruned, workspace-backed scan must be observationally identical to the
// seed reference scan: same μ, bit-identical template schedule, same
// rejections, and the same number of LS probes (the Graham-bound cap only
// removes candidates the scan can never reach). These tests drive both paths
// over ~200 random DAG tasks per policy and compare everything, including
// the deterministic perf-counter deltas.
#include <gtest/gtest.h>

#include <array>

#include "fedcons/core/builders.h"
#include "fedcons/federated/minprocs.h"
#include "fedcons/gen/dag_gen.h"
#include "fedcons/util/perf_counters.h"
#include "fedcons/util/rng.h"

namespace fedcons {
namespace {

constexpr std::array<ListPolicy, 3> kPolicies{ListPolicy::kVertexOrder,
                                              ListPolicy::kCriticalPath,
                                              ListPolicy::kLongestWcet};

void expect_bit_identical(const TemplateSchedule& a, const TemplateSchedule& b) {
  EXPECT_EQ(a.makespan(), b.makespan());
  ASSERT_EQ(a.num_jobs(), b.num_jobs());
  for (std::size_t i = 0; i < a.jobs().size(); ++i) {
    EXPECT_EQ(a.jobs()[i].vertex, b.jobs()[i].vertex);
    EXPECT_EQ(a.jobs()[i].processor, b.jobs()[i].processor);
    EXPECT_EQ(a.jobs()[i].start, b.jobs()[i].start);
    EXPECT_EQ(a.jobs()[i].finish, b.jobs()[i].finish);
  }
}

/// One random DAG task whose deadline lands in [len, vol] so the MINPROCS
/// scan actually has to probe (below len: trivial reject; above vol: μ = ⌈δ⌉
/// immediately fits).
DagTask random_task(Rng& rng) {
  LayeredDagParams params;
  params.max_layers = 6;
  params.max_width = 6;
  params.max_wcet = 12;
  Dag g = generate_layered_dag(rng, params);
  const Time deadline = rng.uniform_int(g.len(), g.vol());
  const Time period = deadline + rng.uniform_int(0, 50);
  return DagTask(std::move(g), deadline, period);
}

class MinprocsEquivalenceTest
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MinprocsEquivalenceTest, PrunedScanMatchesReferenceBitForBit) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 50; ++trial) {
    const DagTask t = random_task(rng);
    const int budget = static_cast<int>(rng.uniform_int(0, 16));
    for (ListPolicy policy : kPolicies) {
      const PerfCounters before_ref = perf_counters();
      auto ref = minprocs(t, budget, policy, MinprocsOptions{.prune = false});
      const PerfCounters ref_delta = perf_counters() - before_ref;

      const PerfCounters before_opt = perf_counters();
      auto opt = minprocs(t, budget, policy, MinprocsOptions{.prune = true});
      const PerfCounters opt_delta = perf_counters() - before_opt;

      ASSERT_EQ(ref.has_value(), opt.has_value())
          << "verdict diverged (budget " << budget << ")";
      if (ref.has_value()) {
        EXPECT_EQ(ref->processors, opt->processors);
        expect_bit_identical(ref->sigma, opt->sigma);
      }
      // The cap never changes which probes run — only which candidates the
      // worst case could have reached — so probe counters match exactly.
      EXPECT_EQ(ref_delta.minprocs_scan_iterations,
                opt_delta.minprocs_scan_iterations);
      EXPECT_EQ(ref_delta.ls_invocations, opt_delta.ls_invocations);
      // The reference path never prunes.
      EXPECT_EQ(ref_delta.ls_probes_pruned, 0u);
    }
  }
}

TEST_P(MinprocsEquivalenceTest, DefaultOptionsAreThePrunedPath) {
  Rng rng(GetParam() ^ 0xabcdu);
  for (int trial = 0; trial < 10; ++trial) {
    const DagTask t = random_task(rng);
    auto def = minprocs(t, 12);
    auto opt = minprocs(t, 12, ListPolicy::kVertexOrder, {.prune = true});
    ASSERT_EQ(def.has_value(), opt.has_value());
    if (def.has_value()) {
      EXPECT_EQ(def->processors, opt->processors);
      expect_bit_identical(def->sigma, opt->sigma);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MinprocsEquivalenceTest,
                         ::testing::Values(101u, 102u, 103u, 104u));

TEST(MinprocsScanCapTest, CapCertifiesAndIsMinimal) {
  Rng rng(0xcafeu);
  LayeredDagParams params;
  params.max_width = 6;
  params.max_wcet = 12;
  for (int trial = 0; trial < 100; ++trial) {
    Dag g = generate_layered_dag(rng, params);
    const Time deadline = rng.uniform_int(g.len(), g.vol());
    DagTask t(g, deadline, deadline + rng.uniform_int(0, 50));
    const Time cap = minprocs_scan_cap(t);
    const int lb = minprocs_lower_bound(t);
    ASSERT_GE(cap, lb);
    if (cap > 1'000'000) continue;  // graham_bound takes an int budget
    const auto cap_i = static_cast<int>(cap);
    // Graham's bound certifies a fit at the cap…
    EXPECT_LE(graham_bound(t.graph(), cap_i), t.deadline());
    // …and, unless the density floor forced the cap up, at nothing smaller.
    if (cap > lb) {
      EXPECT_GT(graham_bound(t.graph(), cap_i - 1), t.deadline());
    }
  }
}

TEST(MinprocsScanCapTest, InfeasibleCriticalPathYieldsZero) {
  std::array<Time, 3> w{5, 5, 5};
  DagTask t(make_chain(w), 10, 20);  // len 15 > D 10
  EXPECT_EQ(minprocs_scan_cap(t), 0);
}

TEST(MinprocsScanCapTest, ProbeAtTheCapAlwaysFits) {
  // The pruning soundness argument in one test: LS makespan ≤ graham_bound,
  // so the probe at the cap can never miss the deadline.
  Rng rng(0xbeefu);
  LayeredDagParams params;
  params.max_wcet = 10;
  for (int trial = 0; trial < 50; ++trial) {
    Dag g = generate_layered_dag(rng, params);
    const Time deadline = rng.uniform_int(g.len(), g.vol());
    DagTask t(g, deadline, deadline);
    const Time cap = minprocs_scan_cap(t);
    if (cap > 64) continue;
    const auto cap_i = static_cast<int>(cap);
    for (ListPolicy policy : kPolicies) {
      EXPECT_LE(list_schedule(t.graph(), cap_i, policy).makespan(),
                t.deadline());
    }
  }
}

TEST(MinprocsScanCapTest, PruningCounterAccountsRemovedCandidates) {
  // Wide-but-tight task: ⌈δ⌉ small, cap well below a large budget.
  std::array<Time, 6> w{1, 1, 1, 1, 1, 1};
  DagTask t(make_independent(w), 2, 10);  // vol 6, len 1, D 2 → cap = ⌈6/2⌉=3
  EXPECT_EQ(minprocs_scan_cap(t), 3);
  const PerfCounters before = perf_counters();
  auto r = minprocs(t, 100);
  const PerfCounters delta = perf_counters() - before;
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->processors, 3);
  EXPECT_EQ(delta.ls_probes_pruned, 97u);  // candidates 4..100 eliminated
}

}  // namespace
}  // namespace fedcons
