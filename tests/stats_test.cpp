// Tests for streaming statistics, percentiles, and histograms.
#include "fedcons/util/stats.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "fedcons/util/check.h"
#include "fedcons/util/rng.h"

namespace fedcons {
namespace {

TEST(OnlineStatsTest, EmptyIsNeutral) {
  OnlineStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(OnlineStatsTest, SingleSample) {
  OnlineStats s;
  s.add(42.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 42.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 42.0);
  EXPECT_DOUBLE_EQ(s.max(), 42.0);
}

TEST(OnlineStatsTest, KnownMoments) {
  OnlineStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance with n-1 = 7: Σ(x−5)² = 32 → 32/7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_NEAR(s.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(OnlineStatsTest, MergeEqualsPooled) {
  Rng rng(3);
  OnlineStats a, b, pooled;
  for (int i = 0; i < 1000; ++i) {
    double x = rng.uniform_real(-10, 10);
    (i % 2 == 0 ? a : b).add(x);
    pooled.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), pooled.count());
  EXPECT_NEAR(a.mean(), pooled.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), pooled.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), pooled.min());
  EXPECT_DOUBLE_EQ(a.max(), pooled.max());
}

TEST(OnlineStatsTest, MergeWithEmpty) {
  OnlineStats a, empty;
  a.add(1.0);
  a.add(3.0);
  OnlineStats before = a;
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), before.mean());
  empty.merge(a);
  EXPECT_EQ(empty.count(), 2u);
  EXPECT_DOUBLE_EQ(empty.mean(), 2.0);
}

TEST(PercentileTest, Endpoints) {
  std::vector<double> v{5.0, 1.0, 3.0};
  EXPECT_DOUBLE_EQ(percentile(v, 0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100), 5.0);
  EXPECT_DOUBLE_EQ(percentile(v, 50), 3.0);
}

TEST(PercentileTest, Interpolates) {
  std::vector<double> v{0.0, 10.0};
  EXPECT_DOUBLE_EQ(percentile(v, 25), 2.5);
  EXPECT_DOUBLE_EQ(percentile(v, 75), 7.5);
}

TEST(PercentileTest, SingleSample) {
  EXPECT_DOUBLE_EQ(percentile({7.0}, 99), 7.0);
}

TEST(PercentileTest, RejectsEmptyAndBadP) {
  EXPECT_THROW(percentile({}, 50), ContractViolation);
  EXPECT_THROW(percentile({1.0}, -1), ContractViolation);
  EXPECT_THROW(percentile({1.0}, 101), ContractViolation);
}

TEST(HistogramTest, BinsAndClamping) {
  Histogram h(0.0, 10.0, 5);
  EXPECT_EQ(h.bin_count(), 5u);
  h.add(-1.0);   // clamps into bin 0
  h.add(0.0);
  h.add(3.0);
  h.add(9.99);
  h.add(25.0);   // clamps into last bin
  EXPECT_EQ(h.total(), 5u);
  EXPECT_EQ(h.count(0), 2u);
  EXPECT_EQ(h.count(1), 1u);
  EXPECT_EQ(h.count(4), 2u);
  EXPECT_DOUBLE_EQ(h.bin_lo(0), 0.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(0), 2.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(4), 10.0);
}

TEST(HistogramTest, RejectsBadConstruction) {
  EXPECT_THROW(Histogram(1.0, 1.0, 4), ContractViolation);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), ContractViolation);
}

TEST(BinomialCiTest, Basics) {
  EXPECT_DOUBLE_EQ(binomial_ci95_halfwidth(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(binomial_ci95_halfwidth(0, 100), 0.0);
  EXPECT_DOUBLE_EQ(binomial_ci95_halfwidth(100, 100), 0.0);
  // p = 0.5, n = 100: 1.96 * sqrt(0.25/100) = 0.098.
  EXPECT_NEAR(binomial_ci95_halfwidth(50, 100), 0.098, 1e-9);
  // Quadruple n halves the width.
  EXPECT_NEAR(binomial_ci95_halfwidth(200, 400),
              binomial_ci95_halfwidth(50, 100) / 2.0, 1e-12);
}

}  // namespace
}  // namespace fedcons
