// MinprocsMemo (federated/minprocs_memo.h): a hit must be a perfect stand-in
// for the real scan — same verdict, μ, σ, provenance trajectory, and logical
// perf counters — for ANY m_r, since entries are keyed by task content only.
#include "fedcons/federated/minprocs_memo.h"

#include <gtest/gtest.h>

#include <optional>
#include <thread>
#include <vector>

#include "fedcons/gen/taskset_gen.h"
#include "fedcons/util/perf_counters.h"
#include "fedcons/util/rng.h"

namespace fedcons {
namespace {

// Four parallel WCET-10 vertices under a tight deadline: δ = 40/20 = 2, so
// the scan starts at μ = 2 and walks up to μ = 4 (LS needs one vertex per
// processor to meet D = 10... with D = 20 it needs 2).
DagTask parallel_task(Time deadline, Time period, Time wcet = 10,
                      int width = 4) {
  Dag g;
  for (int v = 0; v < width; ++v) g.add_vertex(wcet);
  return DagTask(g, deadline, period);
}

// The logical-work lanes a scan pays; the memo-effect lanes are excluded on
// purpose (those are exactly what caching changes).
struct ScanWork {
  std::uint64_t ls = 0;
  std::uint64_t iterations = 0;
  std::uint64_t pruned = 0;
};

template <typename Fn>
ScanWork work_of(Fn&& fn) {
  const PerfCounters before = perf_counters();
  fn();
  const PerfCounters delta = perf_counters() - before;
  return ScanWork{delta.ls_invocations, delta.minprocs_scan_iterations,
                  delta.ls_probes_pruned};
}

void expect_same_provenance(const MinprocsProvenance& a,
                            const MinprocsProvenance& b) {
  EXPECT_EQ(a.scan_lb, b.scan_lb);
  EXPECT_EQ(a.scan_cap, b.scan_cap);
  EXPECT_EQ(a.max_processors, b.max_processors);
  EXPECT_EQ(a.len_exceeds_deadline, b.len_exceeds_deadline);
  EXPECT_EQ(a.satisfied, b.satisfied);
  EXPECT_EQ(a.chosen_mu, b.chosen_mu);
  EXPECT_EQ(a.best_makespan, b.best_makespan);
  EXPECT_EQ(a.best_mu, b.best_mu);
  ASSERT_EQ(a.probes.size(), b.probes.size());
  for (std::size_t i = 0; i < a.probes.size(); ++i) {
    EXPECT_EQ(a.probes[i].mu, b.probes[i].mu);
    EXPECT_EQ(a.probes[i].makespan, b.probes[i].makespan);
  }
}

// A hit must equal the fresh scan on every observable, for several m_r.
TEST(MinprocsMemo, HitMatchesFreshScanExactly) {
  const DagTask task = parallel_task(/*deadline=*/20, /*period=*/30);
  for (int m_r : {1, 2, 3, 4, 9}) {
    MinprocsMemo memo;
    std::optional<MinprocsResult> miss_result, hit_result, fresh_result;
    MinprocsProvenance miss_prov, hit_prov, fresh_prov;
    bool was_hit = true;
    const ScanWork miss_work = work_of([&] {
      miss_result = memo.lookup(task, m_r, &miss_prov, &was_hit);
    });
    EXPECT_FALSE(was_hit);
    const ScanWork hit_work = work_of([&] {
      hit_result = memo.lookup(task, m_r, &hit_prov, &was_hit);
    });
    const ScanWork fresh_work = work_of([&] {
      MinprocsOptions options;
      options.provenance = &fresh_prov;
      fresh_result = minprocs(task, m_r, ListPolicy::kVertexOrder, options);
    });
    // Exhaustion (μ > m_r) is m_r-specific and not cached; only successful
    // and len>D content yields hits.
    const bool cacheable = miss_result.has_value();
    EXPECT_EQ(was_hit, cacheable) << "m_r=" << m_r;

    ASSERT_EQ(hit_result.has_value(), fresh_result.has_value());
    ASSERT_EQ(miss_result.has_value(), fresh_result.has_value());
    if (fresh_result.has_value()) {
      EXPECT_EQ(hit_result->processors, fresh_result->processors);
      EXPECT_EQ(hit_result->sigma.makespan(), fresh_result->sigma.makespan());
      EXPECT_EQ(miss_result->processors, fresh_result->processors);
    }
    expect_same_provenance(miss_prov, fresh_prov);
    expect_same_provenance(hit_prov, fresh_prov);
    // Counter contract: the hit credits exactly the work the scan would pay.
    EXPECT_EQ(hit_work.ls, fresh_work.ls) << "m_r=" << m_r;
    EXPECT_EQ(hit_work.iterations, fresh_work.iterations) << "m_r=" << m_r;
    EXPECT_EQ(hit_work.pruned, fresh_work.pruned) << "m_r=" << m_r;
    EXPECT_EQ(miss_work.ls, fresh_work.ls) << "m_r=" << m_r;
  }
}

// One cached success answers smaller m_r as the real scan would: success
// while μ ≤ m_r, exhaustion below.
TEST(MinprocsMemo, ReplayAcrossProcessorBudgets) {
  const DagTask task = parallel_task(/*deadline=*/10, /*period=*/30);
  MinprocsMemo memo;
  const auto full = memo.lookup(task, 16);
  ASSERT_TRUE(full.has_value());
  const int mu = full->processors;
  ASSERT_GT(mu, 1);

  bool was_hit = false;
  const auto at_mu = memo.lookup(task, mu, nullptr, &was_hit);
  EXPECT_TRUE(was_hit);
  ASSERT_TRUE(at_mu.has_value());
  EXPECT_EQ(at_mu->processors, mu);

  const auto below = memo.lookup(task, mu - 1, nullptr, &was_hit);
  EXPECT_TRUE(was_hit);  // served from the entry, still a definitive no
  EXPECT_FALSE(below.has_value());
  // And it matches the real scan's verdict.
  EXPECT_FALSE(minprocs(task, mu - 1).has_value());
}

TEST(MinprocsMemo, LenExceedingDeadlineIsCached) {
  // Chain of two WCET-10 vertices: len = 20 > D = 15 (T = 30 keeps D ≤ T).
  Dag g;
  const VertexId a = g.add_vertex(10);
  const VertexId b = g.add_vertex(10);
  g.add_edge(a, b);
  const DagTask hopeless(g, /*deadline=*/15, /*period=*/30);
  MinprocsMemo memo;
  bool was_hit = true;
  EXPECT_FALSE(memo.lookup(hopeless, 8, nullptr, &was_hit).has_value());
  EXPECT_FALSE(was_hit);
  MinprocsProvenance prov;
  EXPECT_FALSE(memo.lookup(hopeless, 8, &prov, &was_hit).has_value());
  EXPECT_TRUE(was_hit);
  EXPECT_TRUE(prov.len_exceeds_deadline);
  EXPECT_TRUE(prov.probes.empty());
  EXPECT_EQ(memo.stats().hits, 1u);
  EXPECT_EQ(memo.stats().misses, 1u);
}

TEST(MinprocsMemo, ExhaustionIsNotCached) {
  // μ = 4 needed (four parallel vertices, D = 10), but only 3 offered: the
  // verdict depends on m_r, so it must rescan (miss) every time.
  const DagTask task = parallel_task(/*deadline=*/10, /*period=*/30);
  MinprocsMemo memo;
  bool was_hit = true;
  EXPECT_FALSE(memo.lookup(task, 3, nullptr, &was_hit).has_value());
  EXPECT_FALSE(was_hit);
  EXPECT_FALSE(memo.lookup(task, 3, nullptr, &was_hit).has_value());
  EXPECT_FALSE(was_hit);
  EXPECT_EQ(memo.stats().misses, 2u);
  EXPECT_EQ(memo.stats().hits, 0u);
  EXPECT_EQ(memo.size(), 0u);
}

TEST(MinprocsMemo, LruEviction) {
  MinprocsMemo memo(/*capacity=*/2);
  const DagTask a = parallel_task(20, 30, /*wcet=*/10);
  const DagTask b = parallel_task(20, 30, /*wcet=*/11);
  const DagTask c = parallel_task(22, 30, /*wcet=*/11);
  ASSERT_TRUE(memo.lookup(a, 8).has_value());
  ASSERT_TRUE(memo.lookup(b, 8).has_value());
  EXPECT_EQ(memo.size(), 2u);
  // Touch `a` so `b` is the LRU victim when `c` arrives.
  bool was_hit = false;
  (void)memo.lookup(a, 8, nullptr, &was_hit);
  ASSERT_TRUE(was_hit);
  ASSERT_TRUE(memo.lookup(c, 8).has_value());
  EXPECT_EQ(memo.size(), 2u);
  EXPECT_EQ(memo.stats().evictions, 1u);
  (void)memo.lookup(a, 8, nullptr, &was_hit);
  EXPECT_TRUE(was_hit);  // survived
  (void)memo.lookup(b, 8, nullptr, &was_hit);
  EXPECT_FALSE(was_hit);  // evicted, re-scanned
}

TEST(MinprocsMemo, ClearResetsEntriesButKeepsStats) {
  MinprocsMemo memo;
  const DagTask task = parallel_task(20, 30);
  ASSERT_TRUE(memo.lookup(task, 8).has_value());
  memo.clear();
  EXPECT_EQ(memo.size(), 0u);
  bool was_hit = true;
  ASSERT_TRUE(memo.lookup(task, 8, nullptr, &was_hit).has_value());
  EXPECT_FALSE(was_hit);
}

// Isomorphic-but-relabeled content shares one entry (content addressing).
TEST(MinprocsMemo, ContentAddressing) {
  Dag g1;
  const VertexId x = g1.add_vertex(6);
  const VertexId y = g1.add_vertex(9);
  g1.add_edge(x, y);
  Dag g2;
  const VertexId p = g2.add_vertex(9);
  const VertexId q = g2.add_vertex(6);
  g2.add_edge(q, p);
  const DagTask t1(g1, 16, 20, "one");
  const DagTask t2(g2, 16, 20, "two");
  MinprocsMemo memo;
  ASSERT_TRUE(memo.lookup(t1, 4).has_value());
  bool was_hit = false;
  const auto r = memo.lookup(t2, 4, nullptr, &was_hit);
  EXPECT_TRUE(was_hit);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(memo.size(), 1u);
}

// Concurrent lookups over a small content pool: no crashes/races (run under
// the sanitizer job), consistent final accounting.
TEST(MinprocsMemo, ThreadSafetyHammer) {
  MinprocsMemo memo(/*capacity=*/8);
  std::vector<DagTask> pool;
  for (int w = 0; w < 12; ++w) {
    pool.push_back(parallel_task(20 + w % 3, 40, /*wcet=*/5 + w));
  }
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&memo, &pool, t] {
      Rng rng(900 + static_cast<std::uint64_t>(t));
      for (int i = 0; i < 200; ++i) {
        const auto pick = static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(pool.size()) - 1));
        const auto result = memo.lookup(pool[pick], 8);
        // Every pool task is feasible on 8 processors; the verdict must be
        // stable no matter which thread populated the entry.
        EXPECT_TRUE(result.has_value());
      }
    });
  }
  for (auto& th : threads) th.join();
  const MinprocsMemoStats stats = memo.stats();
  EXPECT_EQ(stats.hits + stats.misses, 4u * 200u);
  EXPECT_GE(stats.hits, stats.misses);  // only 12 distinct contents
  EXPECT_LE(memo.size(), 8u);
}

}  // namespace
}  // namespace fedcons
