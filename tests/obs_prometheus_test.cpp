// Tests for the Prometheus text-exposition writer: a byte-for-byte golden
// document (the format is an external contract — names, label syntax, and
// header order must not drift), plus the structural invariants every
// histogram family must satisfy (cumulative non-decreasing buckets, +Inf ==
// count) checked against the serve layer's real ServerStats renderer.
#include "fedcons/obs/prometheus.h"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "fedcons/serve/server.h"

namespace fedcons {
namespace {

using obs::Histogram;
using obs::PrometheusWriter;

TEST(PrometheusWriterTest, GoldenExposition) {
  Histogram lat;
  lat.add(0);
  lat.add(1);
  lat.add(3);
  lat.add(3);
  lat.add(100);
  PrometheusWriter w;
  w.counter("demo_requests_total", "Requests served", 42);
  w.gauge("demo_queue_depth", "Queued right now", 7);
  w.counter("demo_stage_busy_us_total", "Busy by stage", 10, "stage",
            "read");
  w.counter("demo_stage_busy_us_total", "Busy by stage", 20, "stage",
            "write");
  w.histogram("demo_latency_us", "Latency", lat, "op", "all");

  const std::string expected =
      "# HELP demo_requests_total Requests served\n"
      "# TYPE demo_requests_total counter\n"
      "demo_requests_total 42\n"
      "# HELP demo_queue_depth Queued right now\n"
      "# TYPE demo_queue_depth gauge\n"
      "demo_queue_depth 7\n"
      "# HELP demo_stage_busy_us_total Busy by stage\n"
      "# TYPE demo_stage_busy_us_total counter\n"
      "demo_stage_busy_us_total{stage=\"read\"} 10\n"
      "demo_stage_busy_us_total{stage=\"write\"} 20\n"
      "# HELP demo_latency_us Latency\n"
      "# TYPE demo_latency_us histogram\n"
      "demo_latency_us_bucket{op=\"all\",le=\"0\"} 1\n"
      "demo_latency_us_bucket{op=\"all\",le=\"1\"} 2\n"
      "demo_latency_us_bucket{op=\"all\",le=\"3\"} 4\n"
      "demo_latency_us_bucket{op=\"all\",le=\"7\"} 4\n"
      "demo_latency_us_bucket{op=\"all\",le=\"15\"} 4\n"
      "demo_latency_us_bucket{op=\"all\",le=\"31\"} 4\n"
      "demo_latency_us_bucket{op=\"all\",le=\"63\"} 4\n"
      "demo_latency_us_bucket{op=\"all\",le=\"127\"} 5\n"
      "demo_latency_us_bucket{op=\"all\",le=\"+Inf\"} 5\n"
      "demo_latency_us_sum{op=\"all\"} 107\n"
      "demo_latency_us_count{op=\"all\"} 5\n";
  EXPECT_EQ(w.str(), expected);
}

TEST(PrometheusWriterTest, EmptyHistogramStillEmitsFamily) {
  PrometheusWriter w;
  w.histogram("empty_hist", "Nothing yet", Histogram{});
  const std::string expected =
      "# HELP empty_hist Nothing yet\n"
      "# TYPE empty_hist histogram\n"
      "empty_hist_bucket{le=\"0\"} 0\n"
      "empty_hist_bucket{le=\"+Inf\"} 0\n"
      "empty_hist_sum 0\n"
      "empty_hist_count 0\n";
  EXPECT_EQ(w.str(), expected);
}

/// Split exposition text into lines for structural checks.
std::vector<std::string> lines_of(const std::string& text) {
  std::vector<std::string> lines;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

TEST(ServerStatsPrometheusTest, BucketsAreCumulativeAndInfEqualsCount) {
  serve::ServerStats stats;
  stats.uptime_us = 1'000'000;
  stats.connections_accepted = 3;
  stats.requests_enqueued = 1000;
  stats.requests_shed = 5;
  stats.batches = 40;
  for (std::uint64_t i = 0; i < 1000; ++i) {
    const std::uint64_t lat = 10 + (i * 7) % 3000;
    stats.latency_us.add(lat);
    if (i % 2 == 0) {
      stats.admit_latency_us.add(lat);
    } else {
      stats.release_latency_us.add(lat);
    }
    if (i % 25 == 0) stats.batch_size.add(1 + i % 60);
  }
  const std::string text = stats.to_prometheus();

  // Walk each histogram series (family + op label pair): bucket values must
  // be non-decreasing in le order and the +Inf bucket must equal _count.
  std::string series;          // "name{op=..." prefix of the current series
  std::uint64_t prev = 0;
  std::uint64_t inf_value = 0;
  int series_seen = 0;
  for (const std::string& line : lines_of(text)) {
    if (line.empty() || line[0] == '#') continue;
    const std::size_t bucket_pos = line.find("_bucket{");
    if (bucket_pos != std::string::npos) {
      const std::size_t le = line.find("le=\"");
      ASSERT_NE(le, std::string::npos) << line;
      const std::string prefix = line.substr(0, le);
      if (prefix != series) {
        series = prefix;
        prev = 0;
        ++series_seen;
      }
      const std::uint64_t v =
          std::stoull(line.substr(line.rfind(' ') + 1));
      EXPECT_GE(v, prev) << "non-cumulative bucket: " << line;
      prev = v;
      if (line.find("le=\"+Inf\"") != std::string::npos) inf_value = v;
    } else if (line.find("_count") != std::string::npos) {
      const std::uint64_t v =
          std::stoull(line.substr(line.rfind(' ') + 1));
      EXPECT_EQ(v, inf_value) << "count != +Inf bucket: " << line;
    }
  }
  // batch_size + latency op=all/admit/release = 4 histogram series.
  EXPECT_EQ(series_seen, 4);
}

TEST(ServerStatsPrometheusTest, StableMetricNames) {
  // The exposition names are an external monitoring contract: renaming one
  // silently breaks every dashboard built on it. Lock the set.
  const std::string text = serve::ServerStats{}.to_prometheus();
  for (const char* name :
       {"fedcons_serve_uptime_us", "fedcons_serve_connections_total",
        "fedcons_serve_requests_total", "fedcons_serve_requests_shed_total",
        "fedcons_serve_requests_sampled_total",
        "fedcons_serve_parse_errors_total",
        "fedcons_serve_framing_errors_total", "fedcons_serve_batches_total",
        "fedcons_serve_queue_depth", "fedcons_serve_queue_high_watermark",
        "fedcons_serve_stage_busy_us_total", "fedcons_serve_batch_size",
        "fedcons_serve_request_latency_us"}) {
    EXPECT_NE(text.find(std::string("# HELP ") + name), std::string::npos)
        << name;
  }
}

}  // namespace
}  // namespace fedcons
