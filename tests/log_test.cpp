// Tests for the leveled logger (stderr capture via gtest).
#include "fedcons/util/log.h"

#include <gtest/gtest.h>

namespace fedcons {
namespace {

class LogTest : public ::testing::Test {
 protected:
  void SetUp() override { saved_ = log_level(); }
  void TearDown() override { set_log_level(saved_); }
  LogLevel saved_ = LogLevel::kInfo;
};

TEST_F(LogTest, LevelRoundTrip) {
  set_log_level(LogLevel::kDebug);
  EXPECT_EQ(log_level(), LogLevel::kDebug);
  set_log_level(LogLevel::kError);
  EXPECT_EQ(log_level(), LogLevel::kError);
}

TEST_F(LogTest, EmitsAtOrAboveThreshold) {
  set_log_level(LogLevel::kWarn);
  testing::internal::CaptureStderr();
  LOG_INFO("invisible " << 1);
  LOG_WARN("visible-warn " << 2);
  LOG_ERROR("visible-error " << 3);
  std::string out = testing::internal::GetCapturedStderr();
  EXPECT_EQ(out.find("invisible"), std::string::npos);
  EXPECT_NE(out.find("visible-warn 2"), std::string::npos);
  EXPECT_NE(out.find("visible-error 3"), std::string::npos);
  EXPECT_NE(out.find("[WARN ]"), std::string::npos);
  EXPECT_NE(out.find("[ERROR]"), std::string::npos);
}

TEST_F(LogTest, OffSilencesEverything) {
  set_log_level(LogLevel::kOff);
  testing::internal::CaptureStderr();
  LOG_ERROR("should not appear");
  EXPECT_TRUE(testing::internal::GetCapturedStderr().empty());
}

TEST_F(LogTest, StreamExpressionsNotEvaluatedBelowThreshold) {
  set_log_level(LogLevel::kError);
  int evaluations = 0;
  auto count = [&evaluations] {
    ++evaluations;
    return 42;
  };
  LOG_DEBUG("value " << count());
  EXPECT_EQ(evaluations, 0) << "suppressed logs must not evaluate operands";
  LOG_ERROR("value " << count());
  EXPECT_EQ(evaluations, 1);
}

}  // namespace
}  // namespace fedcons
