// Tests for the leveled logger (stderr capture via gtest).
#include "fedcons/util/log.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

namespace fedcons {
namespace {

class LogTest : public ::testing::Test {
 protected:
  void SetUp() override { saved_ = log_level(); }
  void TearDown() override { set_log_level(saved_); }
  LogLevel saved_ = LogLevel::kInfo;
};

TEST_F(LogTest, LevelRoundTrip) {
  set_log_level(LogLevel::kDebug);
  EXPECT_EQ(log_level(), LogLevel::kDebug);
  set_log_level(LogLevel::kError);
  EXPECT_EQ(log_level(), LogLevel::kError);
}

TEST_F(LogTest, EmitsAtOrAboveThreshold) {
  set_log_level(LogLevel::kWarn);
  testing::internal::CaptureStderr();
  LOG_INFO("invisible " << 1);
  LOG_WARN("visible-warn " << 2);
  LOG_ERROR("visible-error " << 3);
  std::string out = testing::internal::GetCapturedStderr();
  EXPECT_EQ(out.find("invisible"), std::string::npos);
  EXPECT_NE(out.find("visible-warn 2"), std::string::npos);
  EXPECT_NE(out.find("visible-error 3"), std::string::npos);
  EXPECT_NE(out.find("[WARN ]"), std::string::npos);
  EXPECT_NE(out.find("[ERROR]"), std::string::npos);
}

TEST_F(LogTest, OffSilencesEverything) {
  set_log_level(LogLevel::kOff);
  testing::internal::CaptureStderr();
  LOG_ERROR("should not appear");
  EXPECT_TRUE(testing::internal::GetCapturedStderr().empty());
}

TEST_F(LogTest, StreamExpressionsNotEvaluatedBelowThreshold) {
  set_log_level(LogLevel::kError);
  int evaluations = 0;
  auto count = [&evaluations] {
    ++evaluations;
    return 42;
  };
  LOG_DEBUG("value " << count());
  EXPECT_EQ(evaluations, 0) << "suppressed logs must not evaluate operands";
  LOG_ERROR("value " << count());
  EXPECT_EQ(evaluations, 1);
}

TEST_F(LogTest, ConcurrentEmittersNeverTearLines) {
  // The logger's contract since it went multi-threaded: each message is one
  // atomic line write. N threads race M messages each; afterwards every
  // captured line must be exactly one complete message — right count, every
  // line well-formed, every (thread, sequence) pair present once.
  constexpr int kThreads = 8;
  constexpr int kMessages = 200;
  set_log_level(LogLevel::kInfo);

  std::ostringstream captured;
  std::streambuf* saved = std::cerr.rdbuf(captured.rdbuf());
  {
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([t] {
        for (int i = 0; i < kMessages; ++i) {
          LOG_INFO("worker=" << t << " seq=" << i << " payload="
                             << std::string(32, 'a' + (t % 26)) << " end");
        }
      });
    }
    for (auto& th : threads) th.join();
  }
  std::cerr.rdbuf(saved);

  std::istringstream lines(captured.str());
  std::string line;
  std::vector<std::vector<bool>> seen(kThreads,
                                      std::vector<bool>(kMessages, false));
  int count = 0;
  while (std::getline(lines, line)) {
    ++count;
    ASSERT_EQ(line.rfind("[INFO ] worker=", 0), 0u) << "torn line: " << line;
    ASSERT_NE(line.find(" end"), std::string::npos) << "torn line: " << line;
    int t = -1, i = -1;
    ASSERT_EQ(std::sscanf(line.c_str(), "[INFO ] worker=%d seq=%d", &t, &i),
              2)
        << line;
    ASSERT_GE(t, 0);
    ASSERT_LT(t, kThreads);
    ASSERT_GE(i, 0);
    ASSERT_LT(i, kMessages);
    ASSERT_FALSE(seen[t][i]) << "duplicate line: " << line;
    seen[t][i] = true;
  }
  EXPECT_EQ(count, kThreads * kMessages);
}

TEST_F(LogTest, ConcurrentLevelChangesAreSafe) {
  // set_log_level from one thread while others log: no crash, no tear. The
  // exact message count is racy by design; only well-formedness is pinned.
  std::ostringstream captured;
  std::streambuf* saved = std::cerr.rdbuf(captured.rdbuf());
  {
    std::vector<std::thread> threads;
    for (int t = 0; t < 4; ++t) {
      threads.emplace_back([] {
        for (int i = 0; i < 100; ++i) LOG_WARN("msg " << i << " end");
      });
    }
    threads.emplace_back([] {
      for (int i = 0; i < 50; ++i) {
        set_log_level(i % 2 == 0 ? LogLevel::kDebug : LogLevel::kError);
      }
    });
    for (auto& th : threads) th.join();
  }
  std::cerr.rdbuf(saved);

  std::istringstream lines(captured.str());
  std::string line;
  while (std::getline(lines, line)) {
    EXPECT_EQ(line.rfind("[WARN ] msg ", 0), 0u) << "torn line: " << line;
    EXPECT_EQ(line.substr(line.size() - 4), " end") << "torn line: " << line;
  }
}

}  // namespace
}  // namespace fedcons
