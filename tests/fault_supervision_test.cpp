// Tests for runtime supervision (SupervisionMode::kEnforce) and the fault
// post-pass: EDF budget throttling, the sporadic arrival guard with its
// CBS-style scheduling/accounting deadline split, template-slot clamping in
// cluster replay, and the no-fault byte-identity contract.
#include <gtest/gtest.h>

#include <array>
#include <vector>

#include "fedcons/core/builders.h"
#include "fedcons/federated/fedcons_algorithm.h"
#include "fedcons/gen/taskset_gen.h"
#include "fedcons/sim/edf_sim.h"
#include "fedcons/sim/fault_injection.h"
#include "fedcons/sim/system_sim.h"
#include "fedcons/util/rng.h"

namespace fedcons {
namespace {

void expect_stats_eq(const SimStats& a, const SimStats& b) {
  EXPECT_EQ(a.jobs_released, b.jobs_released);
  EXPECT_EQ(a.deadline_misses, b.deadline_misses);
  EXPECT_EQ(a.max_lateness, b.max_lateness);
  EXPECT_EQ(a.max_response_time, b.max_response_time);
  EXPECT_DOUBLE_EQ(a.busy_fraction, b.busy_fraction);
  EXPECT_EQ(a.budget_throttles, b.budget_throttles);
  EXPECT_EQ(a.arrival_deferrals, b.arrival_deferrals);
  EXPECT_EQ(a.slot_overruns, b.slot_overruns);
}

TEST(BudgetEnforcementTest, ThrottleProtectsTheNeighbour) {
  // Stream 0 was admitted with budget 5 but its job tries to run 20 ticks;
  // stream 1 is a well-behaved neighbour sharing the processor and deadline.
  SimConfig cfg;
  cfg.horizon = 100;
  std::vector<EdfTaskStream> streams(2);
  streams[0].jobs = {{0, 20, 10}};
  streams[0].budget = 5;
  streams[1].jobs = {{0, 5, 10}};

  // Unsupervised: the overrun starves the neighbour past its deadline.
  const FpSimReport loose = simulate_edf_uniproc_detailed(streams, cfg);
  EXPECT_GT(loose.per_stream[1].deadline_misses, 0u);
  EXPECT_EQ(loose.stats.budget_throttles, 0u);

  // Enforced: the job is clamped at its budget and both streams meet.
  cfg.supervision = SupervisionMode::kEnforce;
  const FpSimReport tight = simulate_edf_uniproc_detailed(streams, cfg);
  EXPECT_EQ(tight.per_stream[0].budget_throttles, 1u);
  EXPECT_EQ(tight.per_stream[0].deadline_misses, 0u);
  EXPECT_EQ(tight.per_stream[1].deadline_misses, 0u);
  EXPECT_EQ(tight.stats.deadline_misses, 0u);
}

TEST(BudgetEnforcementTest, WithinBudgetJobsAreUntouched) {
  SimConfig cfg;
  cfg.horizon = 100;
  cfg.supervision = SupervisionMode::kEnforce;
  std::vector<EdfTaskStream> streams(1);
  streams[0].jobs = {{0, 5, 10}, {10, 3, 20}};
  streams[0].budget = 5;
  streams[0].min_separation = 10;
  streams[0].rel_deadline = 10;
  const FpSimReport rep = simulate_edf_uniproc_detailed(streams, cfg);
  EXPECT_EQ(rep.stats.budget_throttles, 0u);
  EXPECT_EQ(rep.stats.arrival_deferrals, 0u);
  EXPECT_EQ(rep.stats.deadline_misses, 0u);
}

TEST(ArrivalGuardTest, DeferralSplitsSchedulingFromAccounting) {
  // Job 2 of stream 0 arrives at t=3, seven ticks early for a T=10 task.
  // The guard defers it to t=10; its scheduling deadline moves to 10 + D,
  // but its ACCOUNTING deadline stays the raw 3 + D = 8 — so the resulting
  // miss lands on the faulting stream itself.
  SimConfig cfg;
  cfg.horizon = 100;
  cfg.supervision = SupervisionMode::kEnforce;
  std::vector<EdfTaskStream> streams(1);
  streams[0].jobs = {{0, 2, 5}, {3, 2, 8}};
  streams[0].min_separation = 10;
  streams[0].rel_deadline = 5;
  const FpSimReport rep = simulate_edf_uniproc_detailed(streams, cfg);
  EXPECT_EQ(rep.per_stream[0].arrival_deferrals, 1u);
  // Deferred job runs [10, 12): finish 12 vs accounting deadline 8.
  EXPECT_EQ(rep.per_stream[0].deadline_misses, 1u);
  EXPECT_EQ(rep.per_stream[0].max_lateness, 4);
}

TEST(ArrivalGuardTest, DeferredJobCannotPreemptTheNeighbour) {
  // Stream 0 floods early releases; stream 1 is a legal neighbour whose
  // deadline the early jobs would beat under plain EDF. With the guard on,
  // the early job waits out the separation and the neighbour is untouched.
  SimConfig cfg;
  cfg.horizon = 100;
  std::vector<EdfTaskStream> streams(2);
  streams[0].jobs = {{0, 4, 6}, {1, 4, 7}};  // second release 9 ticks early
  streams[0].min_separation = 10;
  streams[0].rel_deadline = 6;
  streams[0].budget = 4;
  streams[1].jobs = {{0, 4, 10}};

  const FpSimReport loose = simulate_edf_uniproc_detailed(streams, cfg);
  EXPECT_GT(loose.per_stream[1].deadline_misses, 0u);

  cfg.supervision = SupervisionMode::kEnforce;
  const FpSimReport tight = simulate_edf_uniproc_detailed(streams, cfg);
  EXPECT_EQ(tight.per_stream[0].arrival_deferrals, 1u);
  EXPECT_EQ(tight.per_stream[1].deadline_misses, 0u);
}

/// A two-task system: one high-density task (gets a dedicated cluster) and
/// one light task (lands on a shared EDF processor).
TaskSystem mixed_system() {
  TaskSystem sys;
  sys.add(DagTask(make_independent(std::array<Time, 2>{4, 4}), 5, 10,
                  "heavy"));
  sys.add(DagTask(make_chain(std::array<Time, 1>{1}), 10, 10, "light"));
  return sys;
}

TEST(SlotEnforcementTest, TemplateReplayClampsOverrunningVertices) {
  const TaskSystem sys = mixed_system();
  const FedconsResult result = fedcons_schedule(sys, 4);
  ASSERT_TRUE(result.success);

  SimConfig cfg;
  cfg.horizon = 100;
  cfg.faults = parse_fault_plan("task:heavy,overrun:3000");

  // Unsupervised replay: 3x-inflated vertices run past their slots and the
  // faulted task misses; the light task is on its own processor and is safe
  // either way (federated isolation outside the shared pool is structural).
  SystemSimReport loose = simulate_system(sys, result, cfg);
  EXPECT_GT(loose.per_task[0].deadline_misses, 0u);
  EXPECT_EQ(loose.per_task[0].slot_overruns, 0u);
  EXPECT_EQ(loose.per_task[1].deadline_misses, 0u);

  // Enforced replay: every overrunning vertex is clamped at its sigma slot,
  // so the dag-job still completes by release + makespan <= deadline.
  cfg.supervision = SupervisionMode::kEnforce;
  SystemSimReport tight = simulate_system(sys, result, cfg);
  EXPECT_GT(tight.per_task[0].slot_overruns, 0u);
  EXPECT_EQ(tight.per_task[0].deadline_misses, 0u);
  EXPECT_EQ(tight.total.deadline_misses, 0u);
}

TEST(SlotEnforcementTest, OnlineRerunHasNoSlotsToEnforce) {
  const TaskSystem sys = mixed_system();
  const FedconsResult result = fedcons_schedule(sys, 4);
  ASSERT_TRUE(result.success);
  SimConfig cfg;
  cfg.horizon = 100;
  // Jitter-only fault: online rerun feeds ACTUAL execution times back into
  // LS, whose contract requires exec <= WCET — an overrun fault is outside
  // that dispatch mode's domain (it throws, loudly). Early releases are fine.
  cfg.faults = parse_fault_plan("task:heavy,early:3;seed:9");
  cfg.supervision = SupervisionMode::kEnforce;
  SystemSimReport rep =
      simulate_system(sys, result, cfg, ClusterDispatch::kOnlineRerun);
  // No template slots exist in online rerun, so nothing can be clamped —
  // that dispatch mode IS the anomaly demonstration.
  EXPECT_EQ(rep.per_task[0].slot_overruns, 0u);
}

TEST(NoFaultIdentityTest, EnforcementIsInvisibleWithoutFaults) {
  // The headline determinism contract: with an empty plan, a supervised run
  // is indistinguishable from an unsupervised one — same RNG draws, same
  // statistics, field for field — across a batch of random systems.
  Rng rng(2026);
  TaskSetParams params;
  params.num_tasks = 6;
  for (int trial = 0; trial < 10; ++trial) {
    const TaskSystem sys = generate_task_system(rng, params);
    const FedconsResult result = fedcons_schedule(sys, 8);
    if (!result.success) continue;
    SimConfig cfg;
    cfg.horizon = 2000;
    cfg.release = ReleaseModel::kSporadic;
    cfg.exec = ExecModel::kUniform;
    cfg.seed = 42 + static_cast<std::uint64_t>(trial);

    const SystemSimReport plain = simulate_system(sys, result, cfg);
    cfg.supervision = SupervisionMode::kEnforce;
    const SystemSimReport watched = simulate_system(sys, result, cfg);

    expect_stats_eq(plain.total, watched.total);
    ASSERT_EQ(plain.per_task.size(), watched.per_task.size());
    for (std::size_t i = 0; i < plain.per_task.size(); ++i) {
      expect_stats_eq(plain.per_task[i], watched.per_task[i]);
    }
    EXPECT_EQ(watched.total.budget_throttles, 0u);
    EXPECT_EQ(watched.total.arrival_deferrals, 0u);
    EXPECT_EQ(watched.total.slot_overruns, 0u);
  }
}

TEST(FaultInjectionTest, SequentialScalingIsExactAndDeadlinePreserving) {
  TaskFaultSpec spec;
  spec.task = "tau";
  spec.overrun_permille = 2000;
  std::vector<JobRelease> jobs = {{0, 4, 5}, {10, 3, 15}};
  // vol 4 → faulty_vol 8: exec' = ⌈exec · 8 / 4⌉.
  apply_sequential_fault(spec, 1, 4, 8, 5, jobs);
  EXPECT_EQ(jobs[0].exec_time, 8);
  EXPECT_EQ(jobs[1].exec_time, 6);
  // No jitter in the spec: releases and absolute deadlines are untouched.
  EXPECT_EQ(jobs[0].release, 0);
  EXPECT_EQ(jobs[1].release, 10);
  EXPECT_EQ(jobs[0].abs_deadline, 5);
  EXPECT_EQ(jobs[1].abs_deadline, 15);
}

TEST(FaultInjectionTest, EarlyShiftsStaySortedAndMoveDeadlines) {
  TaskFaultSpec spec;
  spec.task = "tau";
  spec.early_release_max = 8;
  std::vector<JobRelease> jobs;
  for (Time r = 0; r < 100; r += 10) jobs.push_back({r, 2, r + 5});
  std::vector<JobRelease> again = jobs;
  apply_sequential_fault(spec, 99, 2, 2, 5, jobs);
  apply_sequential_fault(spec, 99, 2, 2, 5, again);
  Time prev = 0;
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    // Deterministic: the same plan perturbs the same jobs identically.
    EXPECT_EQ(jobs[i].release, again[i].release);
    // Monotone and non-negative (the simulators assume sorted releases).
    EXPECT_GE(jobs[i].release, prev);
    prev = jobs[i].release;
    // A shifted job's real deadline moves with its real arrival.
    EXPECT_EQ(jobs[i].abs_deadline, jobs[i].release + 5);
    EXPECT_LE(jobs[i].release, static_cast<Time>(i) * 10);
  }
}

TEST(FaultInjectionTest, OutOfRangeVertexOverridesAreInert) {
  // Shrinker safety: an override naming a vertex the task does not have
  // perturbs nothing (and the spec may become a no-op as a result).
  TaskFaultSpec spec;
  spec.task = "tau";
  spec.vertex_overrides = {{7, 3000}};
  std::vector<DagJobRelease> releases = {{0, {2, 3}}, {10, {2, 3}}};
  apply_dag_fault(spec, 5, releases);
  for (const auto& r : releases) {
    EXPECT_EQ(r.exec_times[0], 2);
    EXPECT_EQ(r.exec_times[1], 3);
  }
}

TEST(FaultInjectionTest, DagFaultScalesOnlyTheOverriddenVertex) {
  TaskFaultSpec spec;
  spec.task = "tau";
  spec.vertex_overrides = {{1, 3000}};
  std::vector<DagJobRelease> releases = {{0, {2, 3}}};
  apply_dag_fault(spec, 5, releases);
  EXPECT_EQ(releases[0].exec_times[0], 2);
  EXPECT_EQ(releases[0].exec_times[1], 9);
}

TEST(FaultInjectionTest, FaultedVolumeSumsScaledVertices) {
  const DagTask task(make_chain(std::array<Time, 3>{2, 3, 1}), 10, 12, "tau");
  TaskFaultSpec spec;
  spec.task = "tau";
  spec.overrun_permille = 2000;
  spec.vertex_overrides = {{2, 1000}};  // last vertex unscaled
  EXPECT_EQ(faulted_volume(task, spec), 4 + 6 + 1);
}

}  // namespace
}  // namespace fedcons
