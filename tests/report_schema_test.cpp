// Every machine-readable report the repo emits carries "schema_version" and
// parses as JSON. These tests run each writer on a small real input and
// assert the version plus the structural keys consumers rely on.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "fedcons/conform/harness.h"
#include "fedcons/conform/oracle.h"
#include "fedcons/expr/acceptance.h"
#include "fedcons/expr/reports.h"
#include "fedcons/expr/speedup_experiment.h"
#include "test_json.h"

namespace fedcons {
namespace {

TEST(ReportSchemaTest, SweepReportCarriesSchemaVersion) {
  SweepConfig cfg;
  cfg.m = 2;
  cfg.normalized_utils = {0.4, 0.8};
  cfg.trials = 6;
  cfg.seed = 11;
  cfg.num_threads = 1;
  cfg.base.num_tasks = 4;
  cfg.base.period_min = 50;
  cfg.base.period_max = 500;
  auto algorithms = standard_algorithms();
  auto points = run_acceptance_sweep(cfg, algorithms);

  const std::string json = sweep_report_json(
      "e3_acceptance_vs_util", cfg.seed, algorithms,
      {SweepSection{"m=2", cfg.m, points}});
  auto doc = testjson::parse(json);
  EXPECT_EQ(doc->at("schema_version").number, 1.0);
  EXPECT_EQ(doc->at("experiment").string, "e3_acceptance_vs_util");
  EXPECT_EQ(doc->at("algorithms").array.size(), algorithms.size());
  const auto& sweeps = doc->at("sweeps");
  ASSERT_EQ(sweeps.array.size(), 1u);
  const auto& pts = sweeps.array[0]->at("points");
  ASSERT_EQ(pts.array.size(), 2u);
  for (const auto& pt : pts.array) {
    EXPECT_TRUE(pt->has("normalized_util"));
    EXPECT_TRUE(pt->has("trials"));
    EXPECT_TRUE(pt->has("accepted"));
    EXPECT_TRUE(pt->has("counters"));
    // Metrics were not requested, so the key must be absent (byte-stability
    // of default reports).
    EXPECT_FALSE(pt->has("metrics"));
  }
}

TEST(ReportSchemaTest, SweepReportIncludesMetricsOnlyWhenCollected) {
  SweepConfig cfg;
  cfg.m = 2;
  cfg.normalized_utils = {0.5};
  cfg.trials = 4;
  cfg.seed = 3;
  cfg.num_threads = 1;
  cfg.collect_metrics = true;
  cfg.base.num_tasks = 4;
  cfg.base.period_min = 50;
  cfg.base.period_max = 500;
  auto algorithms = standard_algorithms();
  obs::set_metrics_enabled(true);
  auto points = run_acceptance_sweep(cfg, algorithms);
  obs::set_metrics_enabled(false);

  const std::string json = sweep_report_json(
      "e3_acceptance_vs_util", cfg.seed, algorithms,
      {SweepSection{"m=2", cfg.m, points}});
  auto doc = testjson::parse(json);
  const auto& pt =
      *doc->at("sweeps").array[0]->at("points").array[0];
  ASSERT_TRUE(pt.has("metrics"));
  EXPECT_TRUE(pt.at("metrics").at("trial_latency_us").has("p99"));
}

TEST(ReportSchemaTest, SpeedupReportCarriesSchemaVersion) {
  SpeedupExperimentConfig cfg;
  cfg.m = 4;
  SpeedupExperimentResult result;
  result.speeds = {1.0, 1.25, 2.5};
  result.measured = 3;
  result.accepted_at_unit = 1;
  result.never_accepted = 0;

  auto doc = testjson::parse(speedup_report_json("e4_speedup", cfg, result));
  EXPECT_EQ(doc->at("schema_version").number, 1.0);
  EXPECT_EQ(doc->at("experiment").string, "e4_speedup");
  EXPECT_EQ(doc->at("m").number, 4.0);
  EXPECT_EQ(doc->at("speeds").array.size(), 3u);
  EXPECT_TRUE(doc->has("theoretical_bound"));
}

TEST(ReportSchemaTest, ConformReportCarriesSchemaVersion) {
  ConformConfig config = default_conform_config();
  config.trials = 3;
  config.num_threads = 1;
  config.m = 4;
  config.sim.horizon = 500;
  auto entries = builtin_conformance_entries();
  ConformReport report = run_conformance(config, entries);

  auto doc = testjson::parse(conform_report_json(report));
  EXPECT_EQ(doc->at("schema_version").number, 1.0);
  EXPECT_EQ(doc->at("trials").number, 3.0);
  ASSERT_TRUE(doc->at("entries").is_array());
  ASSERT_EQ(doc->at("entries").array.size(), entries.size());
  for (const auto& e : doc->at("entries").array) {
    EXPECT_TRUE(e->has("name"));
    EXPECT_TRUE(e->has("supported"));
    EXPECT_TRUE(e->has("admitted"));
    EXPECT_TRUE(e->has("violations"));
  }
  EXPECT_TRUE(doc->at("counters").has("conform_trials"));
}

}  // namespace
}  // namespace fedcons
