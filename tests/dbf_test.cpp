// Tests for demand bound functions: exact DBF, DBF*, and the exact summed
// comparison used by Algorithm PARTITION.
#include "fedcons/analysis/dbf.h"

#include <gtest/gtest.h>

#include <array>
#include <vector>

#include "fedcons/util/rng.h"

namespace fedcons {
namespace {

TEST(DbfTest, ZeroBeforeDeadline) {
  SporadicTask t(3, 7, 10);
  EXPECT_EQ(dbf(t, 0), 0);
  EXPECT_EQ(dbf(t, 6), 0);
  EXPECT_EQ(dbf(t, -5), 0);
}

TEST(DbfTest, StepsAtDeadlinePlusPeriods) {
  SporadicTask t(3, 7, 10);
  EXPECT_EQ(dbf(t, 7), 3);
  EXPECT_EQ(dbf(t, 16), 3);
  EXPECT_EQ(dbf(t, 17), 6);
  EXPECT_EQ(dbf(t, 26), 6);
  EXPECT_EQ(dbf(t, 27), 9);
}

TEST(DbfTest, ImplicitDeadlineForm) {
  SporadicTask t(2, 5, 5);
  EXPECT_EQ(dbf(t, 4), 0);
  EXPECT_EQ(dbf(t, 5), 2);
  EXPECT_EQ(dbf(t, 10), 4);
  EXPECT_EQ(dbf(t, 14), 4);
}

TEST(DbfApproxTest, ZeroBeforeDeadline) {
  SporadicTask t(3, 7, 10);
  EXPECT_TRUE(dbf_approx(t, 6).is_zero());
}

TEST(DbfApproxTest, ExactAtDeadline) {
  SporadicTask t(3, 7, 10);
  EXPECT_EQ(dbf_approx(t, 7), BigRational(3));
}

TEST(DbfApproxTest, LinearBetween) {
  SporadicTask t(3, 7, 10);
  // DBF*(t) = 3 + (3/10)(t − 7).
  EXPECT_EQ(dbf_approx(t, 17), BigRational(6));
  EXPECT_EQ(dbf_approx(t, 12), BigRational(3) + BigRational(3, 2));
}

// Property: DBF ≤ DBF* < DBF + C; both monotone in t; DBF* matches DBF at
// step points t = D + kT.
class DbfPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DbfPropertyTest, ApproximationDominatesWithinWcet) {
  Rng rng(GetParam());
  for (int i = 0; i < 200; ++i) {
    Time period = rng.uniform_int(2, 200);
    Time deadline = rng.uniform_int(1, period);
    Time wcet = rng.uniform_int(1, deadline);
    SporadicTask t(wcet, deadline, period);
    Time prev_exact = 0;
    BigRational prev_approx(0);
    for (Time x = 0; x <= 3 * period + deadline; ++x) {
      Time exact = dbf(t, x);
      BigRational approx = dbf_approx(t, x);
      EXPECT_LE(BigRational(exact), approx);
      EXPECT_LT(approx, BigRational(exact + wcet) + BigRational(1, 1000000));
      EXPECT_GE(exact, prev_exact);
      EXPECT_GE(approx, prev_approx);
      prev_exact = exact;
      prev_approx = approx;
    }
    // Coincidence at the step points.
    for (int k = 0; k < 3; ++k) {
      Time step = deadline + k * period;
      EXPECT_EQ(dbf_approx(t, step), BigRational(dbf(t, step)));
    }
  }
}

TEST_P(DbfPropertyTest, SummedFitMatchesBruteForceRational) {
  Rng rng(GetParam() ^ 0xbeef);
  for (int i = 0; i < 100; ++i) {
    std::vector<SporadicTask> tasks;
    int n = static_cast<int>(rng.uniform_int(1, 8));
    for (int j = 0; j < n; ++j) {
      Time period = rng.uniform_int(2, 500);
      Time deadline = rng.uniform_int(1, period);
      Time wcet = rng.uniform_int(1, deadline);
      tasks.emplace_back(wcet, deadline, period);
    }
    Time t = rng.uniform_int(0, 1500);
    BigRational sum;
    for (const auto& task : tasks) sum += dbf_approx(task, t);
    EXPECT_EQ(approx_demand_fits(tasks, t), sum <= BigRational(t));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DbfPropertyTest,
                         ::testing::Values(5u, 6u, 7u));

TEST(DbfApproxKTest, OnePointMatchesDbfStar) {
  SporadicTask t(3, 7, 10);
  for (Time x = 0; x <= 60; ++x) {
    EXPECT_EQ(dbf_approx_k(t, x, 1), dbf_approx(t, x)) << "t=" << x;
  }
}

TEST(DbfApproxKTest, ExactWithinFirstKSteps) {
  SporadicTask t(3, 7, 10);
  // With 3 points the approximation is exact up to D + 2T = 27.
  for (Time x = 0; x < 27; ++x) {
    EXPECT_EQ(dbf_approx_k(t, x, 3), BigRational(dbf(t, x)));
  }
  // At the tail start it is still exact…
  EXPECT_EQ(dbf_approx_k(t, 27, 3), BigRational(9));
  // …and linear after: at 32, 9 + (3/10)·5 = 21/2.
  EXPECT_EQ(dbf_approx_k(t, 32, 3), BigRational(21, 2));
}

TEST(DbfApproxKTest, MonotoneInPointsAndAboveDbf) {
  Rng rng(77);
  for (int i = 0; i < 100; ++i) {
    Time period = rng.uniform_int(2, 100);
    Time deadline = rng.uniform_int(1, period);
    Time wcet = rng.uniform_int(1, deadline);
    SporadicTask t(wcet, deadline, period);
    Time x = rng.uniform_int(0, 5 * period);
    BigRational prev = dbf_approx_k(t, x, 1);
    EXPECT_GE(prev, BigRational(dbf(t, x)));
    for (int k = 2; k <= 6; ++k) {
      BigRational cur = dbf_approx_k(t, x, k);
      EXPECT_LE(cur, prev) << "k=" << k;
      EXPECT_GE(cur, BigRational(dbf(t, x)));
      prev = cur;
    }
  }
}

TEST(DbfApproxKTest, RejectsBadPointCount) {
  SporadicTask t(1, 2, 3);
  EXPECT_THROW(dbf_approx_k(t, 5, 0), ContractViolation);
}

TEST(DbfBreakpointsTest, EnumeratesStepInstants) {
  std::vector<SporadicTask> tasks{SporadicTask(1, 3, 10),
                                  SporadicTask(2, 5, 10)};
  auto bps = dbf_approx_breakpoints(tasks, 2, 100);
  EXPECT_EQ(bps, (std::vector<Time>{3, 5, 13, 15}));
  auto capped = dbf_approx_breakpoints(tasks, 2, 14);
  EXPECT_EQ(capped, (std::vector<Time>{3, 5, 13}));
}

TEST(DbfBreakpointsTest, DeduplicatesSharedInstants) {
  std::vector<SporadicTask> tasks{SporadicTask(1, 5, 10),
                                  SporadicTask(2, 5, 10)};
  auto bps = dbf_approx_breakpoints(tasks, 1, 100);
  EXPECT_EQ(bps, (std::vector<Time>{5}));
}

TEST(ApproxDemandFitsTest, EmptyAlwaysFits) {
  EXPECT_TRUE(approx_demand_fits({}, 0));
  EXPECT_TRUE(approx_demand_fits({}, 100));
}

TEST(ApproxDemandFitsTest, ExactBoundaryDecisions) {
  // One task exactly filling the instant: C = D = 5, T = 5: DBF*(5) = 5 ≤ 5.
  std::array<SporadicTask, 1> fit{SporadicTask(5, 5, 5)};
  EXPECT_TRUE(approx_demand_fits(fit, 5));
  // Fractional hairline: C=1, D=1, T=3 → DBF*(2) = 1 + 1/3 > 2? No: ≤ 2.
  std::array<SporadicTask, 2> pair{SporadicTask(1, 1, 3),
                                   SporadicTask(1, 2, 3)};
  // At t=2: (1 + 1/3) + 1 = 7/3 ≤ 2 is FALSE.
  EXPECT_FALSE(approx_demand_fits(pair, 2));
}

TEST(TotalDbfTest, SumsExactDemands) {
  std::array<SporadicTask, 2> tasks{SporadicTask(2, 4, 10),
                                    SporadicTask(3, 5, 10)};
  EXPECT_EQ(total_dbf(tasks, 3), 0);
  EXPECT_EQ(total_dbf(tasks, 4), 2);
  EXPECT_EQ(total_dbf(tasks, 5), 5);
  EXPECT_EQ(total_dbf(tasks, 15), 10);
}

}  // namespace
}  // namespace fedcons
