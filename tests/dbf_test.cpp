// Tests for demand bound functions: exact DBF, DBF*, and the exact summed
// comparison used by Algorithm PARTITION.
#include "fedcons/analysis/dbf.h"

#include <gtest/gtest.h>

#include <array>
#include <vector>

#include "fedcons/util/rng.h"

namespace fedcons {
namespace {

TEST(DbfTest, ZeroBeforeDeadline) {
  SporadicTask t(3, 7, 10);
  EXPECT_EQ(dbf(t, 0), 0);
  EXPECT_EQ(dbf(t, 6), 0);
  EXPECT_EQ(dbf(t, -5), 0);
}

TEST(DbfTest, StepsAtDeadlinePlusPeriods) {
  SporadicTask t(3, 7, 10);
  EXPECT_EQ(dbf(t, 7), 3);
  EXPECT_EQ(dbf(t, 16), 3);
  EXPECT_EQ(dbf(t, 17), 6);
  EXPECT_EQ(dbf(t, 26), 6);
  EXPECT_EQ(dbf(t, 27), 9);
}

TEST(DbfTest, ImplicitDeadlineForm) {
  SporadicTask t(2, 5, 5);
  EXPECT_EQ(dbf(t, 4), 0);
  EXPECT_EQ(dbf(t, 5), 2);
  EXPECT_EQ(dbf(t, 10), 4);
  EXPECT_EQ(dbf(t, 14), 4);
}

TEST(DbfApproxTest, ZeroBeforeDeadline) {
  SporadicTask t(3, 7, 10);
  EXPECT_TRUE(dbf_approx(t, 6).is_zero());
}

TEST(DbfApproxTest, ExactAtDeadline) {
  SporadicTask t(3, 7, 10);
  EXPECT_EQ(dbf_approx(t, 7), BigRational(3));
}

TEST(DbfApproxTest, LinearBetween) {
  SporadicTask t(3, 7, 10);
  // DBF*(t) = 3 + (3/10)(t − 7).
  EXPECT_EQ(dbf_approx(t, 17), BigRational(6));
  EXPECT_EQ(dbf_approx(t, 12), BigRational(3) + BigRational(3, 2));
}

// Property: DBF ≤ DBF* < DBF + C; both monotone in t; DBF* matches DBF at
// step points t = D + kT.
class DbfPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DbfPropertyTest, ApproximationDominatesWithinWcet) {
  Rng rng(GetParam());
  for (int i = 0; i < 200; ++i) {
    Time period = rng.uniform_int(2, 200);
    Time deadline = rng.uniform_int(1, period);
    Time wcet = rng.uniform_int(1, deadline);
    SporadicTask t(wcet, deadline, period);
    Time prev_exact = 0;
    BigRational prev_approx(0);
    for (Time x = 0; x <= 3 * period + deadline; ++x) {
      Time exact = dbf(t, x);
      BigRational approx = dbf_approx(t, x);
      EXPECT_LE(BigRational(exact), approx);
      EXPECT_LT(approx, BigRational(exact + wcet) + BigRational(1, 1000000));
      EXPECT_GE(exact, prev_exact);
      EXPECT_GE(approx, prev_approx);
      prev_exact = exact;
      prev_approx = approx;
    }
    // Coincidence at the step points.
    for (int k = 0; k < 3; ++k) {
      Time step = deadline + k * period;
      EXPECT_EQ(dbf_approx(t, step), BigRational(dbf(t, step)));
    }
  }
}

TEST_P(DbfPropertyTest, SummedFitMatchesBruteForceRational) {
  Rng rng(GetParam() ^ 0xbeef);
  for (int i = 0; i < 100; ++i) {
    std::vector<SporadicTask> tasks;
    int n = static_cast<int>(rng.uniform_int(1, 8));
    for (int j = 0; j < n; ++j) {
      Time period = rng.uniform_int(2, 500);
      Time deadline = rng.uniform_int(1, period);
      Time wcet = rng.uniform_int(1, deadline);
      tasks.emplace_back(wcet, deadline, period);
    }
    Time t = rng.uniform_int(0, 1500);
    BigRational sum;
    for (const auto& task : tasks) sum += dbf_approx(task, t);
    EXPECT_EQ(approx_demand_fits(tasks, t), sum <= BigRational(t));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DbfPropertyTest,
                         ::testing::Values(5u, 6u, 7u));

TEST(DbfApproxKTest, OnePointMatchesDbfStar) {
  SporadicTask t(3, 7, 10);
  for (Time x = 0; x <= 60; ++x) {
    EXPECT_EQ(dbf_approx_k(t, x, 1), dbf_approx(t, x)) << "t=" << x;
  }
}

TEST(DbfApproxKTest, ExactWithinFirstKSteps) {
  SporadicTask t(3, 7, 10);
  // With 3 points the approximation is exact up to D + 2T = 27.
  for (Time x = 0; x < 27; ++x) {
    EXPECT_EQ(dbf_approx_k(t, x, 3), BigRational(dbf(t, x)));
  }
  // At the tail start it is still exact…
  EXPECT_EQ(dbf_approx_k(t, 27, 3), BigRational(9));
  // …and linear after: at 32, 9 + (3/10)·5 = 21/2.
  EXPECT_EQ(dbf_approx_k(t, 32, 3), BigRational(21, 2));
}

TEST(DbfApproxKTest, MonotoneInPointsAndAboveDbf) {
  Rng rng(77);
  for (int i = 0; i < 100; ++i) {
    Time period = rng.uniform_int(2, 100);
    Time deadline = rng.uniform_int(1, period);
    Time wcet = rng.uniform_int(1, deadline);
    SporadicTask t(wcet, deadline, period);
    Time x = rng.uniform_int(0, 5 * period);
    BigRational prev = dbf_approx_k(t, x, 1);
    EXPECT_GE(prev, BigRational(dbf(t, x)));
    for (int k = 2; k <= 6; ++k) {
      BigRational cur = dbf_approx_k(t, x, k);
      EXPECT_LE(cur, prev) << "k=" << k;
      EXPECT_GE(cur, BigRational(dbf(t, x)));
      prev = cur;
    }
  }
}

TEST(DbfApproxKTest, RejectsBadPointCount) {
  SporadicTask t(1, 2, 3);
  EXPECT_THROW(dbf_approx_k(t, 5, 0), ContractViolation);
}

TEST(DbfBreakpointsTest, EnumeratesStepInstants) {
  std::vector<SporadicTask> tasks{SporadicTask(1, 3, 10),
                                  SporadicTask(2, 5, 10)};
  auto bps = dbf_approx_breakpoints(tasks, 2, 100);
  EXPECT_EQ(bps, (std::vector<Time>{3, 5, 13, 15}));
  auto capped = dbf_approx_breakpoints(tasks, 2, 14);
  EXPECT_EQ(capped, (std::vector<Time>{3, 5, 13}));
}

TEST(DbfBreakpointsTest, DeduplicatesSharedInstants) {
  std::vector<SporadicTask> tasks{SporadicTask(1, 5, 10),
                                  SporadicTask(2, 5, 10)};
  auto bps = dbf_approx_breakpoints(tasks, 1, 100);
  EXPECT_EQ(bps, (std::vector<Time>{5}));
}

TEST(ApproxDemandFitsTest, EmptyAlwaysFits) {
  EXPECT_TRUE(approx_demand_fits({}, 0));
  EXPECT_TRUE(approx_demand_fits({}, 100));
}

TEST(ApproxDemandFitsTest, ExactBoundaryDecisions) {
  // One task exactly filling the instant: C = D = 5, T = 5: DBF*(5) = 5 ≤ 5.
  std::array<SporadicTask, 1> fit{SporadicTask(5, 5, 5)};
  EXPECT_TRUE(approx_demand_fits(fit, 5));
  // Fractional hairline: C=1, D=1, T=3 → DBF*(2) = 1 + 1/3 > 2? No: ≤ 2.
  std::array<SporadicTask, 2> pair{SporadicTask(1, 1, 3),
                                   SporadicTask(1, 2, 3)};
  // At t=2: (1 + 1/3) + 1 = 7/3 ≤ 2 is FALSE.
  EXPECT_FALSE(approx_demand_fits(pair, 2));
}

// Audit of the approx_demand_fits fast path against the definitionally exact
// reference Σ_j dbf_approx(τ_j, t) ≤ t computed in BigRational arithmetic.
// The fast path may only decide outright when its scaled integer estimate is
// at least 2 whole units away from the boundary (the ±2 undecided band that
// absorbs the worst-case rounding of the long-double accumulation, see
// DESIGN.md §7); inside the band it must fall through to exact arithmetic.
// Probing every breakpoint D_j + k·T_j and its ±2 neighborhood lands many
// samples exactly on and around the boundary, where a mis-sized band would
// flip decisions.
TEST(ApproxDemandFitsTest, AgreesWithExactRationalReferenceNearBoundaries) {
  Rng rng(2026);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<SporadicTask> tasks;
    const int n = static_cast<int>(rng.uniform_int(1, 6));
    // Mix magnitudes: small values make hairline sums common; large values
    // push the 128-bit intermediates the fast path must survive.
    const bool large = rng.uniform01() < 0.3;
    const Time scale = large ? 1'000'000'000 : 20;
    for (int i = 0; i < n; ++i) {
      const Time c = rng.uniform_int(1, scale);
      const Time d = c + rng.uniform_int(0, scale);
      const Time t = d + rng.uniform_int(0, scale);
      tasks.emplace_back(c, d, t);
    }
    std::vector<Time> probes;
    for (const SporadicTask& task : tasks) {
      for (int k = 0; k < 3; ++k) {
        const Time bp = task.deadline + k * task.period;
        for (Time delta = -2; delta <= 2; ++delta) probes.push_back(bp + delta);
      }
    }
    probes.push_back(rng.uniform_int(0, 4 * scale));
    for (const Time t : probes) {
      BigRational sum;
      for (const SporadicTask& task : tasks) sum += dbf_approx(task, t);
      const bool expected = sum <= BigRational(t);
      EXPECT_EQ(approx_demand_fits(tasks, t), expected)
          << "trial " << trial << " t=" << t;
    }
  }
}

TEST(ApproxDemandFitsTest, HairlineFractionalBoundaries) {
  // Sums that land exactly on t or a small fraction off it — the cases a
  // floating-point-only implementation gets wrong and the ±2 band protects.
  // Fractional sum strictly inside the bound: DBF*(8) of (2,2,6) is
  // 2 + 6/3 = 4 and of (1,3,3) is 1 + 5/3 = 8/3, so Σ = 20/3 ≤ 8.
  std::vector<SporadicTask> tasks{SporadicTask(2, 2, 6), SporadicTask(1, 3, 3)};
  EXPECT_TRUE(approx_demand_fits(tasks, 8));
  // Exact equality: C=D=T=1 gives DBF*(t) = t, so the bound holds with zero
  // slack at every t.
  std::vector<SporadicTask> exact{SporadicTask(1, 1, 1)};
  EXPECT_TRUE(approx_demand_fits(exact, 3));
  EXPECT_TRUE(approx_demand_fits(exact, 1000));
  // Any extra volume breaks the equality case: adding (1,3,3) makes the sum
  // at t=3 equal 3 + 1 = 4 > 3.
  exact.emplace_back(1, 3, 3);
  EXPECT_FALSE(approx_demand_fits(exact, 3));
}

TEST(TotalDbfTest, SumsExactDemands) {
  std::array<SporadicTask, 2> tasks{SporadicTask(2, 4, 10),
                                    SporadicTask(3, 5, 10)};
  EXPECT_EQ(total_dbf(tasks, 3), 0);
  EXPECT_EQ(total_dbf(tasks, 4), 2);
  EXPECT_EQ(total_dbf(tasks, 5), 5);
  EXPECT_EQ(total_dbf(tasks, 15), 10);
}

TEST(DbfSaturationTest, HugeDemandSaturatesInsteadOfWrapping) {
  // jobs · C overflows int64; the accumulation must pin at kTimeInfinity so
  // any `demand <= supply` comparison fails safe ("unschedulable by
  // saturation"), never wraps negative and passes.
  const Time huge = Time{1} << 50;
  SporadicTask t(huge, huge, 1);
  EXPECT_EQ(dbf(t, kTimeInfinity / 2), kTimeInfinity);
  // A sane instant is still exact.
  EXPECT_EQ(dbf(t, huge), huge);
}

TEST(DbfSaturationTest, TotalDemandSaturatesAcrossTasks) {
  const Time big = Time{1} << 61;  // 4 · big overflows int64 on its own
  std::array<SporadicTask, 4> tasks{
      SporadicTask(big, big, big * 2), SporadicTask(big, big, big * 2),
      SporadicTask(big, big, big * 2), SporadicTask(big, big, big * 2)};
  EXPECT_EQ(total_dbf(tasks, big), kTimeInfinity);
}

TEST(DbfSaturationTest, BreakpointsStopAtSaturation) {
  // Breakpoint enumeration over near-overflow parameters terminates and
  // never emits a wrapped (negative) instant: D + i·T points that saturate
  // drop out instead of aliasing into the horizon.
  const Time big = Time{1} << 60;
  std::array<SporadicTask, 1> tasks{SporadicTask(1, big, big)};
  for (Time bp : dbf_approx_breakpoints(tasks, 64, kTimeInfinity - 1)) {
    EXPECT_GT(bp, 0);
    EXPECT_LT(bp, kTimeInfinity);
  }
}

}  // namespace
}  // namespace fedcons
