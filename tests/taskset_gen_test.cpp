// Tests for end-to-end random task-system generation.
#include "fedcons/gen/taskset_gen.h"

#include <gtest/gtest.h>

#include "fedcons/util/check.h"

namespace fedcons {
namespace {

TEST(TasksetGenTest, ProducesRequestedTaskCount) {
  Rng rng(1);
  TaskSetParams p;
  p.num_tasks = 12;
  TaskSystem sys = generate_task_system(rng, p);
  EXPECT_EQ(sys.size(), 12u);
}

TEST(TasksetGenTest, SystemsAreConstrainedDeadline) {
  Rng rng(2);
  TaskSetParams p;
  p.num_tasks = 10;
  p.total_utilization = 4.0;
  p.utilization_cap = 6.0;
  for (int trial = 0; trial < 40; ++trial) {
    TaskSystem sys = generate_task_system(rng, p);
    EXPECT_NE(sys.deadline_class(), DeadlineClass::kArbitrary);
    for (const auto& t : sys) {
      EXPECT_LE(t.deadline(), t.period());
      EXPECT_LE(t.len(), t.deadline()) << "generator must keep len ≤ D";
    }
  }
}

TEST(TasksetGenTest, UtilizationNearTarget) {
  Rng rng(3);
  TaskSetParams p;
  p.num_tasks = 8;
  p.total_utilization = 3.0;
  p.utilization_cap = 4.0;
  double sum = 0;
  const int kTrials = 30;
  for (int trial = 0; trial < kTrials; ++trial) {
    GenerationInfo info;
    TaskSystem sys = generate_task_system(rng, p, &info);
    sum += info.achieved_utilization;
    // Integer rounding distorts each task by at most ~|V| ticks over a
    // period of ≥ 100, so the aggregate stays close.
    EXPECT_NEAR(info.achieved_utilization, 3.0, 0.5);
  }
  EXPECT_NEAR(sum / kTrials, 3.0, 0.15);
}

TEST(TasksetGenTest, DeadlineRatioRangeRespected) {
  Rng rng(4);
  TaskSetParams p;
  p.num_tasks = 10;
  p.deadline_ratio_min = 0.9;
  p.deadline_ratio_max = 1.0;
  GenerationInfo info;
  TaskSystem sys = generate_task_system(rng, p, &info);
  for (const auto& t : sys) {
    // Unless clamped by len, D/T ≥ ~0.9.
    double ratio = static_cast<double>(t.deadline()) /
                   static_cast<double>(t.period());
    EXPECT_GE(ratio, 0.85);
  }
}

TEST(TasksetGenTest, TopologiesSelectable) {
  Rng rng(5);
  TaskSetParams p;
  p.num_tasks = 5;
  p.topology = DagTopology::kForkJoin;
  TaskSystem sys = generate_task_system(rng, p);
  for (const auto& t : sys) {
    std::size_t sources = 0;
    for (std::size_t v = 0; v < t.graph().num_vertices(); ++v) {
      if (t.graph().in_degree(static_cast<VertexId>(v)) == 0) ++sources;
    }
    EXPECT_EQ(sources, 1u) << "fork-join graphs have a unique source";
  }
  EXPECT_STREQ(to_string(DagTopology::kLayered), "layered");
  EXPECT_STREQ(to_string(DagTopology::kForkJoin), "fork-join");
  EXPECT_STREQ(to_string(DagTopology::kMixed), "mixed");
}

TEST(TasksetGenTest, DeterministicGivenSeed) {
  TaskSetParams p;
  p.num_tasks = 6;
  Rng a(42), b(42);
  TaskSystem s1 = generate_task_system(a, p);
  TaskSystem s2 = generate_task_system(b, p);
  ASSERT_EQ(s1.size(), s2.size());
  for (std::size_t i = 0; i < s1.size(); ++i) {
    EXPECT_EQ(s1[i].vol(), s2[i].vol());
    EXPECT_EQ(s1[i].len(), s2[i].len());
    EXPECT_EQ(s1[i].deadline(), s2[i].deadline());
    EXPECT_EQ(s1[i].period(), s2[i].period());
  }
}

TEST(TasksetGenTest, HighUtilizationYieldsHighDensityTasks) {
  Rng rng(6);
  TaskSetParams p;
  p.num_tasks = 4;
  p.total_utilization = 6.0;
  p.utilization_cap = 3.0;
  int saw_high = 0;
  for (int trial = 0; trial < 20; ++trial) {
    TaskSystem sys = generate_task_system(rng, p);
    if (!sys.high_density_tasks().empty()) ++saw_high;
  }
  EXPECT_GT(saw_high, 10) << "U/n = 1.5 per task should often exceed δ = 1";
}

TEST(TasksetGenTest, ValidatesParameters) {
  Rng rng(7);
  TaskSetParams p;
  p.num_tasks = 0;
  EXPECT_THROW(generate_task_system(rng, p), ContractViolation);
  p = {};
  p.deadline_ratio_max = 1.5;
  EXPECT_THROW(generate_task_system(rng, p), ContractViolation);
  p = {};
  p.period_max = p.period_min - 1;
  EXPECT_THROW(generate_task_system(rng, p), ContractViolation);
}

}  // namespace
}  // namespace fedcons
