// Tests for DagTask: metrics, classification, scaling, and the paper's
// Example 1 (Figure 1) — experiment E1's analytical half.
#include "fedcons/core/dag_task.h"

#include <gtest/gtest.h>

#include "fedcons/core/builders.h"
#include "fedcons/util/check.h"

namespace fedcons {
namespace {

DagTask simple_task(Time wcet, Time deadline, Time period) {
  Dag g;
  g.add_vertex(wcet);
  return DagTask(std::move(g), deadline, period);
}

TEST(DagTaskTest, ConstructionValidation) {
  Dag g;
  EXPECT_THROW(DagTask(g, 1, 1), ContractViolation);  // empty graph
  g.add_vertex(1);
  EXPECT_THROW(DagTask(g, 0, 1), ContractViolation);
  EXPECT_THROW(DagTask(g, 1, 0), ContractViolation);
  Dag cyc;
  cyc.add_vertex(1);
  cyc.add_vertex(1);
  cyc.add_edge(0, 1);
  cyc.add_edge(1, 0);
  EXPECT_THROW(DagTask(cyc, 1, 1), ContractViolation);
}

TEST(DagTaskTest, PaperExample1Metrics) {
  // Paper, Example 1: len=6, vol=9, δ=9/16, u=9/20, low-density.
  DagTask t = make_paper_example_task();
  EXPECT_EQ(t.graph().num_vertices(), 5u);
  EXPECT_EQ(t.graph().num_edges(), 5u);
  EXPECT_EQ(t.vol(), 9);
  EXPECT_EQ(t.len(), 6);
  EXPECT_EQ(t.deadline(), 16);
  EXPECT_EQ(t.period(), 20);
  EXPECT_EQ(t.density(), make_ratio(9, 16));
  EXPECT_EQ(t.utilization(), make_ratio(9, 20));
  EXPECT_TRUE(t.is_low_density());
  EXPECT_FALSE(t.is_high_utilization());
  EXPECT_EQ(t.deadline_class(), DeadlineClass::kConstrained);
  EXPECT_TRUE(t.critical_path_feasible());
}

TEST(DagTaskTest, DensityUsesMinOfDeadlineAndPeriod) {
  // Constrained: min(D,T) = D.
  DagTask c = simple_task(6, 10, 20);
  EXPECT_EQ(c.density(), make_ratio(6, 10));
  // Arbitrary-deadline: min(D,T) = T.
  DagTask a = simple_task(6, 30, 20);
  EXPECT_EQ(a.density(), make_ratio(6, 20));
  EXPECT_EQ(a.deadline_class(), DeadlineClass::kArbitrary);
}

TEST(DagTaskTest, HighDensityBoundaryIsExact) {
  EXPECT_TRUE(simple_task(10, 10, 20).is_high_density());   // δ == 1
  EXPECT_FALSE(simple_task(9, 10, 20).is_high_density());   // δ < 1
  EXPECT_TRUE(simple_task(11, 10, 20).is_high_density());   // δ > 1
}

TEST(DagTaskTest, HighUtilizationBoundaryIsExact) {
  EXPECT_TRUE(simple_task(20, 20, 20).is_high_utilization());
  EXPECT_FALSE(simple_task(19, 20, 20).is_high_utilization());
}

TEST(DagTaskTest, DeadlineClasses) {
  EXPECT_EQ(simple_task(1, 10, 10).deadline_class(), DeadlineClass::kImplicit);
  EXPECT_EQ(simple_task(1, 5, 10).deadline_class(),
            DeadlineClass::kConstrained);
  EXPECT_EQ(simple_task(1, 15, 10).deadline_class(),
            DeadlineClass::kArbitrary);
  EXPECT_STREQ(to_string(DeadlineClass::kImplicit), "implicit");
  EXPECT_STREQ(to_string(DeadlineClass::kConstrained), "constrained");
  EXPECT_STREQ(to_string(DeadlineClass::kArbitrary), "arbitrary");
}

TEST(DagTaskTest, ToSequentialCollapsesVolume) {
  DagTask t = make_paper_example_task();
  SporadicTask s = t.to_sequential();
  EXPECT_EQ(s.wcet, 9);
  EXPECT_EQ(s.deadline, 16);
  EXPECT_EQ(s.period, 20);
  EXPECT_EQ(s.density(), t.density());
  EXPECT_EQ(s.utilization(), t.utilization());
}

TEST(DagTaskTest, CriticalPathFeasibility) {
  EXPECT_TRUE(simple_task(5, 5, 10).critical_path_feasible());
  EXPECT_FALSE(simple_task(6, 5, 10).critical_path_feasible());
}

TEST(DagTaskTest, ScaledBySpeedHalvesWork) {
  DagTask t = make_paper_example_task();
  DagTask fast = t.scaled_by_speed(2.0);
  // WCETs {1,2,3,2,1} → {1,1,2,1,1}: vol 6.
  EXPECT_EQ(fast.vol(), 6);
  EXPECT_EQ(fast.deadline(), t.deadline());
  EXPECT_EQ(fast.period(), t.period());
  EXPECT_EQ(fast.graph().num_edges(), t.graph().num_edges());
}

TEST(DagTaskTest, ScaledBySpeedKeepsMinimumUnit) {
  DagTask t = simple_task(1, 10, 10);
  EXPECT_EQ(t.scaled_by_speed(100.0).vol(), 1);  // never below 1 tick
}

TEST(DagTaskTest, ScaledBySpeedOneIsIdentityOnWcets) {
  DagTask t = make_paper_example_task();
  DagTask same = t.scaled_by_speed(1.0);
  EXPECT_EQ(same.vol(), t.vol());
  EXPECT_EQ(same.len(), t.len());
}

TEST(DagTaskTest, ScaledBySpeedRejectsNonPositive) {
  DagTask t = make_paper_example_task();
  EXPECT_THROW(t.scaled_by_speed(0.0), ContractViolation);
  EXPECT_THROW(t.scaled_by_speed(-1.0), ContractViolation);
}

TEST(DagTaskTest, SequentialTaskValidation) {
  EXPECT_THROW(SporadicTask(0, 1, 1), ContractViolation);
  EXPECT_THROW(SporadicTask(1, 0, 1), ContractViolation);
  EXPECT_THROW(SporadicTask(1, 1, 0), ContractViolation);
  SporadicTask t(2, 4, 8);
  EXPECT_TRUE(t.is_constrained_deadline());
  EXPECT_FALSE(t.is_implicit_deadline());
  EXPECT_EQ(t.utilization(), make_ratio(1, 4));
  EXPECT_EQ(t.density(), make_ratio(1, 2));
}

}  // namespace
}  // namespace fedcons
