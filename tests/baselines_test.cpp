// Tests for the comparison baselines: global-EDF density test and pure
// partitioned (sequentialized) scheduling.
#include "fedcons/baselines/global_edf.h"
#include "fedcons/baselines/partitioned_seq.h"

#include <gtest/gtest.h>

#include <array>

#include "fedcons/core/builders.h"
#include "fedcons/federated/fedcons_algorithm.h"
#include "fedcons/gen/taskset_gen.h"
#include "fedcons/util/check.h"
#include "fedcons/util/rng.h"

namespace fedcons {
namespace {

DagTask simple_task(Time wcet, Time deadline, Time period) {
  Dag g;
  g.add_vertex(wcet);
  return DagTask(std::move(g), deadline, period);
}

TEST(GedfDagDensityTest, EmptyAccepted) {
  EXPECT_TRUE(gedf_dag_density_test(TaskSystem{}, 2));
  EXPECT_THROW(gedf_dag_density_test(TaskSystem{}, 0), ContractViolation);
}

TEST(GedfDagDensityTest, CriticalPathGate) {
  TaskSystem sys;
  std::array<Time, 3> w{4, 4, 4};
  sys.add(DagTask(make_chain(w), 10, 30));  // len 12 > D 10
  EXPECT_FALSE(gedf_dag_density_test(sys, 16));
}

TEST(GedfDagDensityTest, DensityBound) {
  TaskSystem sys;
  sys.add(simple_task(5, 10, 10));  // δ = 1/2
  sys.add(simple_task(5, 10, 10));
  sys.add(simple_task(5, 10, 10));
  // Σδ = 3/2 ≤ 2 − 1·(1/2) = 3/2 on m = 2: accept at the boundary.
  EXPECT_TRUE(gedf_dag_density_test(sys, 2));
  sys.add(simple_task(1, 100, 100));
  EXPECT_FALSE(gedf_dag_density_test(sys, 2));
}

TEST(PartitionedSeqTest, HighDensityTaskStructurallyRejected) {
  // vol > D makes a sequentialized task unplaceable on any single processor
  // — exactly the federation gap the paper motivates.
  TaskSystem sys;
  std::array<Time, 6> w{1, 1, 1, 1, 1, 1};
  sys.add(DagTask(make_independent(w), 3, 12));  // vol 6 > D 3, len 1
  EXPECT_FALSE(partitioned_sequential_schedulable(sys, 64));
  // FEDCONS handles it with a 2-processor cluster.
  EXPECT_TRUE(fedcons_schedulable(sys, 2));
}

TEST(PartitionedSeqTest, LowDensityOnlySystemsMatchFedcons) {
  // With no high-density tasks FEDCONS degenerates to PARTITION, so the two
  // verdicts coincide on every system and platform size.
  Rng rng(17);
  TaskSetParams params;
  params.num_tasks = 6;
  params.total_utilization = 2.0;
  params.utilization_cap = 0.9;  // keeps every task low-density
  params.deadline_ratio_min = 0.8;
  for (int trial = 0; trial < 30; ++trial) {
    TaskSystem sys = generate_task_system(rng, params);
    bool all_low = sys.high_density_tasks().empty();
    if (!all_low) continue;
    for (int m : {2, 3, 4}) {
      EXPECT_EQ(partitioned_sequential_schedulable(sys, m),
                fedcons_schedulable(sys, m));
    }
  }
}

TEST(PartitionedSeqTest, SimpleAcceptance) {
  TaskSystem sys;
  sys.add(simple_task(6, 10, 20));
  sys.add(simple_task(6, 10, 20));
  EXPECT_TRUE(partitioned_sequential_schedulable(sys, 2));
  EXPECT_FALSE(partitioned_sequential_schedulable(sys, 1));
  EXPECT_THROW(partitioned_sequential_schedulable(sys, 0),
               ContractViolation);
}

}  // namespace
}  // namespace fedcons
