// Tests for empirical speedup measurement.
#include "fedcons/federated/speedup.h"

#include <gtest/gtest.h>

#include "fedcons/analysis/edf_uniproc.h"
#include "fedcons/core/builders.h"
#include "fedcons/federated/fedcons_algorithm.h"
#include "fedcons/util/check.h"

namespace fedcons {
namespace {

DagTask simple_task(Time wcet, Time deadline, Time period) {
  Dag g;
  g.add_vertex(wcet);
  return DagTask(std::move(g), deadline, period);
}

AcceptanceTest fedcons_test() {
  return [](const TaskSystem& s, int m) { return fedcons_schedulable(s, m); };
}

TEST(SpeedupBoundTest, TheoremOneFormula) {
  EXPECT_DOUBLE_EQ(fedcons_speedup_bound(1), 2.0);
  EXPECT_DOUBLE_EQ(fedcons_speedup_bound(2), 2.5);
  EXPECT_DOUBLE_EQ(fedcons_speedup_bound(4), 2.75);
}

TEST(MinSpeedTest, AlreadySchedulableReturnsOne) {
  TaskSystem sys;
  sys.add(simple_task(1, 10, 10));
  auto s = min_speed(sys, 1, fedcons_test());
  ASSERT_TRUE(s.has_value());
  EXPECT_DOUBLE_EQ(*s, 1.0);
}

TEST(MinSpeedTest, NeverSchedulableReturnsNullopt) {
  // len > D cannot be fixed by the integer speed model: a 1-tick vertex
  // chain longer than D keeps len > D at any speed (⌈1/s⌉ = 1).
  Dag g;
  VertexId prev = g.add_vertex(1);
  for (int i = 0; i < 10; ++i) {
    VertexId v = g.add_vertex(1);
    g.add_edge(prev, v);
    prev = v;
  }
  TaskSystem sys;
  sys.add(DagTask(std::move(g), 5, 20));
  EXPECT_FALSE(min_speed(sys, 4, fedcons_test()).has_value());
}

TEST(MinSpeedTest, TwiceTooMuchWorkNeedsSpeedTwo) {
  // One task with vol = 2D on one processor: accepted exactly when WCETs
  // halve, i.e. at s ≈ 2.
  TaskSystem sys;
  sys.add(simple_task(200, 100, 100));
  auto s = min_speed(sys, 1, fedcons_test(), 8.0, 1.0 / 64.0);
  ASSERT_TRUE(s.has_value());
  EXPECT_GE(*s, 2.0 - 1.0 / 32.0);
  EXPECT_LE(*s, 2.0 + 1.0 / 16.0);
}

TEST(MinSpeedTest, ReturnedSpeedIsActuallyAccepted) {
  TaskSystem sys;
  sys.add(simple_task(150, 100, 100));
  sys.add(simple_task(30, 60, 120));
  auto s = min_speed(sys, 1, fedcons_test());
  ASSERT_TRUE(s.has_value());
  EXPECT_TRUE(fedcons_schedulable(sys.scaled_by_speed(*s), 1));
}

TEST(MinSpeedTest, ValidatesArguments) {
  TaskSystem sys;
  sys.add(simple_task(1, 10, 10));
  EXPECT_THROW(min_speed(sys, 0, fedcons_test()), ContractViolation);
  EXPECT_THROW(min_speed(sys, 1, fedcons_test(), 0.5), ContractViolation);
  EXPECT_THROW(min_speed(sys, 1, fedcons_test(), 8.0, 0.0),
               ContractViolation);
}

TEST(MinSpeedTest, Example2RequiredSpeedGrowsLinearly) {
  // The paper's Example 2 at tick granularity K: n tasks (C=K, D=K, T=nK)
  // on ONE processor need speed ≈ n under exact EDF — the capacity
  // augmentation divergence, measured (experiment E2's analytical core).
  const Time k = 64;
  AcceptanceTest uniproc_edf = [](const TaskSystem& s, int m) {
    if (m != 1) return false;
    std::vector<SporadicTask> seq;
    for (const auto& t : s) seq.push_back(t.to_sequential());
    return edf_schedulable(seq);
  };
  double prev_speed = 0.0;
  for (int n : {2, 3, 4}) {
    TaskSystem sys;
    for (int i = 0; i < n; ++i) {
      Dag g;
      g.add_vertex(k);
      sys.add(DagTask(std::move(g), k, n * k));
    }
    auto s = min_speed(sys, 1, uniproc_edf, 8.0, 1.0 / 64.0);
    ASSERT_TRUE(s.has_value()) << "n = " << n;
    EXPECT_GT(*s, static_cast<double>(n) - 0.25);
    EXPECT_LT(*s, static_cast<double>(n) + 0.25);
    EXPECT_GT(*s, prev_speed);
    prev_speed = *s;
  }
}

}  // namespace
}  // namespace fedcons
