// Minimal recursive-descent JSON parser for schema assertions in tests.
//
// The repo's report writers emit JSON by hand (deterministic bytes, no
// dependency); the tests on this side need the inverse — enough of a parser
// to assert structure ("every traceEvents element has ph/pid/tid/name/cat/
// ts/dur", "schema_version == 1") without adding a library dependency.
// Supports the full JSON grammar the writers use: objects, arrays, strings
// with \"\\nt escapes, integers/decimals (incl. negative), true/false/null.
// Throws std::runtime_error with position info on malformed input, so a
// writer regression fails loudly.
#pragma once

#include <cstddef>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

namespace fedcons {
namespace testjson {

struct Value;
using ValuePtr = std::shared_ptr<Value>;

struct Value {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<ValuePtr> array;
  std::map<std::string, ValuePtr> object;

  [[nodiscard]] bool is_object() const { return kind == Kind::kObject; }
  [[nodiscard]] bool is_array() const { return kind == Kind::kArray; }
  [[nodiscard]] bool is_number() const { return kind == Kind::kNumber; }
  [[nodiscard]] bool is_string() const { return kind == Kind::kString; }
  [[nodiscard]] bool has(const std::string& key) const {
    return is_object() && object.count(key) != 0;
  }
  /// Object member access; throws when absent (schema assertion failure).
  [[nodiscard]] const Value& at(const std::string& key) const {
    if (!is_object()) throw std::runtime_error("not an object");
    auto it = object.find(key);
    if (it == object.end()) throw std::runtime_error("missing key: " + key);
    return *it->second;
  }
};

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  ValuePtr parse() {
    ValuePtr v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& why) const {
    throw std::runtime_error("JSON error at offset " + std::to_string(pos_) +
                             ": " + why);
  }
  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\n' || text_[pos_] == '\t' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }
  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }
  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }
  bool consume_literal(const char* lit) {
    std::size_t n = 0;
    while (lit[n] != '\0') ++n;
    if (text_.compare(pos_, n, lit) != 0) return false;
    pos_ += n;
    return true;
  }

  ValuePtr parse_value() {
    skip_ws();
    switch (peek()) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': {
        auto v = std::make_shared<Value>();
        v->kind = Value::Kind::kString;
        v->string = parse_string();
        return v;
      }
      case 't':
      case 'f': {
        auto v = std::make_shared<Value>();
        v->kind = Value::Kind::kBool;
        if (consume_literal("true")) {
          v->boolean = true;
        } else if (consume_literal("false")) {
          v->boolean = false;
        } else {
          fail("bad literal");
        }
        return v;
      }
      case 'n': {
        if (!consume_literal("null")) fail("bad literal");
        return std::make_shared<Value>();
      }
      default: return parse_number();
    }
  }

  ValuePtr parse_object() {
    expect('{');
    auto v = std::make_shared<Value>();
    v->kind = Value::Kind::kObject;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    for (;;) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      v->object[key] = parse_value();
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  ValuePtr parse_array() {
    expect('[');
    auto v = std::make_shared<Value>();
    v->kind = Value::Kind::kArray;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    for (;;) {
      v->array.push_back(parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      char c = peek();
      ++pos_;
      if (c == '"') return out;
      if (c == '\\') {
        char esc = peek();
        ++pos_;
        switch (esc) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'n': out += '\n'; break;
          case 't': out += '\t'; break;
          case 'r': out += '\r'; break;
          default: fail("unsupported escape");
        }
        continue;
      }
      out += c;
    }
  }

  ValuePtr parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           ((text_[pos_] >= '0' && text_[pos_] <= '9') || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E' || text_[pos_] == '+' ||
            text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) fail("expected a value");
    auto v = std::make_shared<Value>();
    v->kind = Value::Kind::kNumber;
    try {
      v->number = std::stod(text_.substr(start, pos_ - start));
    } catch (const std::exception&) {
      fail("bad number: " + text_.substr(start, pos_ - start));
    }
    return v;
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

/// Parse or throw std::runtime_error.
inline ValuePtr parse(const std::string& text) { return Parser(text).parse(); }

}  // namespace testjson
}  // namespace fedcons
