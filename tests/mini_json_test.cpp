// Tests for the mini_json dialect helpers — in particular the strict numeric
// conversions. strtoll with no endptr/errno check silently saturates
// overflow to INT64_MAX and turns garbage into 0; both corpus artifacts and
// the serve request decoder parse through these helpers, so every such
// failure must be a loud ParseError.
#include "fedcons/util/mini_json.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <string>

namespace fedcons {
namespace {

TEST(MiniJsonTest, ParsesFlatAndNestedObjects) {
  const auto fields = parse_mini_json(
      R"({"a": 1, "b": "two", "c": {"d": 3, "e": "four"}})");
  EXPECT_EQ(fields.at("a"), "1");
  EXPECT_EQ(fields.at("b"), "two");
  EXPECT_EQ(fields.at("c.d"), "3");
  EXPECT_EQ(fields.at("c.e"), "four");
}

TEST(MiniJsonTest, EscapeRoundTrips) {
  const std::string raw = "line\none\ttab \"quote\" back\\slash\r";
  const auto fields =
      parse_mini_json("{\"k\": \"" + json_escape(raw) + "\"}");
  EXPECT_EQ(fields.at("k"), raw);
}

TEST(MiniJsonTest, IntRoundTripsAtInt64Extremes) {
  const std::int64_t max = std::numeric_limits<std::int64_t>::max();
  const std::int64_t min = std::numeric_limits<std::int64_t>::min();
  EXPECT_EQ(mini_json_int(std::to_string(max)), max);
  EXPECT_EQ(mini_json_int(std::to_string(max - 1)), max - 1);
  EXPECT_EQ(mini_json_int(std::to_string(min)), min);
  EXPECT_EQ(mini_json_int("0"), 0);
  EXPECT_EQ(mini_json_int("-42"), -42);
}

TEST(MiniJsonTest, IntOverflowThrowsInsteadOfSaturating) {
  // INT64_MAX + 1: the old strtoll path returned INT64_MAX silently.
  EXPECT_THROW(mini_json_int("9223372036854775808"), ParseError);
  EXPECT_THROW(mini_json_int("-9223372036854775809"), ParseError);
  EXPECT_THROW(mini_json_int("99999999999999999999999"), ParseError);
}

TEST(MiniJsonTest, IntGarbageThrowsInsteadOfZero) {
  EXPECT_THROW(mini_json_int(""), ParseError);
  EXPECT_THROW(mini_json_int("abc"), ParseError);
  EXPECT_THROW(mini_json_int("12abc"), ParseError);
  EXPECT_THROW(mini_json_int("1.5"), ParseError);
  EXPECT_THROW(mini_json_int("1e3"), ParseError);
  EXPECT_THROW(mini_json_int(" 1"), ParseError);
}

TEST(MiniJsonTest, UintRoundTripsAtUint64Extremes) {
  const std::uint64_t max = std::numeric_limits<std::uint64_t>::max();
  EXPECT_EQ(mini_json_uint(std::to_string(max)), max);
  EXPECT_EQ(mini_json_uint(std::to_string(max - 1)), max - 1);
  EXPECT_EQ(mini_json_uint("0"), 0u);
}

TEST(MiniJsonTest, UintRejectsOverflowSignsAndGarbage) {
  // UINT64_MAX + 1 must not wrap to 0.
  EXPECT_THROW(mini_json_uint("18446744073709551616"), ParseError);
  // strtoull accepts "-5" and wraps it to 2^64-5; an unsigned field is
  // digits only.
  EXPECT_THROW(mini_json_uint("-5"), ParseError);
  EXPECT_THROW(mini_json_uint("+5"), ParseError);
  EXPECT_THROW(mini_json_uint(""), ParseError);
  EXPECT_THROW(mini_json_uint("7x"), ParseError);
}

TEST(MiniJsonTest, MalformedDocumentsThrow) {
  EXPECT_THROW(parse_mini_json(""), ParseError);
  EXPECT_THROW(parse_mini_json("{\"a\": 1"), ParseError);
  EXPECT_THROW(parse_mini_json("{\"a\": 1} trailing"), ParseError);
  EXPECT_THROW(parse_mini_json("{\"a\": {\"b\": {\"c\": 1}}}"), ParseError);
  EXPECT_THROW(parse_mini_json("{\"a\": [1, 2]}"), ParseError);
}

}  // namespace
}  // namespace fedcons
