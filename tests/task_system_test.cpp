// Tests for TaskSystem aggregates and classification.
#include "fedcons/core/task_system.h"

#include <gtest/gtest.h>

#include "fedcons/core/builders.h"
#include "fedcons/util/check.h"

namespace fedcons {
namespace {

DagTask simple_task(Time wcet, Time deadline, Time period,
                    std::string name = {}) {
  Dag g;
  g.add_vertex(wcet);
  return DagTask(std::move(g), deadline, period, std::move(name));
}

TEST(TaskSystemTest, EmptySystem) {
  TaskSystem sys;
  EXPECT_TRUE(sys.empty());
  EXPECT_EQ(sys.size(), 0u);
  EXPECT_EQ(sys.total_utilization(), BigRational(0));
  EXPECT_EQ(sys.deadline_class(), DeadlineClass::kImplicit);
  EXPECT_TRUE(sys.all_critical_paths_feasible());
  EXPECT_THROW(sys[0], ContractViolation);
}

TEST(TaskSystemTest, AggregateUtilization) {
  TaskSystem sys;
  sys.add(simple_task(1, 4, 4));   // u = 1/4
  sys.add(simple_task(1, 2, 2));   // u = 1/2
  sys.add(simple_task(3, 12, 12)); // u = 1/4
  EXPECT_EQ(sys.total_utilization(), BigRational(1));
  EXPECT_NEAR(sys.total_utilization_approx(), 1.0, 1e-12);
}

TEST(TaskSystemTest, AggregateDensity) {
  TaskSystem sys;
  sys.add(simple_task(1, 2, 4));  // δ = 1/2
  sys.add(simple_task(1, 4, 4));  // δ = 1/4
  EXPECT_EQ(sys.total_density(), make_ratio(3, 4));
}

TEST(TaskSystemTest, DeadlineClassAggregation) {
  TaskSystem implicit;
  implicit.add(simple_task(1, 10, 10));
  EXPECT_EQ(implicit.deadline_class(), DeadlineClass::kImplicit);

  TaskSystem constrained;
  constrained.add(simple_task(1, 10, 10));
  constrained.add(simple_task(1, 5, 10));
  EXPECT_EQ(constrained.deadline_class(), DeadlineClass::kConstrained);

  TaskSystem arbitrary;
  arbitrary.add(simple_task(1, 5, 10));
  arbitrary.add(simple_task(1, 20, 10));
  EXPECT_EQ(arbitrary.deadline_class(), DeadlineClass::kArbitrary);
}

TEST(TaskSystemTest, HighLowSplitIsPartition) {
  TaskSystem sys;
  sys.add(simple_task(10, 10, 20));  // δ = 1: high
  sys.add(simple_task(1, 10, 20));   // δ = 1/10: low
  sys.add(simple_task(30, 10, 30));  // δ = 3: high
  auto high = sys.high_density_tasks();
  auto low = sys.low_density_tasks();
  EXPECT_EQ(high, (std::vector<TaskId>{0, 2}));
  EXPECT_EQ(low, (std::vector<TaskId>{1}));
  EXPECT_EQ(high.size() + low.size(), sys.size());
}

TEST(TaskSystemTest, CriticalPathFeasibility) {
  TaskSystem sys;
  sys.add(simple_task(5, 5, 10));
  EXPECT_TRUE(sys.all_critical_paths_feasible());
  sys.add(simple_task(6, 5, 10));
  EXPECT_FALSE(sys.all_critical_paths_feasible());
}

TEST(TaskSystemTest, ScaledBySpeed) {
  TaskSystem sys;
  sys.add(simple_task(8, 10, 10));
  sys.add(simple_task(4, 10, 10));
  TaskSystem fast = sys.scaled_by_speed(2.0);
  ASSERT_EQ(fast.size(), 2u);
  EXPECT_EQ(fast[0].vol(), 4);
  EXPECT_EQ(fast[1].vol(), 2);
}

TEST(TaskSystemTest, SummaryMentionsTasks) {
  TaskSystem sys;
  sys.add(simple_task(10, 10, 20, "hot"));
  sys.add(simple_task(1, 10, 20));
  std::string s = sys.summary();
  EXPECT_NE(s.find("2 tasks"), std::string::npos);
  EXPECT_NE(s.find("hot"), std::string::npos);
  EXPECT_NE(s.find("[HIGH]"), std::string::npos);
  EXPECT_NE(s.find("[low]"), std::string::npos);
}

TEST(TaskSystemTest, CapacityAugmentationExample) {
  // Paper, Example 2: n tasks, each (C=1, D=1, T=n).
  const int n = 5;
  TaskSystem sys = make_capacity_augmentation_counterexample(n);
  ASSERT_EQ(sys.size(), 5u);
  for (const auto& t : sys) {
    EXPECT_EQ(t.vol(), 1);
    EXPECT_EQ(t.deadline(), 1);
    EXPECT_EQ(t.period(), n);
    EXPECT_TRUE(t.is_high_density());  // δ = 1
    EXPECT_TRUE(t.critical_path_feasible());
  }
  // U_sum = n · (1/n) = 1.
  EXPECT_EQ(sys.total_utilization(), BigRational(1));
}

TEST(TaskSystemTest, RangeIteration) {
  TaskSystem sys;
  sys.add(simple_task(1, 2, 3));
  sys.add(simple_task(2, 3, 4));
  Time vols = 0;
  for (const auto& t : sys) vols += t.vol();
  EXPECT_EQ(vols, 3);
}

}  // namespace
}  // namespace fedcons
