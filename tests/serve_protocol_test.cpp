// Wire-protocol tests for the fedcons_serve frame codec and request/response
// grammar. The framing contract under test: length-prefixed newline-JSON is
// self-delimiting under arbitrary byte fragmentation, framing errors are
// unrecoverable (ParseError from the decoder), and request-level errors are
// loud — the strict mini_json conversions turn trailing garbage and
// overflowing integers into ParseError, never silent zeros or saturations.
#include "fedcons/serve/protocol.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "fedcons/util/parse_error.h"

namespace fedcons {
namespace serve {
namespace {

// ---- framing ---------------------------------------------------------------

TEST(ServeFrameTest, EncodeProducesLengthPrefixAndTrailingNewline) {
  EXPECT_EQ(encode_frame("{}"), "2\n{}\n");
  EXPECT_EQ(encode_frame(""), "0\n\n");
}

TEST(ServeFrameTest, DecoderRoundTripsMultipleFrames) {
  const std::string wire =
      encode_frame("{\"a\": 1}") + encode_frame("{\"b\": 2}");
  FrameDecoder decoder;
  decoder.feed(wire.data(), wire.size());
  std::string payload;
  ASSERT_TRUE(decoder.next(payload));
  EXPECT_EQ(payload, "{\"a\": 1}");
  ASSERT_TRUE(decoder.next(payload));
  EXPECT_EQ(payload, "{\"b\": 2}");
  EXPECT_FALSE(decoder.next(payload));
  EXPECT_EQ(decoder.pending_bytes(), 0u);
}

TEST(ServeFrameTest, DecoderHandlesBytewiseFeed) {
  const std::string wire = encode_frame("{\"op\": \"ping\", \"seq\": 7}");
  FrameDecoder decoder;
  std::string payload;
  for (std::size_t i = 0; i + 1 < wire.size(); ++i) {
    decoder.feed(&wire[i], 1);
    EXPECT_FALSE(decoder.next(payload)) << "complete at byte " << i;
  }
  decoder.feed(&wire[wire.size() - 1], 1);
  ASSERT_TRUE(decoder.next(payload));
  EXPECT_EQ(payload, "{\"op\": \"ping\", \"seq\": 7}");
}

TEST(ServeFrameTest, PayloadMayContainNewlines) {
  // The length prefix, not a separator scan, delimits the frame: embedded
  // newlines (escaped task-system text contains them) must pass through.
  const std::string payload = "{\"system\": \"line1\nline2\n\"}";
  const std::string wire = encode_frame(payload);
  FrameDecoder decoder;
  decoder.feed(wire.data(), wire.size());
  std::string out;
  ASSERT_TRUE(decoder.next(out));
  EXPECT_EQ(out, payload);
}

TEST(ServeFrameTest, GarbageLengthPrefixThrows) {
  FrameDecoder decoder;
  const std::string wire = "12x\n{}\n";
  decoder.feed(wire.data(), wire.size());
  std::string payload;
  EXPECT_THROW(decoder.next(payload), ParseError);
}

TEST(ServeFrameTest, OversizedLengthPrefixThrows) {
  FrameDecoder decoder(/*max_frame_bytes=*/64);
  const std::string wire = "65\n";
  decoder.feed(wire.data(), wire.size());
  std::string payload;
  EXPECT_THROW(decoder.next(payload), ParseError);
}

TEST(ServeFrameTest, OverflowingLengthPrefixThrows) {
  FrameDecoder decoder;
  const std::string wire = "99999999999999999999999999\n";
  decoder.feed(wire.data(), wire.size());
  std::string payload;
  EXPECT_THROW(decoder.next(payload), ParseError);
}

TEST(ServeFrameTest, UnterminatedLongPrefixFailsEarly) {
  // A run of digits longer than any valid length prefix can never become a
  // frame; the decoder must not buffer it forever waiting for a newline.
  FrameDecoder decoder;
  const std::string wire(32, '1');
  decoder.feed(wire.data(), wire.size());
  std::string payload;
  EXPECT_THROW(decoder.next(payload), ParseError);
}

TEST(ServeFrameTest, LengthDesyncThrows) {
  // Prefix says 2 bytes but the payload runs longer: the byte where the
  // trailing newline must sit is not one, which is exactly how a corrupted
  // length manifests.
  FrameDecoder decoder;
  const std::string wire = "2\n{\"a\": 1}\n";
  decoder.feed(wire.data(), wire.size());
  std::string payload;
  EXPECT_THROW(decoder.next(payload), ParseError);
}

TEST(ServeFrameTest, LongLivedStreamCompactsConsumedPrefix) {
  // Push enough frames through one decoder to force the lazy compaction
  // path; every frame must still decode intact.
  FrameDecoder decoder;
  const std::string payload(128, 'x');
  const std::string wire = encode_frame(payload);
  std::string out;
  for (int i = 0; i < 1000; ++i) {
    decoder.feed(wire.data(), wire.size());
    ASSERT_TRUE(decoder.next(out));
    ASSERT_EQ(out, payload);
  }
  EXPECT_EQ(decoder.pending_bytes(), 0u);
}

// ---- requests --------------------------------------------------------------

TEST(ServeRequestTest, RoundTripsEveryOp) {
  std::vector<ServeRequest> reqs;
  {
    ServeRequest r;
    r.op = ServeOp::kOpen;
    r.seq = 1;
    r.m = 8;
    reqs.push_back(r);
  }
  {
    ServeRequest r;
    r.op = ServeOp::kRegister;
    r.seq = 2;
    r.session = 3;
    r.system = "tasks 1\ntask a\n";
    reqs.push_back(r);
  }
  {
    ServeRequest r;
    r.op = ServeOp::kAdmit;
    r.seq = 3;
    r.session = 3;
    r.has_content = true;
    r.content = 5;
    reqs.push_back(r);
  }
  {
    ServeRequest r;
    r.op = ServeOp::kAdmit;
    r.seq = 4;
    r.session = 3;
    r.system = "tasks 1\n";
    reqs.push_back(r);
  }
  {
    ServeRequest r;
    r.op = ServeOp::kRelease;
    r.seq = 5;
    r.session = 3;
    r.release_ids = {7};
    reqs.push_back(r);
  }
  {
    ServeRequest r;
    r.op = ServeOp::kSwap;
    r.seq = 6;
    r.session = 3;
    r.release_ids = {1, 2, 9};
    r.has_content = true;
    r.content = 0;
    reqs.push_back(r);
  }
  {
    ServeRequest r;
    r.op = ServeOp::kQuery;
    r.seq = 7;
    r.session = 3;
    reqs.push_back(r);
  }
  {
    ServeRequest r;
    r.op = ServeOp::kStats;
    r.seq = 8;
    reqs.push_back(r);
  }
  {
    ServeRequest r;
    r.op = ServeOp::kPing;
    r.seq = 9;
    reqs.push_back(r);
  }
  {
    ServeRequest r;
    r.op = ServeOp::kStall;
    r.seq = 10;
    r.stall_us = 1234;
    reqs.push_back(r);
  }
  {
    ServeRequest r;
    r.op = ServeOp::kShutdown;
    r.seq = 11;
    reqs.push_back(r);
  }
  for (const ServeRequest& req : reqs) {
    const ServeRequest back = parse_serve_request(encode_serve_request(req));
    EXPECT_EQ(back.op, req.op) << to_string(req.op);
    EXPECT_EQ(back.seq, req.seq);
    EXPECT_EQ(back.session, req.session);
    EXPECT_EQ(back.m, req.m);
    EXPECT_EQ(back.system, req.system);
    EXPECT_EQ(back.has_content, req.has_content);
    EXPECT_EQ(back.content, req.content);
    EXPECT_EQ(back.release_ids, req.release_ids);
    EXPECT_EQ(back.stall_us, req.stall_us);
  }
}

TEST(ServeRequestTest, UnknownOpThrows) {
  EXPECT_THROW(parse_serve_request(R"({"op": "frobnicate", "seq": 1})"),
               ParseError);
}

TEST(ServeRequestTest, MissingSeqThrows) {
  EXPECT_THROW(parse_serve_request(R"({"op": "ping"})"), ParseError);
}

TEST(ServeRequestTest, GarbageIntegerThrows) {
  // The "--threads=8x" bug class on the wire: a numeric field with trailing
  // garbage must be a loud error, not strtoll's silent prefix parse.
  EXPECT_THROW(parse_serve_request(R"({"op": "ping", "seq": 8x})"),
               ParseError);
  EXPECT_THROW(
      parse_serve_request(R"({"op": "open", "seq": 1, "m": "8 cores"})"),
      ParseError);
}

TEST(ServeRequestTest, OverflowingIntegerThrows) {
  EXPECT_THROW(
      parse_serve_request(
          R"({"op": "ping", "seq": 99999999999999999999999999})"),
      ParseError);
  EXPECT_THROW(
      parse_serve_request(
          R"({"op": "stall", "seq": 1, "us": 18446744073709551617})"),
      ParseError);
}

TEST(ServeRequestTest, OpenValidatesProcessorRange) {
  EXPECT_THROW(parse_serve_request(R"({"op": "open", "seq": 1, "m": 0})"),
               ParseError);
  EXPECT_THROW(parse_serve_request(R"({"op": "open", "seq": 1, "m": -3})"),
               ParseError);
  EXPECT_THROW(
      parse_serve_request(R"({"op": "open", "seq": 1, "m": 1048577})"),
      ParseError);
}

TEST(ServeRequestTest, AdmitNeedsExactlyOneOfSystemContent) {
  EXPECT_THROW(
      parse_serve_request(R"({"op": "admit", "seq": 1, "session": 0})"),
      ParseError);
  EXPECT_THROW(
      parse_serve_request(
          R"({"op": "admit", "seq": 1, "session": 0, "system": "t", )"
          R"("content": 0})"),
      ParseError);
}

// ---- observability fields --------------------------------------------------

TEST(ServeRequestTest, RoundTripsStatsFormatAndSeriesWindow) {
  ServeRequest prom;
  prom.op = ServeOp::kStats;
  prom.seq = 20;
  prom.prometheus = true;
  const ServeRequest prom_back =
      parse_serve_request(encode_serve_request(prom));
  EXPECT_EQ(prom_back.op, ServeOp::kStats);
  EXPECT_TRUE(prom_back.prometheus);

  ServeRequest series;
  series.op = ServeOp::kStatsSeries;
  series.seq = 21;
  series.series_last = 16;
  const ServeRequest series_back =
      parse_serve_request(encode_serve_request(series));
  EXPECT_EQ(series_back.op, ServeOp::kStatsSeries);
  EXPECT_EQ(series_back.series_last, 16u);

  // Omitted window = 0 = the whole ring.
  const ServeRequest whole =
      parse_serve_request(R"({"op": "stats_series", "seq": 22})");
  EXPECT_EQ(whole.series_last, 0u);
}

TEST(ServeRequestTest, StatsFormatRejectsUnknownValues) {
  EXPECT_THROW(
      parse_serve_request(
          R"({"op": "stats", "seq": 1, "format": "openmetrics"})"),
      ParseError);
}

TEST(ServeRequestTest, RoundTripsStageEchoOnAnyOp) {
  ServeRequest req;
  req.op = ServeOp::kPing;
  req.seq = 30;
  req.echo_stages = true;
  const ServeRequest back = parse_serve_request(encode_serve_request(req));
  EXPECT_TRUE(back.echo_stages);
  // Absent flag parses false — stage echo is strictly opt-in per request.
  EXPECT_FALSE(
      parse_serve_request(R"({"op": "ping", "seq": 31})").echo_stages);
}

TEST(ServeResponseTest, RoundTripsStageBreakdown) {
  ServeResponse resp;
  resp.seq = 40;
  resp.has_stages = true;
  resp.stage_queue_us = 12;
  resp.stage_batch_us = 340;
  resp.stage_handle_us = 5;
  const ServeResponse back =
      parse_serve_response(encode_serve_response(resp));
  ASSERT_TRUE(back.has_stages);
  EXPECT_EQ(back.stage_queue_us, 12u);
  EXPECT_EQ(back.stage_batch_us, 340u);
  EXPECT_EQ(back.stage_handle_us, 5u);

  ServeResponse bare;
  bare.seq = 41;
  const ServeResponse bare_back =
      parse_serve_response(encode_serve_response(bare));
  EXPECT_FALSE(bare_back.has_stages);
}

// ---- responses -------------------------------------------------------------

TEST(ServeResponseTest, RoundTripsVerdict) {
  ServeResponse resp;
  resp.status = ServeStatus::kOk;
  resp.seq = 42;
  resp.has_verdict = true;
  resp.applied = true;
  resp.schedulable = true;
  resp.reject = "accepted";
  resp.task_ids = {3, 4};
  resp.residents = 5;
  const ServeResponse back =
      parse_serve_response(encode_serve_response(resp));
  EXPECT_EQ(back.status, ServeStatus::kOk);
  EXPECT_EQ(back.seq, 42u);
  ASSERT_TRUE(back.has_verdict);
  EXPECT_TRUE(back.applied);
  EXPECT_TRUE(back.schedulable);
  EXPECT_EQ(back.reject, "accepted");
  EXPECT_EQ(back.task_ids, (std::vector<SessionTaskId>{3, 4}));
  EXPECT_EQ(back.residents, 5u);
  EXPECT_EQ(back.raw, encode_serve_response(resp));
}

TEST(ServeResponseTest, RoundTripsSessionAndContentHandles) {
  ServeResponse opened;
  opened.seq = 1;
  opened.has_session = true;
  opened.session = 17;
  const ServeResponse open_back =
      parse_serve_response(encode_serve_response(opened));
  ASSERT_TRUE(open_back.has_session);
  EXPECT_EQ(open_back.session, 17u);

  ServeResponse registered;
  registered.seq = 2;
  registered.has_content = true;
  registered.content = 9;
  const ServeResponse reg_back =
      parse_serve_response(encode_serve_response(registered));
  ASSERT_TRUE(reg_back.has_content);
  EXPECT_EQ(reg_back.content, 9u);
}

TEST(ServeResponseTest, RoundTripsErrorAndRetryAfter) {
  ServeResponse err;
  err.status = ServeStatus::kError;
  err.seq = 3;
  err.error = "unknown session 12";
  const ServeResponse err_back =
      parse_serve_response(encode_serve_response(err));
  EXPECT_EQ(err_back.status, ServeStatus::kError);
  EXPECT_EQ(err_back.error, "unknown session 12");

  ServeResponse retry;
  retry.status = ServeStatus::kRetryAfter;
  retry.seq = 4;
  const ServeResponse retry_back =
      parse_serve_response(encode_serve_response(retry));
  EXPECT_EQ(retry_back.status, ServeStatus::kRetryAfter);
  EXPECT_EQ(retry_back.seq, 4u);
}

TEST(ServeResponseTest, ExtraMembersSurviveInRaw) {
  // The stats payload travels as raw spliced members; the parse keeps the
  // full payload for scrape consumers instead of structuring it.
  ServeResponse resp;
  resp.seq = 5;
  resp.extra = ", \"batches\": 12";
  const std::string payload = encode_serve_response(resp);
  EXPECT_NE(payload.find("\"batches\": 12"), std::string::npos);
  const ServeResponse back = parse_serve_response(payload);
  EXPECT_EQ(back.raw, payload);
}

TEST(ServeResponseTest, GarbageStatusThrows) {
  EXPECT_THROW(parse_serve_response(R"({"status": "maybe", "seq": 1})"),
               ParseError);
}

// ---- id lists --------------------------------------------------------------

TEST(ServeIdsTest, JoinSplitRoundTrip) {
  const std::vector<SessionTaskId> ids = {0, 5, 123456789};
  EXPECT_EQ(join_ids(ids), "0 5 123456789");
  EXPECT_EQ(split_ids("0 5 123456789"), ids);
  EXPECT_TRUE(split_ids("").empty());
  EXPECT_EQ(join_ids({}), "");
}

TEST(ServeIdsTest, SplitRejectsGarbage) {
  EXPECT_THROW(split_ids("1 2x 3"), ParseError);
  EXPECT_THROW(split_ids("1 -2"), ParseError);
}

}  // namespace
}  // namespace serve
}  // namespace fedcons
