// Cross-module integration properties — the repository's strongest
// correctness evidence:
//
//  1. ANALYSIS → RUN TIME: every random system FEDCONS accepts survives
//     full-platform simulation (sporadic releases, varying execution times)
//     with zero deadline misses.
//  2. PARTITION → EXACT EDF: every shared processor of an accepted
//     allocation passes the exact uniprocessor EDF test.
//  3. ALGORITHM ORDERING: FEDCONS (DBF*-based) accepts at least the systems
//     the density-based federated adaptation accepts (on low-density-only
//     workloads where both reduce to partitioning).
#include <gtest/gtest.h>

#include <vector>

#include "fedcons/analysis/edf_uniproc.h"
#include "fedcons/federated/federated_implicit.h"
#include "fedcons/gen/taskset_gen.h"
#include "fedcons/sim/system_sim.h"
#include "fedcons/util/rng.h"

namespace fedcons {
namespace {

class IntegrationTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(IntegrationTest, AcceptedSystemsNeverMissInSimulation) {
  Rng rng(GetParam());
  TaskSetParams params;
  params.num_tasks = 6;
  params.total_utilization = 2.5;
  params.utilization_cap = 4.0;
  params.period_min = 20;
  params.period_max = 2000;
  params.topology = DagTopology::kMixed;
  int simulated = 0;
  for (int trial = 0; trial < 30; ++trial) {
    Rng sys_rng = rng.split();
    TaskSystem sys = generate_task_system(sys_rng, params);
    auto alloc = fedcons_schedule(sys, 6);
    if (!alloc.success) continue;
    ++simulated;
    for (auto release : {ReleaseModel::kPeriodic, ReleaseModel::kSporadic}) {
      for (auto exec : {ExecModel::kAlwaysWcet, ExecModel::kUniform}) {
        SimConfig cfg;
        cfg.horizon = 30000;
        cfg.release = release;
        cfg.exec = exec;
        cfg.seed = GetParam() * 1000 + static_cast<std::uint64_t>(trial);
        SystemSimReport rep = simulate_system(sys, alloc, cfg);
        EXPECT_EQ(rep.total.deadline_misses, 0u)
            << "accepted system missed a deadline (trial " << trial
            << ", release " << static_cast<int>(release) << ", exec "
            << static_cast<int>(exec) << ")";
      }
    }
  }
  EXPECT_GT(simulated, 0) << "sweep produced no accepted systems to simulate";
}

TEST_P(IntegrationTest, SharedProcessorsPassExactEdf) {
  Rng rng(GetParam() ^ 0xdead);
  TaskSetParams params;
  params.num_tasks = 8;
  params.total_utilization = 3.0;
  params.utilization_cap = 5.0;
  int checked = 0;
  for (int trial = 0; trial < 30; ++trial) {
    Rng sys_rng = rng.split();
    TaskSystem sys = generate_task_system(sys_rng, params);
    auto alloc = fedcons_schedule(sys, 8);
    if (!alloc.success) continue;
    for (const auto& proc : alloc.shared_assignment) {
      std::vector<SporadicTask> assigned;
      for (TaskId t : proc) assigned.push_back(sys[t].to_sequential());
      EXPECT_TRUE(edf_schedulable(assigned))
          << "a shared processor failed the exact EDF certificate";
      ++checked;
    }
  }
  EXPECT_GT(checked, 0);
}

TEST_P(IntegrationTest, FedconsDominatesDensityBaselineOnLowDensityLoads) {
  Rng rng(GetParam() ^ 0xbeef);
  TaskSetParams params;
  params.num_tasks = 8;
  params.total_utilization = 2.0;
  params.utilization_cap = 0.9;  // low-density only
  params.deadline_ratio_min = 0.6;
  int both = 0, fedcons_only = 0, baseline_only = 0;
  for (int trial = 0; trial < 60; ++trial) {
    Rng sys_rng = rng.split();
    TaskSystem sys = generate_task_system(sys_rng, params);
    if (!sys.high_density_tasks().empty()) continue;
    bool f = fedcons_schedulable(sys, 3);
    bool b = li_federated_constrained_adaptation(sys, 3).success;
    if (f && b) ++both;
    if (f && !b) ++fedcons_only;
    if (!f && b) ++baseline_only;
  }
  // DBF* partitioning is never beaten by per-processor density packing on
  // these workloads in aggregate; individual reversals are possible because
  // the bin-packing orders differ, but they should be rare.
  EXPECT_GE(fedcons_only + both, baseline_only + both);
}

INSTANTIATE_TEST_SUITE_P(Seeds, IntegrationTest,
                         ::testing::Values(71u, 72u, 73u));

}  // namespace
}  // namespace fedcons
