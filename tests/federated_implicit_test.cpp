// Tests for the Li et al. federated baseline and its constrained adaptation.
#include "fedcons/federated/federated_implicit.h"

#include <gtest/gtest.h>

#include <array>

#include "fedcons/core/builders.h"
#include "fedcons/listsched/list_scheduler.h"
#include "fedcons/util/check.h"

namespace fedcons {
namespace {

DagTask simple_task(Time wcet, Time deadline, Time period) {
  Dag g;
  g.add_vertex(wcet);
  return DagTask(std::move(g), deadline, period);
}

TEST(ClosedFormCountTest, Formula) {
  // vol 10, len 2, window 4: ⌈(10−2)/(4−2)⌉ = 4.
  std::array<Time, 4> branches{2, 2, 2, 2};
  DagTask t(make_fork_join(1, branches, 1), 4, 4);
  EXPECT_EQ(t.vol(), 10);
  EXPECT_EQ(t.len(), 4);  // 1 + 2 + 1
  // window 6: ⌈(10−4)/(6−4)⌉ = 3.
  EXPECT_EQ(closed_form_processor_count(t, 6), 3);
  // window 10 = vol: ⌈6/6⌉ = 1.
  EXPECT_EQ(closed_form_processor_count(t, 10), 1);
}

TEST(ClosedFormCountTest, EdgeCases) {
  std::array<Time, 2> w{3, 4};
  DagTask chain(make_chain(w), 7, 10);  // len == vol == 7
  EXPECT_EQ(closed_form_processor_count(chain, 7), 1);   // pure chain fits
  EXPECT_EQ(closed_form_processor_count(chain, 6), -1);  // len > window
  std::array<Time, 2> branches{5, 5};
  DagTask fj(make_fork_join(1, branches, 1), 7, 10);  // len 7, vol 12
  EXPECT_EQ(closed_form_processor_count(fj, 7), -1);  // len == window, vol >
}

TEST(ClosedFormCountTest, GrahamBoundJustifiesTheCount) {
  // For any DAG and window ≥ len: LS on n = ⌈(vol−len)/(w−len)⌉ processors
  // meets the window (makespan ≤ len + (vol−len)/n ≤ w).
  std::array<Time, 5> branches{4, 3, 5, 2, 6};
  Dag g = make_fork_join(2, branches, 1);
  for (Time w = g.len(); w <= g.vol(); ++w) {
    DagTask t(g, w, w);
    int n = closed_form_processor_count(t, w);
    if (n < 0) continue;
    TemplateSchedule s = list_schedule(t.graph(), n);
    EXPECT_LE(s.makespan(), w) << "window " << w << ", n " << n;
  }
}

TEST(LiFederatedTest, RequiresImplicitDeadlines) {
  TaskSystem sys;
  sys.add(simple_task(1, 5, 10));
  EXPECT_THROW(li_federated_implicit(sys, 4), ContractViolation);
}

TEST(LiFederatedTest, ImplicitSystemAccepted) {
  TaskSystem sys;
  // High-utilization: vol 10, len 4, T = D = 4 → wait len ≤ T needed.
  std::array<Time, 4> branches{2, 2, 2, 2};
  sys.add(DagTask(make_fork_join(1, branches, 1), 6, 6));  // vol 10, len 4
  sys.add(simple_task(3, 10, 10));
  sys.add(simple_task(4, 20, 20));
  auto r = li_federated_implicit(sys, 6);
  ASSERT_TRUE(r.success);
  // n_0 = ⌈(10−4)/(6−4)⌉ = 3 dedicated.
  EXPECT_EQ(r.dedicated_processors, 3);
  EXPECT_EQ(r.shared_processors, 3);
}

TEST(LiFederatedTest, FailsWhenDedicatedDemandExceedsPlatform) {
  TaskSystem sys;
  std::array<Time, 8> branches{2, 2, 2, 2, 2, 2, 2, 2};
  sys.add(DagTask(make_fork_join(1, branches, 1), 4, 4));  // vol 18, len 4
  // n = ⌈(18−4)/(4−4)⌉ → len == window with vol > len: reject.
  EXPECT_FALSE(li_federated_implicit(sys, 100).success);
}

TEST(LiFederatedTest, FailurePhaseAttribution) {
  // Dedicated-phase failure: the high task's closed-form count exceeds m.
  TaskSystem heavy;
  std::array<Time, 8> branches{2, 2, 2, 2, 2, 2, 2, 2};
  heavy.add(DagTask(make_fork_join(1, branches, 1), 6, 6));  // n = ⌈14/2⌉ = 7
  auto r1 = li_federated_implicit(heavy, 4);
  EXPECT_FALSE(r1.success);
  EXPECT_EQ(r1.failure, BaselineFailure::kDedicatedPhase);

  // Shared-phase failure: low tasks overflow the remainder.
  TaskSystem low;
  low.add(simple_task(5, 10, 10));
  low.add(simple_task(5, 10, 10));
  low.add(simple_task(5, 10, 10));
  auto r2 = li_federated_implicit(low, 1);
  EXPECT_FALSE(r2.success);
  EXPECT_EQ(r2.failure, BaselineFailure::kSharedPhase);

  // Success reports kNone.
  auto r3 = li_federated_implicit(low, 2);
  EXPECT_TRUE(r3.success);
  EXPECT_EQ(r3.failure, BaselineFailure::kNone);

  EXPECT_STREQ(to_string(BaselineFailure::kNone), "accepted");
  EXPECT_STREQ(to_string(BaselineFailure::kDedicatedPhase),
               "dedicated-phase");
  EXPECT_STREQ(to_string(BaselineFailure::kSharedPhase), "shared-phase");
}

TEST(LiFederatedTest, LowTasksPackByUtilization) {
  TaskSystem sys;
  sys.add(simple_task(5, 10, 10));  // u = 1/2
  sys.add(simple_task(5, 10, 10));
  sys.add(simple_task(5, 10, 10));
  // Three u = 1/2 tasks on 2 shared processors: fits (1/2+1/2 | 1/2).
  EXPECT_TRUE(li_federated_implicit(sys, 2).success);
  // On 1 processor: 3/2 > 1 → fails.
  EXPECT_FALSE(li_federated_implicit(sys, 1).success);
}

TEST(ConstrainedAdaptationTest, UsesDeadlineWindowAndDensity) {
  TaskSystem sys;
  std::array<Time, 4> branches{2, 2, 2, 2};
  // vol 10, len 4, D = 6 < T = 12: δ = 10/6 > 1 → high; n = ⌈6/2⌉ = 3.
  sys.add(DagTask(make_fork_join(1, branches, 1), 6, 12));
  sys.add(simple_task(2, 4, 16));   // δ = 1/2
  sys.add(simple_task(3, 6, 16));   // δ = 1/2
  auto r = li_federated_constrained_adaptation(sys, 4);
  ASSERT_TRUE(r.success);
  EXPECT_EQ(r.dedicated_processors, 3);
  EXPECT_EQ(r.shared_processors, 1);  // 1/2 + 1/2 = 1 fits one processor
}

TEST(ConstrainedAdaptationTest, DensityPackingIsConservative) {
  TaskSystem sys;
  sys.add(simple_task(1, 1, 3));
  sys.add(simple_task(1, 2, 3));
  sys.add(simple_task(1, 3, 3));
  // Σδ = 1 + 1/2 + 1/3 > 1 → the density-based baseline needs 2 processors…
  EXPECT_FALSE(li_federated_constrained_adaptation(sys, 1).success);
  EXPECT_TRUE(li_federated_constrained_adaptation(sys, 2).success);
}

TEST(ConstrainedAdaptationTest, RejectsArbitraryDeadlines) {
  TaskSystem sys;
  sys.add(simple_task(1, 20, 10));
  EXPECT_THROW(li_federated_constrained_adaptation(sys, 4),
               ContractViolation);
}

}  // namespace
}  // namespace fedcons
