// Tests for the exact uniprocessor EDF analysis (PDC and QPA).
#include "fedcons/analysis/edf_uniproc.h"

#include <gtest/gtest.h>

#include <vector>

#include "fedcons/analysis/dbf.h"
#include "fedcons/util/rng.h"

namespace fedcons {
namespace {

TEST(EdfUniprocTest, EmptySetSchedulable) {
  EXPECT_TRUE(edf_schedulable_pdc({}).schedulable);
  EXPECT_TRUE(edf_schedulable_qpa({}).schedulable);
}

TEST(EdfUniprocTest, ImplicitDeadlineFullUtilization) {
  // EDF is optimal on one processor: U = 1 with implicit deadlines is
  // schedulable.
  std::vector<SporadicTask> tasks{SporadicTask(1, 2, 2),
                                  SporadicTask(2, 4, 4)};
  EXPECT_TRUE(edf_schedulable_pdc(tasks).schedulable);
  EXPECT_TRUE(edf_schedulable_qpa(tasks).schedulable);
}

TEST(EdfUniprocTest, OverUtilizationRejected) {
  std::vector<SporadicTask> tasks{SporadicTask(3, 4, 4),
                                  SporadicTask(2, 4, 4)};
  EXPECT_FALSE(edf_schedulable_pdc(tasks).schedulable);
  EXPECT_FALSE(edf_schedulable_qpa(tasks).schedulable);
}

TEST(EdfUniprocTest, ConstrainedDeadlinesCanFailBelowFullUtilization) {
  // Two tasks, each C=1, D=1, T=4: at t=1 demand is 2 > 1 although U = 1/2.
  std::vector<SporadicTask> tasks{SporadicTask(1, 1, 4),
                                  SporadicTask(1, 1, 4)};
  auto pdc = edf_schedulable_pdc(tasks);
  EXPECT_FALSE(pdc.schedulable);
  ASSERT_TRUE(pdc.violation_instant.has_value());
  EXPECT_EQ(*pdc.violation_instant, 1);
  EXPECT_FALSE(edf_schedulable_qpa(tasks).schedulable);
}

TEST(EdfUniprocTest, ConstrainedSchedulableExample) {
  // C=2, D=4, T=8 and C=3, D=6, T=12: demand stays under t everywhere.
  std::vector<SporadicTask> tasks{SporadicTask(2, 4, 8),
                                  SporadicTask(3, 6, 12)};
  EXPECT_TRUE(edf_schedulable_pdc(tasks).schedulable);
  EXPECT_TRUE(edf_schedulable_qpa(tasks).schedulable);
}

TEST(EdfUniprocTest, ViolationWitnessIsGenuine) {
  std::vector<SporadicTask> tasks{SporadicTask(2, 2, 5),
                                  SporadicTask(2, 3, 5)};
  auto r = edf_schedulable_pdc(tasks);
  ASSERT_FALSE(r.schedulable);
  ASSERT_TRUE(r.violation_instant.has_value());
  EXPECT_GT(total_dbf(tasks, *r.violation_instant), *r.violation_instant);
}

TEST(EdfUniprocTest, ExactUtilizationBoundaryWithConstrainedDeadline) {
  // U = 1 exactly plus a constrained deadline that still fits.
  std::vector<SporadicTask> tasks{SporadicTask(1, 1, 2),
                                  SporadicTask(1, 2, 2)};
  // t=1: 1 ≤ 1; t=2: 2 ≤ 2; pattern repeats with slack 0 — schedulable.
  EXPECT_TRUE(edf_schedulable_pdc(tasks).schedulable);
  EXPECT_TRUE(edf_schedulable_qpa(tasks).schedulable);
}

TEST(BusyPeriodTest, SimpleFixpoint) {
  // C=2,T=4 and C=2,T=6 → w: 4 → ⌈4/4⌉2+⌈4/6⌉2=4 → fixpoint 4.
  std::vector<SporadicTask> tasks{SporadicTask(2, 4, 4),
                                  SporadicTask(2, 6, 6)};
  EXPECT_EQ(busy_period(tasks), 4);
}

TEST(BusyPeriodTest, FullUtilizationMayDiverge) {
  std::vector<SporadicTask> tasks{SporadicTask(1, 1, 1)};
  // U = 1: w grows without a finite fixpoint below the iteration cap? No —
  // w=1: ⌈1/1⌉·1 = 1 is already a fixpoint here.
  EXPECT_EQ(busy_period(tasks), 1);
}

TEST(BusyPeriodTest, EmptyIsZero) { EXPECT_EQ(busy_period({}), 0); }

TEST(PdcBoundTest, FiniteForUtilizationBelowOne) {
  std::vector<SporadicTask> tasks{SporadicTask(1, 3, 10),
                                  SporadicTask(2, 5, 15)};
  Time bound = pdc_testing_bound(tasks);
  EXPECT_NE(bound, kTimeInfinity);
  EXPECT_GT(bound, 0);
}

// Cross-validation property: PDC and QPA agree on random constrained sets,
// and both agree with a brute-force scan of all instants up to the bound.
class EdfCrossValidationTest
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EdfCrossValidationTest, PdcEqualsQpa) {
  Rng rng(GetParam());
  for (int i = 0; i < 150; ++i) {
    std::vector<SporadicTask> tasks;
    int n = static_cast<int>(rng.uniform_int(1, 6));
    for (int j = 0; j < n; ++j) {
      Time period = rng.uniform_int(2, 60);
      Time deadline = rng.uniform_int(1, period);
      Time wcet = rng.uniform_int(1, deadline);
      tasks.emplace_back(wcet, deadline, period);
    }
    EXPECT_EQ(edf_schedulable_pdc(tasks).schedulable,
              edf_schedulable_qpa(tasks).schedulable)
        << "disagreement on a random task set (seed " << GetParam()
        << ", trial " << i << ")";
  }
}

TEST_P(EdfCrossValidationTest, PdcEqualsBruteForce) {
  Rng rng(GetParam() ^ 0x1234);
  for (int i = 0; i < 60; ++i) {
    std::vector<SporadicTask> tasks;
    int n = static_cast<int>(rng.uniform_int(1, 4));
    BigRational u;
    for (int j = 0; j < n; ++j) {
      Time period = rng.uniform_int(2, 24);
      Time deadline = rng.uniform_int(1, period);
      Time wcet = rng.uniform_int(1, deadline);
      tasks.emplace_back(wcet, deadline, period);
      u += tasks.back().utilization();
    }
    bool brute = u <= BigRational(1);
    if (brute) {
      Time bound = pdc_testing_bound(tasks);
      ASSERT_NE(bound, kTimeInfinity);
      for (Time t = 1; t <= bound && brute; ++t) {
        if (total_dbf(tasks, t) > t) brute = false;
      }
    }
    EXPECT_EQ(edf_schedulable_pdc(tasks).schedulable, brute);
  }
}

TEST_P(EdfCrossValidationTest, PdcEqualsQpaOnArbitraryDeadlines) {
  // The PDC/QPA theory covers D > T as well; cross-validate there too
  // (the partitioned path of the arbitrary-deadline extension relies on it).
  Rng rng(GetParam() ^ 0x7777);
  for (int i = 0; i < 100; ++i) {
    std::vector<SporadicTask> tasks;
    int n = static_cast<int>(rng.uniform_int(1, 5));
    for (int j = 0; j < n; ++j) {
      Time period = rng.uniform_int(2, 40);
      Time deadline = rng.bernoulli(0.5) ? rng.uniform_int(period, 3 * period)
                                         : rng.uniform_int(1, period);
      Time wcet = rng.uniform_int(1, std::min(deadline, period));
      tasks.emplace_back(wcet, deadline, period);
    }
    EXPECT_EQ(edf_schedulable_pdc(tasks).schedulable,
              edf_schedulable_qpa(tasks).schedulable)
        << "disagreement on an arbitrary-deadline set (seed " << GetParam()
        << ", trial " << i << ")";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EdfCrossValidationTest,
                         ::testing::Values(101u, 202u, 303u, 404u));

TEST(EdfSaturationTest, OverflowingDeadlinePointsSaturateNotWrap) {
  // Two tasks with D and T both near 2^62: the scan's next deadline point
  // D + T exceeds int64 and must saturate to kTimeInfinity (dropping out of
  // the heap) rather than wrap negative, re-enter the scan, and loop. The
  // set is genuinely unschedulable at its first deadline point — the verdict
  // must say so with a positive witness, not crash or hang.
  const Time big = Time{1} << 62;
  std::vector<SporadicTask> tasks{SporadicTask(big / 2, big - 1, big + 8),
                                  SporadicTask(big / 2, big - 1, big + 8)};
  const EdfResult pdc = edf_schedulable_pdc(tasks);
  EXPECT_FALSE(pdc.schedulable);
  ASSERT_TRUE(pdc.violation_instant.has_value());
  EXPECT_EQ(*pdc.violation_instant, big - 1);
  // QPA stays guarded on the same inputs and agrees on the verdict.
  EXPECT_FALSE(edf_schedulable_qpa(tasks).schedulable);
}

}  // namespace
}  // namespace fedcons
