// Tests for Graham list scheduling: structural validity, bounds, policies.
#include "fedcons/listsched/list_scheduler.h"

#include <gtest/gtest.h>

#include <array>

#include "fedcons/core/builders.h"
#include "fedcons/gen/dag_gen.h"
#include "fedcons/util/check.h"
#include "fedcons/util/rng.h"

namespace fedcons {
namespace {

TEST(ListSchedulerTest, SingleVertex) {
  Dag g;
  g.add_vertex(5);
  TemplateSchedule s = list_schedule(g, 3);
  EXPECT_EQ(s.makespan(), 5);
  EXPECT_EQ(s.num_jobs(), 1u);
  EXPECT_TRUE(s.validate_against(g));
}

TEST(ListSchedulerTest, ChainUsesOneProcessorFully) {
  std::array<Time, 3> w{2, 3, 4};
  Dag g = make_chain(w);
  TemplateSchedule s = list_schedule(g, 4);
  EXPECT_EQ(s.makespan(), 9);  // no parallelism available
  EXPECT_TRUE(s.validate_against(g));
}

TEST(ListSchedulerTest, IndependentJobsPackPerfectlyWhenDivisible) {
  std::array<Time, 4> w{3, 3, 3, 3};
  Dag g = make_independent(w);
  EXPECT_EQ(list_schedule(g, 4).makespan(), 3);
  EXPECT_EQ(list_schedule(g, 2).makespan(), 6);
  EXPECT_EQ(list_schedule(g, 1).makespan(), 12);
}

TEST(ListSchedulerTest, ForkJoinMakespan) {
  std::array<Time, 2> branches{4, 4};
  Dag g = make_fork_join(1, branches, 1);
  // With 2 processors both branches run in parallel: 1 + 4 + 1.
  EXPECT_EQ(list_schedule(g, 2).makespan(), 6);
  // With 1 processor everything serializes: vol = 10.
  EXPECT_EQ(list_schedule(g, 1).makespan(), 10);
}

TEST(ListSchedulerTest, PaperExampleOnTwoProcessors) {
  DagTask t = make_paper_example_task();
  TemplateSchedule s = list_schedule(t.graph(), 2);
  EXPECT_TRUE(s.validate_against(t.graph()));
  // vol = 9, len = 6: two processors finish within the Graham bound and at
  // or above the area/critical-path lower bound.
  EXPECT_GE(s.makespan(), makespan_lower_bound(t.graph(), 2));
  EXPECT_LE(s.makespan(), graham_bound(t.graph(), 2));
  EXPECT_LE(s.makespan(), t.deadline());
}

TEST(ListSchedulerTest, RejectsBadArguments) {
  Dag g;
  EXPECT_THROW(list_schedule(g, 1), ContractViolation);  // empty
  g.add_vertex(1);
  EXPECT_THROW(list_schedule(g, 0), ContractViolation);
}

TEST(ListSchedulerTest, ExecTimesValidated) {
  Dag g;
  g.add_vertex(4);
  std::array<Time, 1> too_big{5};
  EXPECT_THROW(list_schedule_with_exec_times(g, 1, too_big),
               ContractViolation);
  std::array<Time, 1> zero{0};
  EXPECT_THROW(list_schedule_with_exec_times(g, 1, zero), ContractViolation);
  std::array<Time, 2> wrong_size{1, 1};
  EXPECT_THROW(list_schedule_with_exec_times(g, 1, wrong_size),
               ContractViolation);
}

TEST(ListSchedulerTest, DeterministicAcrossRuns) {
  DagTask t = make_paper_example_task();
  TemplateSchedule a = list_schedule(t.graph(), 2);
  TemplateSchedule b = list_schedule(t.graph(), 2);
  ASSERT_EQ(a.num_jobs(), b.num_jobs());
  for (std::size_t i = 0; i < a.jobs().size(); ++i) {
    EXPECT_EQ(a.jobs()[i].vertex, b.jobs()[i].vertex);
    EXPECT_EQ(a.jobs()[i].processor, b.jobs()[i].processor);
    EXPECT_EQ(a.jobs()[i].start, b.jobs()[i].start);
  }
}

TEST(ListSchedulerTest, PolicyNamesRoundTrip) {
  EXPECT_STREQ(to_string(ListPolicy::kVertexOrder), "vertex-order");
  EXPECT_STREQ(to_string(ListPolicy::kCriticalPath), "critical-path");
  EXPECT_STREQ(to_string(ListPolicy::kLongestWcet), "longest-wcet");
}

TEST(ListSchedulerTest, CriticalPathPolicyCanBeatVertexOrder) {
  // v0 is a long job that gates nothing; v1 starts the long chain. Vertex
  // order picks v0 first and delays the chain; critical-path priority does
  // not.
  Dag g = DagBuilder{}
              .vertices({6, 1, 6, 6})  // v1→v2→v3 is the critical chain (13)
              .edge(1, 2)
              .edge(2, 3)
              .build();
  Time vo = list_schedule(g, 1, ListPolicy::kVertexOrder).makespan();
  Time cp = list_schedule(g, 1, ListPolicy::kCriticalPath).makespan();
  EXPECT_EQ(vo, cp) << "on one processor makespan is vol either way";
  Time vo2 = list_schedule(g, 2, ListPolicy::kVertexOrder).makespan();
  Time cp2 = list_schedule(g, 2, ListPolicy::kCriticalPath).makespan();
  EXPECT_LE(cp2, vo2);
}

TEST(MakespanBoundsTest, LowerBound) {
  std::array<Time, 2> branches{4, 4};
  Dag g = make_fork_join(1, branches, 1);  // vol 10, len 6
  EXPECT_EQ(makespan_lower_bound(g, 1), 10);
  EXPECT_EQ(makespan_lower_bound(g, 2), 6);
  EXPECT_EQ(makespan_lower_bound(g, 100), 6);
}

TEST(MakespanBoundsTest, GrahamBoundFormula) {
  std::array<Time, 2> branches{4, 4};
  Dag g = make_fork_join(1, branches, 1);  // vol 10, len 6
  // m = 2: floor((10 + 6)/2) = 8.
  EXPECT_EQ(graham_bound(g, 2), 8);
  // m = 1: floor(10/1) = vol.
  EXPECT_EQ(graham_bound(g, 1), 10);
}

// Property suite over random DAGs: every LS run must produce a structurally
// valid schedule whose makespan sits between the area/critical-path lower
// bound and Graham's upper bound, monotone in no particular way but bounded.
class ListSchedulerPropertyTest
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, int>> {};

TEST_P(ListSchedulerPropertyTest, RandomDagsRespectBounds) {
  auto [seed, procs] = GetParam();
  Rng rng(seed);
  LayeredDagParams params;
  params.max_layers = 6;
  params.max_width = 5;
  params.max_wcet = 20;
  for (int trial = 0; trial < 50; ++trial) {
    Dag g = generate_layered_dag(rng, params);
    for (ListPolicy policy :
         {ListPolicy::kVertexOrder, ListPolicy::kCriticalPath,
          ListPolicy::kLongestWcet}) {
      TemplateSchedule s = list_schedule(g, procs, policy);
      EXPECT_TRUE(s.validate_against(g));
      EXPECT_GE(s.makespan(), makespan_lower_bound(g, procs));
      EXPECT_LE(s.makespan(), graham_bound(g, procs));
    }
  }
}

TEST_P(ListSchedulerPropertyTest, ReducedExecTimesStayValid) {
  auto [seed, procs] = GetParam();
  Rng rng(seed ^ 0xfeed);
  LayeredDagParams params;
  params.max_wcet = 15;
  for (int trial = 0; trial < 30; ++trial) {
    Dag g = generate_layered_dag(rng, params);
    std::vector<Time> exec(g.num_vertices());
    for (std::size_t v = 0; v < g.num_vertices(); ++v) {
      exec[v] = rng.uniform_int(1, g.wcet(static_cast<VertexId>(v)));
    }
    TemplateSchedule s = list_schedule_with_exec_times(g, procs, exec);
    EXPECT_EQ(s.num_jobs(), g.num_vertices());
    // Precedence must hold with the actual durations.
    for (VertexId u = 0; u < g.num_vertices(); ++u) {
      for (VertexId v : g.successors(u)) {
        EXPECT_LE(s.job_for(u).finish, s.job_for(v).start);
      }
    }
  }
}

// The workspace-backed core (list_schedule) must reproduce the reference
// implementation job for job — vertices, processors, start/finish times —
// under every policy, processor count, and the exec-times variant.
TEST_P(ListSchedulerPropertyTest, WorkspaceCoreMatchesReferenceBitForBit) {
  auto [seed, procs] = GetParam();
  Rng rng(seed ^ 0xace5u);
  LayeredDagParams params;
  params.max_layers = 6;
  params.max_width = 5;
  params.max_wcet = 20;
  for (int trial = 0; trial < 40; ++trial) {
    Dag g = generate_layered_dag(rng, params);
    for (ListPolicy policy :
         {ListPolicy::kVertexOrder, ListPolicy::kCriticalPath,
          ListPolicy::kLongestWcet}) {
      TemplateSchedule opt = list_schedule(g, procs, policy);
      TemplateSchedule ref = list_schedule_reference(g, procs, policy);
      EXPECT_EQ(opt.makespan(), ref.makespan());
      ASSERT_EQ(opt.num_jobs(), ref.num_jobs());
      for (std::size_t i = 0; i < opt.jobs().size(); ++i) {
        EXPECT_EQ(opt.jobs()[i].vertex, ref.jobs()[i].vertex);
        EXPECT_EQ(opt.jobs()[i].processor, ref.jobs()[i].processor);
        EXPECT_EQ(opt.jobs()[i].start, ref.jobs()[i].start);
        EXPECT_EQ(opt.jobs()[i].finish, ref.jobs()[i].finish);
      }
    }
  }
}

TEST_P(ListSchedulerPropertyTest, ExecTimesVariantMatchesReference) {
  auto [seed, procs] = GetParam();
  Rng rng(seed ^ 0xd09u);
  LayeredDagParams params;
  params.max_wcet = 15;
  for (int trial = 0; trial < 20; ++trial) {
    Dag g = generate_layered_dag(rng, params);
    std::vector<Time> exec(g.num_vertices());
    for (std::size_t v = 0; v < g.num_vertices(); ++v) {
      exec[v] = rng.uniform_int(1, g.wcet(static_cast<VertexId>(v)));
    }
    TemplateSchedule opt = list_schedule_with_exec_times(g, procs, exec);
    TemplateSchedule ref =
        list_schedule_reference_with_exec_times(g, procs, exec);
    EXPECT_EQ(opt.makespan(), ref.makespan());
    ASSERT_EQ(opt.num_jobs(), ref.num_jobs());
    for (std::size_t i = 0; i < opt.jobs().size(); ++i) {
      EXPECT_EQ(opt.jobs()[i].vertex, ref.jobs()[i].vertex);
      EXPECT_EQ(opt.jobs()[i].processor, ref.jobs()[i].processor);
      EXPECT_EQ(opt.jobs()[i].start, ref.jobs()[i].start);
      EXPECT_EQ(opt.jobs()[i].finish, ref.jobs()[i].finish);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndProcs, ListSchedulerPropertyTest,
    ::testing::Combine(::testing::Values(1u, 2u, 3u),
                       ::testing::Values(1, 2, 4, 8)));

}  // namespace
}  // namespace fedcons
