// Tests for deterministic fault plans: permille scaling, jitter hashing,
// the --inject grammar, and the random-plan generator.
#include "fedcons/fault/fault_plan.h"

#include <gtest/gtest.h>

#include <array>
#include <cstdint>

#include "fedcons/core/builders.h"
#include "fedcons/core/io.h"
#include "fedcons/util/rng.h"

namespace fedcons {
namespace {

TEST(ScalePermilleTest, IdentityAndZeroPreserved) {
  EXPECT_EQ(scale_permille(7, 1000), 7);
  EXPECT_EQ(scale_permille(0, 5000), 0);
}

TEST(ScalePermilleTest, RoundsUp) {
  // 3 · 1.5 = 4.5 → ⌈⌉ = 5; underruns round up too (never to 0 from > 0).
  EXPECT_EQ(scale_permille(3, 1500), 5);
  EXPECT_EQ(scale_permille(10, 2500), 25);
  EXPECT_EQ(scale_permille(7, 100), 1);
  EXPECT_EQ(scale_permille(1, 1), 1);
}

TEST(ScalePermilleTest, SaturatesInsteadOfWrapping) {
  const Time huge = kTimeInfinity / 2;
  EXPECT_EQ(scale_permille(huge, 5000), kTimeInfinity);
  EXPECT_EQ(scale_permille(kTimeInfinity, 2000), kTimeInfinity);
}

TEST(FaultEarlyShiftTest, DeterministicAndBounded) {
  for (std::uint64_t index = 0; index < 50; ++index) {
    const Time a = fault_early_shift(7, "tau", index, 13);
    const Time b = fault_early_shift(7, "tau", index, 13);
    EXPECT_EQ(a, b);
    EXPECT_GE(a, 0);
    EXPECT_LE(a, 13);
  }
  EXPECT_EQ(fault_early_shift(7, "tau", 3, 0), 0);
}

TEST(FaultEarlyShiftTest, SeedAndNameChangeTheStream) {
  // Not a uniformity claim — just that the hash actually keys on its inputs.
  bool seed_differs = false;
  bool name_differs = false;
  for (std::uint64_t index = 0; index < 64; ++index) {
    if (fault_early_shift(1, "tau", index, 1000) !=
        fault_early_shift(2, "tau", index, 1000)) {
      seed_differs = true;
    }
    if (fault_early_shift(1, "tau", index, 1000) !=
        fault_early_shift(1, "sigma", index, 1000)) {
      name_differs = true;
    }
  }
  EXPECT_TRUE(seed_differs);
  EXPECT_TRUE(name_differs);
}

TEST(TaskFaultSpecTest, LaterVertexOverrideWins) {
  TaskFaultSpec spec;
  spec.overrun_permille = 2000;
  spec.vertex_overrides = {{1, 3000}, {1, 4000}};
  EXPECT_EQ(spec.permille_for(0), 2000);
  EXPECT_EQ(spec.permille_for(1), 4000);
}

TEST(TaskFaultSpecTest, TrivialityIgnoresIdentityOverrides) {
  TaskFaultSpec spec;
  spec.task = "tau";
  EXPECT_TRUE(spec.trivial());
  spec.vertex_overrides = {{0, 1000}, {9, 1000}};
  EXPECT_TRUE(spec.trivial());
  spec.vertex_overrides.emplace_back(2, 1001);
  EXPECT_FALSE(spec.trivial());
}

TEST(FaultPlanTest, EmptinessTracksEveryChannel) {
  FaultPlan plan;
  EXPECT_TRUE(plan.empty());
  plan.tasks.push_back({});  // trivial spec
  EXPECT_TRUE(plan.empty());
  plan.tasks.front().early_release_max = 1;
  EXPECT_FALSE(plan.empty());
  plan.tasks.front().early_release_max = 0;
  plan.processor_failure = {0, 100};
  EXPECT_FALSE(plan.empty());
}

TEST(FaultPlanTest, FindMatchesByDisplayName) {
  FaultPlan plan;
  TaskFaultSpec alpha;
  alpha.task = "alpha";
  alpha.overrun_permille = 2000;
  TaskFaultSpec beta;
  beta.task = "beta";
  beta.overrun_permille = 3000;
  plan.tasks.push_back(alpha);
  plan.tasks.push_back(beta);
  ASSERT_NE(plan.find("beta"), nullptr);
  EXPECT_EQ(plan.find("beta")->overrun_permille, 3000u);
  EXPECT_EQ(plan.find("gamma"), nullptr);
}

TEST(FaultPlanGrammarTest, RoundTripsThroughText) {
  FaultPlan plan;
  plan.seed = 7;
  TaskFaultSpec spec;
  spec.task = "control-law";
  spec.overrun_permille = 2500;
  spec.vertex_overrides = {{1, 4000}};
  spec.early_release_max = 30;
  plan.tasks.push_back(spec);
  plan.processor_failure = {2, 1000};

  const std::string text = format_fault_plan(plan);
  const FaultPlan back = parse_fault_plan(text);
  EXPECT_EQ(back.seed, 7u);
  ASSERT_EQ(back.tasks.size(), 1u);
  EXPECT_EQ(back.tasks[0].task, "control-law");
  EXPECT_EQ(back.tasks[0].overrun_permille, 2500u);
  ASSERT_EQ(back.tasks[0].vertex_overrides.size(), 1u);
  EXPECT_EQ(back.tasks[0].vertex_overrides[0].first, 1u);
  EXPECT_EQ(back.tasks[0].vertex_overrides[0].second, 4000u);
  EXPECT_EQ(back.tasks[0].early_release_max, 30);
  EXPECT_EQ(back.processor_failure.processor, 2);
  EXPECT_EQ(back.processor_failure.at, 1000);
  // The text form is canonical: formatting the parse is a fixed point.
  EXPECT_EQ(format_fault_plan(back), text);
}

TEST(FaultPlanGrammarTest, SeedsAboveInt64RoundTrip) {
  // Jitter seeds come from Rng::next_u64, so roughly half of all random
  // plans carry a seed past 2^63. Regression: these used to fail replay with
  // "malformed seed" because the grammar parsed them through stoll.
  FaultPlan plan;
  plan.seed = 0xffffffffffffffffULL;
  const FaultPlan back = parse_fault_plan(format_fault_plan(plan));
  EXPECT_EQ(back.seed, 0xffffffffffffffffULL);
}

TEST(FaultPlanGrammarTest, EmptyPlanIsEmptyText) {
  EXPECT_EQ(format_fault_plan(FaultPlan{}), "");
  EXPECT_TRUE(parse_fault_plan("").empty());
}

TEST(FaultPlanGrammarTest, MalformedSpecsThrowParseError) {
  EXPECT_THROW((void)parse_fault_plan("bogus:1"), ParseError);
  EXPECT_THROW((void)parse_fault_plan("task:"), ParseError);
  EXPECT_THROW((void)parse_fault_plan("task:a,overrun:x"), ParseError);
  EXPECT_THROW((void)parse_fault_plan("task:a,weird:1"), ParseError);
  EXPECT_THROW((void)parse_fault_plan("task:a,overrun:-5"), ParseError);
  EXPECT_THROW((void)parse_fault_plan("proc:1"), ParseError);
  EXPECT_THROW((void)parse_fault_plan("proc:x@5"), ParseError);
  EXPECT_THROW((void)parse_fault_plan("seed:abc"), ParseError);
  EXPECT_THROW((void)parse_fault_plan(";"), ParseError);
  EXPECT_THROW((void)parse_fault_plan("noclausecolon"), ParseError);
}

TEST(RandomFaultPlanTest, DeterministicInRngState) {
  TaskSystem sys;
  sys.add(DagTask(make_chain(std::array<Time, 3>{2, 3, 1}), 10, 12, "alpha"));
  sys.add(DagTask(make_chain(std::array<Time, 2>{1, 1}), 8, 8, "beta"));
  Rng a(42), b(42);
  const FaultPlan pa = random_fault_plan(a, sys, 1);
  const FaultPlan pb = random_fault_plan(b, sys, 1);
  EXPECT_EQ(format_fault_plan(pa), format_fault_plan(pb));
  ASSERT_EQ(pa.tasks.size(), 1u);
  EXPECT_EQ(pa.tasks[0].task, "beta");  // targeted by display name
  EXPECT_FALSE(pa.empty());             // the drawn factor is never identity
}

TEST(RandomFaultPlanTest, RespectsPermilleRange) {
  TaskSystem sys;
  sys.add(DagTask(make_chain(std::array<Time, 1>{4}), 6, 6, "solo"));
  FaultPlanParams params;
  params.overrun_lo = 1500;
  params.overrun_hi = 1500;
  params.per_vertex_probability = 0.0;  // force the uniform factor
  params.jitter_probability = 0.0;
  Rng rng(9);
  for (int i = 0; i < 20; ++i) {
    const FaultPlan plan = random_fault_plan(rng, sys, 0, params);
    ASSERT_EQ(plan.tasks.size(), 1u);
    EXPECT_EQ(plan.tasks[0].overrun_permille, 1500u);
    EXPECT_TRUE(plan.tasks[0].vertex_overrides.empty());
    EXPECT_EQ(plan.tasks[0].early_release_max, 0);
  }
}

}  // namespace
}  // namespace fedcons
