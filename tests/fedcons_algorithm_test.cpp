// End-to-end tests for Algorithm FEDCONS (paper, Figure 2).
#include "fedcons/federated/fedcons_algorithm.h"

#include <gtest/gtest.h>

#include <array>

#include "fedcons/core/builders.h"
#include "fedcons/gen/taskset_gen.h"
#include "fedcons/util/check.h"
#include "fedcons/util/rng.h"

namespace fedcons {
namespace {

DagTask simple_task(Time wcet, Time deadline, Time period,
                    std::string name = {}) {
  Dag g;
  g.add_vertex(wcet);
  return DagTask(std::move(g), deadline, period, std::move(name));
}

/// A genuinely parallel high-density task: `width` unit jobs, deadline 2.
DagTask wide_task(int width, Time deadline, Time period) {
  Dag g;
  for (int i = 0; i < width; ++i) g.add_vertex(1);
  return DagTask(std::move(g), deadline, period);
}

TEST(FedconsTest, EmptySystemSchedulable) {
  EXPECT_TRUE(fedcons_schedule(TaskSystem{}, 1).success);
}

TEST(FedconsTest, RejectsArbitraryDeadlines) {
  TaskSystem sys;
  sys.add(simple_task(1, 20, 10));
  EXPECT_THROW(fedcons_schedule(sys, 2), ContractViolation);
  EXPECT_THROW(fedcons_schedule(TaskSystem{}, 0), ContractViolation);
}

TEST(FedconsTest, PureLowDensitySystemGoesToPartition) {
  TaskSystem sys;
  sys.add(make_paper_example_task());
  sys.add(simple_task(2, 10, 20));
  auto r = fedcons_schedule(sys, 2);
  ASSERT_TRUE(r.success);
  EXPECT_TRUE(r.clusters.empty());
  EXPECT_EQ(r.shared_processors, 2);
  EXPECT_EQ(r.first_shared_processor, 0);
  std::size_t assigned = 0;
  for (const auto& p : r.shared_assignment) assigned += p.size();
  EXPECT_EQ(assigned, 2u);
}

TEST(FedconsTest, HighDensityTaskGetsDedicatedCluster) {
  TaskSystem sys;
  // 8 unit jobs, D = 2, T = 4: δ = 4 → needs 4 dedicated processors.
  sys.add(wide_task(8, 2, 4));
  sys.add(simple_task(2, 10, 20));
  auto r = fedcons_schedule(sys, 5);
  ASSERT_TRUE(r.success);
  ASSERT_EQ(r.clusters.size(), 1u);
  EXPECT_EQ(r.clusters[0].task, 0u);
  EXPECT_EQ(r.clusters[0].num_processors, 4);
  EXPECT_EQ(r.clusters[0].first_processor, 0);
  EXPECT_LE(r.clusters[0].sigma.makespan(), 2);
  EXPECT_EQ(r.shared_processors, 1);
  EXPECT_EQ(r.first_shared_processor, 4);
}

TEST(FedconsTest, FailsInHighDensityPhaseWhenProcessorsExhausted) {
  TaskSystem sys;
  sys.add(wide_task(8, 2, 4));  // needs 4
  auto r = fedcons_schedule(sys, 3);
  EXPECT_FALSE(r.success);
  EXPECT_EQ(r.failure, FedconsFailure::kHighDensityPhase);
  ASSERT_TRUE(r.failed_task.has_value());
  EXPECT_EQ(*r.failed_task, 0u);
}

TEST(FedconsTest, FailsInPartitionPhaseWhenSharedPoolTooSmall) {
  TaskSystem sys;
  sys.add(wide_task(8, 2, 4));       // consumes 4 of 4 processors
  sys.add(simple_task(2, 10, 20));   // nowhere to go
  auto r = fedcons_schedule(sys, 4);
  EXPECT_FALSE(r.success);
  EXPECT_EQ(r.failure, FedconsFailure::kPartitionPhase);
  ASSERT_TRUE(r.failed_task.has_value());
  EXPECT_EQ(*r.failed_task, 1u);
}

TEST(FedconsTest, InfeasibleCriticalPathFailsHighPhase) {
  std::array<Time, 3> w{5, 5, 5};
  TaskSystem sys;
  sys.add(DagTask(make_chain(w), 10, 15));  // len 15 > D 10, δ = 1.5
  auto r = fedcons_schedule(sys, 64);
  EXPECT_FALSE(r.success);
  EXPECT_EQ(r.failure, FedconsFailure::kHighDensityPhase);
}

TEST(FedconsTest, Example2NeedsOneProcessorPerTask) {
  // Paper Example 2: each task has δ = 1 (high-density), so FEDCONS
  // dedicates one processor per task: succeeds iff m ≥ n.
  const int n = 6;
  TaskSystem sys = make_capacity_augmentation_counterexample(n);
  auto ok = fedcons_schedule(sys, n);
  ASSERT_TRUE(ok.success);
  EXPECT_EQ(ok.clusters.size(), static_cast<std::size_t>(n));
  EXPECT_EQ(ok.shared_processors, 0);
  EXPECT_FALSE(fedcons_schedule(sys, n - 1).success);
}

TEST(FedconsTest, MixedSystemEndToEnd) {
  TaskSystem sys;
  sys.add(wide_task(6, 2, 8));                        // δ = 3: high
  sys.add(make_paper_example_task());                 // δ = 9/16: low
  sys.add(simple_task(1, 4, 16, "light"));            // δ = 1/4: low
  std::array<Time, 2> branches{3, 3};
  sys.add(DagTask(make_fork_join(1, branches, 1), 8, 10));  // vol 8, δ = 1
  auto r = fedcons_schedule(sys, 8);
  ASSERT_TRUE(r.success) << r.describe(sys);
  EXPECT_EQ(r.clusters.size(), 2u);  // tasks 0 and 3
  // Cluster processors are disjoint and contiguous from 0.
  int next = 0;
  for (const auto& c : r.clusters) {
    EXPECT_EQ(c.first_processor, next);
    next += c.num_processors;
  }
  EXPECT_EQ(r.first_shared_processor, next);
  EXPECT_EQ(r.shared_processors, 8 - next);
}

TEST(FedconsTest, DescribeMentionsOutcome) {
  TaskSystem sys;
  sys.add(simple_task(2, 10, 20, "solo"));
  auto ok = fedcons_schedule(sys, 1);
  ASSERT_TRUE(ok.success);
  EXPECT_NE(ok.describe(sys).find("SUCCESS"), std::string::npos);

  TaskSystem big;
  big.add(wide_task(8, 2, 4));
  auto fail = fedcons_schedule(big, 2);
  EXPECT_NE(fail.describe(big).find("FAILURE"), std::string::npos);
  EXPECT_NE(fail.describe(big).find("high-density-phase"), std::string::npos);
}

TEST(FedconsTest, FailureEnumNames) {
  EXPECT_STREQ(to_string(FedconsFailure::kNone), "accepted");
  EXPECT_STREQ(to_string(FedconsFailure::kHighDensityPhase),
               "high-density-phase");
  EXPECT_STREQ(to_string(FedconsFailure::kPartitionPhase), "partition-phase");
}

// Properties over random systems.
class FedconsPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FedconsPropertyTest, AcceptanceMonotoneInProcessorCount) {
  Rng rng(GetParam());
  TaskSetParams params;
  params.num_tasks = 6;
  params.total_utilization = 2.5;
  params.utilization_cap = 4.0;
  for (int trial = 0; trial < 25; ++trial) {
    TaskSystem sys = generate_task_system(rng, params);
    bool prev = false;
    for (int m = 1; m <= 10; ++m) {
      bool now = fedcons_schedulable(sys, m);
      EXPECT_TRUE(!prev || now)
          << "FEDCONS acceptance regressed when adding a processor";
      prev = now;
    }
  }
}

TEST_P(FedconsPropertyTest, AcceptedAllocationsAreStructurallySound) {
  Rng rng(GetParam() ^ 0x77);
  TaskSetParams params;
  params.num_tasks = 8;
  params.total_utilization = 3.0;
  params.utilization_cap = 6.0;
  for (int trial = 0; trial < 25; ++trial) {
    TaskSystem sys = generate_task_system(rng, params);
    auto r = fedcons_schedule(sys, 8);
    if (!r.success) continue;
    // Every task appears exactly once (in a cluster xor on a shared proc).
    std::vector<int> seen(sys.size(), 0);
    int proc_budget = 0;
    for (const auto& c : r.clusters) {
      ++seen[c.task];
      proc_budget += c.num_processors;
      EXPECT_TRUE(sys[c.task].is_high_density());
      EXPECT_LE(c.sigma.makespan(), sys[c.task].deadline());
      EXPECT_TRUE(c.sigma.validate_against(sys[c.task].graph()));
    }
    for (const auto& p : r.shared_assignment) {
      for (TaskId t : p) {
        ++seen[t];
        EXPECT_TRUE(sys[t].is_low_density());
      }
    }
    for (std::size_t i = 0; i < sys.size(); ++i) EXPECT_EQ(seen[i], 1);
    EXPECT_EQ(proc_budget + r.shared_processors, 8);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FedconsPropertyTest,
                         ::testing::Values(51u, 52u, 53u));

}  // namespace
}  // namespace fedcons
