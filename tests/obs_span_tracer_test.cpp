// Tests for the span tracer: the disabled-path contract, Chrome trace-event
// schema, category coverage across the instrumented layers, and thread
// safety of concurrent recording.
#include "fedcons/obs/span_tracer.h"

#include <gtest/gtest.h>

#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "fedcons/conform/harness.h"
#include "fedcons/conform/oracle.h"
#include "fedcons/core/builders.h"
#include "fedcons/federated/fedcons_algorithm.h"
#include "fedcons/util/perf_counters.h"
#include "test_json.h"

namespace fedcons {
namespace {

/// Every suite toggles the global flag; restore the disabled default so test
/// order cannot leak tracing into unrelated suites.
class SpanTracerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::set_tracing_enabled(false);
    obs::reset_trace();
  }
  void TearDown() override {
    obs::set_tracing_enabled(false);
    obs::reset_trace();
  }
};

DagTask simple_task(Time wcet, Time deadline, Time period) {
  Dag g;
  g.add_vertex(wcet);
  return DagTask(std::move(g), deadline, period);
}

/// width unit jobs with deadline 2: δ = width·T/(2·T) — high-density.
DagTask wide_task(int width, Time deadline, Time period) {
  Dag g;
  for (int i = 0; i < width; ++i) g.add_vertex(1);
  return DagTask(std::move(g), deadline, period);
}

TaskSystem mixed_system() {
  TaskSystem sys;
  sys.add(wide_task(8, 2, 4));     // high-density: exercises MINPROCS
  sys.add(make_paper_example_task());  // low-density
  sys.add(simple_task(2, 10, 20));     // low-density
  return sys;
}

TEST_F(SpanTracerTest, DisabledPathRecordsNothing) {
  { FEDCONS_SPAN("test", "invisible"); }
  { FEDCONS_SPAN_V("test", "invisible_v", "k", 7); }
  (void)fedcons_schedule(mixed_system(), 5);
  EXPECT_TRUE(obs::collect_trace_events().empty());
}

TEST_F(SpanTracerTest, GuardLatchesDisabledStateAtConstruction) {
  {
    FEDCONS_SPAN("test", "latched");
    obs::set_tracing_enabled(true);  // mid-span enable: guard stays inert
  }
  EXPECT_TRUE(obs::collect_trace_events().empty());
}

TEST_F(SpanTracerTest, RecordsCompleteEventsWhenEnabled) {
  obs::set_tracing_enabled(true);
  { FEDCONS_SPAN_V("cat_a", "span_a", "key_a", 42); }
  { FEDCONS_SPAN("cat_b", "span_b"); }
  obs::set_tracing_enabled(false);
  auto events = obs::collect_trace_events();
  ASSERT_EQ(events.size(), 2u);
  // Same thread → sorted by timestamp: span_a closed first.
  EXPECT_STREQ(events[0].name, "span_a");
  EXPECT_STREQ(events[0].cat, "cat_a");
  ASSERT_NE(events[0].arg_key, nullptr);
  EXPECT_STREQ(events[0].arg_key, "key_a");
  EXPECT_EQ(events[0].arg_val, 42);
  EXPECT_STREQ(events[1].name, "span_b");
  EXPECT_EQ(events[1].arg_key, nullptr);
  for (const auto& e : events) {
    EXPECT_GE(e.ts_ns, 0) << e.name;
    EXPECT_GE(e.dur_ns, 0) << e.name;
  }
}

TEST_F(SpanTracerTest, ResetDropsEvents) {
  obs::set_tracing_enabled(true);
  { FEDCONS_SPAN("test", "dropped"); }
  obs::reset_trace();
  { FEDCONS_SPAN("test", "kept"); }
  obs::set_tracing_enabled(false);
  auto events = obs::collect_trace_events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_STREQ(events[0].name, "kept");
}

TEST_F(SpanTracerTest, ChromeTraceJsonSchemaAndCategoryCoverage) {
  obs::set_tracing_enabled(true);
  // Drive every instrumented layer: fedcons_schedule covers the fedcons,
  // minprocs, and partition categories; run_conformance covers the engine
  // (BatchRunner trial) and conform (oracle replay) categories.
  (void)fedcons_schedule(mixed_system(), 5);
  ConformConfig config = default_conform_config();
  config.trials = 2;
  config.num_threads = 2;
  config.m = 4;
  config.sim.horizon = 1000;
  auto entries = builtin_conformance_entries();
  (void)run_conformance(config, entries);
  obs::set_tracing_enabled(false);

  std::ostringstream os;
  obs::write_chrome_trace(os);
  auto doc = testjson::parse(os.str());

  ASSERT_TRUE(doc->has("traceEvents"));
  const auto& events = doc->at("traceEvents");
  ASSERT_TRUE(events.is_array());
  ASSERT_FALSE(events.array.empty());

  std::set<std::pair<std::string, std::string>> seen;  // (cat, name)
  for (const auto& ev : events.array) {
    // Chrome trace-event schema: complete events with microsecond times.
    EXPECT_EQ(ev->at("ph").string, "X");
    EXPECT_TRUE(ev->at("pid").is_number());
    EXPECT_TRUE(ev->at("tid").is_number());
    EXPECT_TRUE(ev->at("name").is_string());
    EXPECT_TRUE(ev->at("cat").is_string());
    EXPECT_TRUE(ev->at("ts").is_number());
    EXPECT_TRUE(ev->at("dur").is_number());
    EXPECT_GE(ev->at("ts").number, 0.0) << ev->at("name").string;
    EXPECT_GE(ev->at("dur").number, 0.0) << ev->at("name").string;
    seen.insert({ev->at("cat").string, ev->at("name").string});
  }
  for (const auto& [cat, name] :
       std::vector<std::pair<std::string, std::string>>{
           {"fedcons", "schedule"},
           {"minprocs", "scan"},
           {"minprocs", "ls_probe"},
           {"partition", "partition_tasks"},
           {"partition", "place"},
           {"engine", "trial"},
           {"conform", "oracle"}}) {
    EXPECT_TRUE(seen.count({cat, name}))
        << "missing span " << cat << "/" << name;
  }
}

TEST_F(SpanTracerTest, ConcurrentRecordingKeepsThreadsApart) {
  obs::set_tracing_enabled(true);
  constexpr int kThreads = 4;
  constexpr int kSpans = 50;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([] {
      for (int i = 0; i < kSpans; ++i) {
        FEDCONS_SPAN_V("test", "worker_span", "i", i);
      }
    });
  }
  for (auto& th : threads) th.join();
  obs::set_tracing_enabled(false);

  auto events = obs::collect_trace_events();
  // This thread recorded nothing, so exactly the workers' spans are present,
  // grouped by tid and time-ordered within each tid.
  ASSERT_EQ(events.size(), static_cast<std::size_t>(kThreads * kSpans));
  std::size_t group_start = 0;
  std::set<std::uint32_t> tids;
  for (std::size_t i = 0; i < events.size(); ++i) {
    tids.insert(events[i].tid);
    if (i > group_start && events[i].tid == events[i - 1].tid) {
      EXPECT_GE(events[i].ts_ns, events[i - 1].ts_ns);
    } else if (i > 0 && events[i].tid != events[i - 1].tid) {
      group_start = i;
    }
  }
  EXPECT_EQ(tids.size(), static_cast<std::size_t>(kThreads));
}

TEST_F(SpanTracerTest, TracingDoesNotPerturbVerdictOrCounters) {
  const TaskSystem sys = mixed_system();

  const PerfCounters before_off = perf_counters();
  const FedconsResult off = fedcons_schedule(sys, 5);
  const PerfCounters delta_off = perf_counters() - before_off;

  obs::set_tracing_enabled(true);
  const PerfCounters before_on = perf_counters();
  const FedconsResult on = fedcons_schedule(sys, 5);
  const PerfCounters delta_on = perf_counters() - before_on;
  obs::set_tracing_enabled(false);

  EXPECT_EQ(off.success, on.success);
  EXPECT_EQ(off.failure, on.failure);
  EXPECT_EQ(off.shared_processors, on.shared_processors);
  EXPECT_EQ(delta_off.ls_invocations, delta_on.ls_invocations);
  EXPECT_EQ(delta_off.minprocs_scan_iterations,
            delta_on.minprocs_scan_iterations);
  EXPECT_EQ(delta_off.dbf_star_evaluations, delta_on.dbf_star_evaluations);
  EXPECT_EQ(delta_off.ls_probes_pruned, delta_on.ls_probes_pruned);
}

}  // namespace
}  // namespace fedcons
