// Loopback integration tests: a real fedcons_serve daemon on a unix socket,
// driven end to end. Three contracts are proven here:
//
//  1. Protocol semantics over a live socket — open/register/admit/release/
//     swap/query/stats behave per serve/protocol.h, request-level errors are
//     recoverable, framing errors close only the offending connection.
//  2. Verdict parity — replaying an online trace through the daemon
//     (fedcons_loadgen --trace) yields byte-identical verdict files across
//     daemon instances and event-for-event identical verdicts to the
//     in-process `fedcons_cli --online --json` replay of the same trace.
//  3. Backpressure — with a tiny queue and a stalled worker the daemon sheds
//     load as RETRY_AFTER instead of buffering, and the connection keeps
//     working once the queue drains.
//
// Daemon/loadgen/cli binaries are injected as compile definitions by CMake.
#include <gtest/gtest.h>

#ifdef _WIN32
#error "this suite forks a daemon and decodes POSIX wait statuses"
#endif
#include <csignal>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "fedcons/core/dag.h"
#include "fedcons/core/io.h"
#include "fedcons/core/task_system.h"
#include "fedcons/online/trace.h"
#include "fedcons/serve/client.h"
#include "fedcons/serve/protocol.h"
#include "fedcons/util/check.h"
#include "test_json.h"

namespace fedcons {
namespace {

const std::string kServeBin = FEDCONS_SERVE_BIN;
const std::string kLoadgenBin = FEDCONS_LOADGEN_BIN;
const std::string kCliBin = FEDCONS_CLI_BIN;

/// A daemon child process bound to a per-test unix socket. The destructor
/// SIGTERMs and reaps it, so a failing test cannot leak the process.
class Daemon {
 public:
  explicit Daemon(std::vector<std::string> extra_args = {}) {
    static int counter = 0;
    socket_path_ = ::testing::TempDir() + "/serve_loopback_" +
                   std::to_string(::getpid()) + "_" +
                   std::to_string(counter++) + ".sock";
    std::vector<std::string> args = {kServeBin, "--socket=" + socket_path_};
    args.insert(args.end(), extra_args.begin(), extra_args.end());
    pid_ = ::fork();
    FEDCONS_EXPECTS_MSG(pid_ >= 0, "fork failed");
    if (pid_ == 0) {
      // Child: silence the readiness/stats lines, exec the daemon.
      std::freopen("/dev/null", "w", stdout);
      std::vector<char*> argv;
      argv.reserve(args.size() + 1);
      for (std::string& a : args) argv.push_back(a.data());
      argv.push_back(nullptr);
      ::execv(argv[0], argv.data());
      std::_Exit(127);  // exec failed
    }
  }

  ~Daemon() {
    if (pid_ > 0) {
      ::kill(pid_, SIGTERM);
      wait_exit();
    }
  }

  Daemon(const Daemon&) = delete;
  Daemon& operator=(const Daemon&) = delete;

  [[nodiscard]] const std::string& socket_path() const {
    return socket_path_;
  }

  [[nodiscard]] serve::ServeClient connect() const {
    return serve::ServeClient::connect_unix(socket_path_);
  }

  /// Reap the child; returns its exit code (or -1 on a signal death).
  int wait_exit() {
    if (pid_ <= 0) return -2;
    int status = 0;
    ::waitpid(pid_, &status, 0);
    pid_ = -1;
    return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  }

  /// SIGTERM + reap: the signal-driven half of the drain contract.
  int terminate() {
    if (pid_ > 0) ::kill(pid_, SIGTERM);
    return wait_exit();
  }

 private:
  std::string socket_path_;
  pid_t pid_ = -1;
};

DagTask make_task(long long vol, long long deadline, long long period,
                  const std::string& name) {
  Dag g;
  g.add_vertex(vol);
  return DagTask(g, deadline, period, name);
}

serve::ServeRequest make_request(serve::ServeOp op, std::uint64_t seq) {
  serve::ServeRequest req;
  req.op = op;
  req.seq = seq;
  return req;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

// ---- protocol semantics over a live socket ---------------------------------

TEST(ServeLoopbackTest, SessionLifecycleEndToEnd) {
  Daemon daemon;
  serve::ServeClient client = daemon.connect();

  serve::ServeRequest open = make_request(serve::ServeOp::kOpen, 1);
  open.m = 4;
  const serve::ServeResponse opened = client.call(open);
  ASSERT_EQ(opened.status, serve::ServeStatus::kOk) << opened.error;
  ASSERT_TRUE(opened.has_session);
  EXPECT_EQ(opened.seq, 1u);

  serve::ServeRequest reg = make_request(serve::ServeOp::kRegister, 2);
  reg.session = opened.session;
  reg.system = serialize_task_system(
      TaskSystem({make_task(10, 90, 100, "low")}));
  const serve::ServeResponse registered = client.call(reg);
  ASSERT_EQ(registered.status, serve::ServeStatus::kOk) << registered.error;
  ASSERT_TRUE(registered.has_content);

  // Admit twice by handle: both accepted, residents grows.
  for (std::uint64_t seq = 3; seq <= 4; ++seq) {
    serve::ServeRequest admit = make_request(serve::ServeOp::kAdmit, seq);
    admit.session = opened.session;
    admit.has_content = true;
    admit.content = registered.content;
    const serve::ServeResponse verdict = client.call(admit);
    ASSERT_EQ(verdict.status, serve::ServeStatus::kOk) << verdict.error;
    ASSERT_TRUE(verdict.has_verdict);
    EXPECT_TRUE(verdict.applied);
    EXPECT_TRUE(verdict.schedulable);
    EXPECT_EQ(verdict.reject, "accepted");
    ASSERT_EQ(verdict.task_ids.size(), 1u);
    EXPECT_EQ(verdict.residents, seq - 2);
  }

  // Admit a third task inline (no handle): same verdict shape.
  serve::ServeRequest inline_admit = make_request(serve::ServeOp::kAdmit, 5);
  inline_admit.session = opened.session;
  inline_admit.system =
      serialize_task_system(TaskSystem({make_task(20, 80, 100, "mid")}));
  const serve::ServeResponse inline_verdict = client.call(inline_admit);
  ASSERT_EQ(inline_verdict.status, serve::ServeStatus::kOk)
      << inline_verdict.error;
  EXPECT_TRUE(inline_verdict.applied);
  EXPECT_EQ(inline_verdict.residents, 3u);

  // Release the inline admit; query confirms the remaining pair.
  serve::ServeRequest release = make_request(serve::ServeOp::kRelease, 6);
  release.session = opened.session;
  release.release_ids = {inline_verdict.task_ids.at(0)};
  const serve::ServeResponse released = client.call(release);
  ASSERT_EQ(released.status, serve::ServeStatus::kOk) << released.error;
  EXPECT_TRUE(released.applied);
  EXPECT_EQ(released.residents, 2u);

  serve::ServeRequest query = make_request(serve::ServeOp::kQuery, 7);
  query.session = opened.session;
  const serve::ServeResponse queried = client.call(query);
  ASSERT_EQ(queried.status, serve::ServeStatus::kOk) << queried.error;
  EXPECT_TRUE(queried.schedulable);
  EXPECT_EQ(queried.residents, 2u);

  // Stats reflects the traffic so far (counters travel in the raw payload).
  const serve::ServeResponse stats =
      client.call(make_request(serve::ServeOp::kStats, 8));
  ASSERT_EQ(stats.status, serve::ServeStatus::kOk) << stats.error;
  EXPECT_NE(stats.raw.find("\"requests_enqueued\""), std::string::npos);
  EXPECT_NE(stats.raw.find("\"batch_size\""), std::string::npos);

  // Protocol-initiated shutdown: the daemon answers, drains, exits 0.
  const serve::ServeResponse bye =
      client.call(make_request(serve::ServeOp::kShutdown, 9));
  EXPECT_EQ(bye.status, serve::ServeStatus::kOk);
  EXPECT_EQ(daemon.wait_exit(), 0);
}

TEST(ServeLoopbackTest, RequestErrorsAreRecoverable) {
  Daemon daemon;
  serve::ServeClient client = daemon.connect();

  // Unknown session: error response, connection stays up.
  serve::ServeRequest query = make_request(serve::ServeOp::kQuery, 1);
  query.session = 42;
  const serve::ServeResponse err = client.call(query);
  EXPECT_EQ(err.status, serve::ServeStatus::kError);
  EXPECT_NE(err.error.find("unknown session"), std::string::npos);

  // Well-framed garbage integer (the lax-parsing bug class): a loud error
  // response — not a silently mangled request — and the stream stays usable.
  client.send_bytes(
      serve::encode_frame(R"({"op": "query", "seq": 2, "session": 4x2})"));
  const serve::ServeResponse parse_err = client.recv();
  EXPECT_EQ(parse_err.status, serve::ServeStatus::kError);

  const serve::ServeResponse pong =
      client.call(make_request(serve::ServeOp::kPing, 3));
  EXPECT_EQ(pong.status, serve::ServeStatus::kOk);
  EXPECT_EQ(pong.seq, 3u);
}

TEST(ServeLoopbackTest, FramingErrorClosesOnlyThatConnection) {
  Daemon daemon;
  serve::ServeClient bad = daemon.connect();
  serve::ServeClient good = daemon.connect();

  // Corrupt length prefix: one error response, then EOF on this connection.
  bad.send_bytes("banana\n");
  const serve::ServeResponse err = bad.recv();
  EXPECT_EQ(err.status, serve::ServeStatus::kError);
  EXPECT_THROW((void)bad.recv(), ContractViolation);

  // The other connection is unaffected.
  const serve::ServeResponse pong =
      good.call(make_request(serve::ServeOp::kPing, 1));
  EXPECT_EQ(pong.status, serve::ServeStatus::kOk);
}

TEST(ServeLoopbackTest, SigtermDrainsAndExitsZero) {
  Daemon daemon;
  serve::ServeClient client = daemon.connect();
  const serve::ServeResponse pong =
      client.call(make_request(serve::ServeOp::kPing, 1));
  ASSERT_EQ(pong.status, serve::ServeStatus::kOk);

  // SIGTERM: clean drain, exit 0, and the daemon closes the connection on
  // its way out (EOF here, not a hang).
  EXPECT_EQ(daemon.terminate(), 0);
  EXPECT_THROW((void)client.recv(), ContractViolation);
}

// ---- verdict parity with the in-process CLI replay -------------------------

/// A deterministic trace with accepts, a rejection, releases, and a swap:
/// three heavy constrained-deadline tasks fit m=2 only two at a time, so the
/// third admit is refused; the swap then trades one heavy for two lights.
OnlineTrace make_parity_trace() {
  OnlineTrace trace;
  trace.processors = 2;
  const DagTask heavy0 = make_task(50, 60, 100, "heavy0");
  const DagTask heavy1 = make_task(50, 60, 100, "heavy1");
  const DagTask heavy2 = make_task(50, 60, 100, "heavy2");
  const DagTask light0 = make_task(5, 60, 100, "light0");
  const DagTask light1 = make_task(5, 60, 100, "light1");

  OnlineEvent admit;
  admit.kind = OnlineEvent::Kind::kAdmit;
  admit.admits = {heavy0};
  trace.events.push_back(admit);
  admit.admits = {heavy1};
  trace.events.push_back(admit);
  admit.admits = {heavy2};  // refused: no room on m=2
  trace.events.push_back(admit);
  admit.admits = {light0};
  trace.events.push_back(admit);

  OnlineEvent release;
  release.kind = OnlineEvent::Kind::kRelease;
  release.release_ids = {0};  // heavy0 departs
  trace.events.push_back(release);

  OnlineEvent swap;
  swap.kind = OnlineEvent::Kind::kSwap;
  swap.release_ids = {1};  // heavy1 out ...
  swap.admits = {light1};  // ... light1 in, atomically
  trace.events.push_back(swap);

  admit.admits = {heavy2};  // now it fits
  trace.events.push_back(admit);
  return trace;
}

TEST(ServeLoopbackTest, TraceReplayMatchesCliVerdicts) {
  const std::string dir = ::testing::TempDir();
  const std::string trace_path = dir + "/serve_parity.trace";
  const std::string cli_json_path = dir + "/serve_parity_cli.json";
  const std::string verdicts_a = dir + "/serve_parity_a.jsonl";
  const std::string verdicts_b = dir + "/serve_parity_b.jsonl";

  const OnlineTrace trace = make_parity_trace();
  {
    std::ofstream out(trace_path);
    out << write_online_trace(trace);
  }

  // In-process reference replay.
  ASSERT_EQ(std::system((kCliBin + " --online=" + trace_path +
                         " --json > " + cli_json_path + " 2>/dev/null")
                            .c_str()),
            0);

  // Daemon replay, twice against fresh daemons: the verdict files must be
  // byte-identical (replay determinism through the whole serve stack).
  for (const std::string* path : {&verdicts_a, &verdicts_b}) {
    Daemon daemon;
    ASSERT_EQ(std::system((kLoadgenBin + " --socket=" +
                           daemon.socket_path() + " --trace=" + trace_path +
                           " --verdicts-out=" + *path + " >/dev/null 2>&1")
                              .c_str()),
              0);
  }
  const std::string bytes_a = read_file(verdicts_a);
  ASSERT_FALSE(bytes_a.empty());
  EXPECT_EQ(bytes_a, read_file(verdicts_b));

  // Event-for-event parity with the CLI: kind, applied, schedulable, and
  // the resident count after every event.
  const testjson::ValuePtr cli = testjson::parse(read_file(cli_json_path));
  const auto& per_event = cli->at("per_event");
  ASSERT_TRUE(per_event.is_array());
  ASSERT_EQ(per_event.array.size(), trace.events.size());

  std::istringstream verdict_lines(bytes_a);
  std::string line;
  std::size_t index = 0;
  bool saw_reject = false;
  while (std::getline(verdict_lines, line)) {
    ASSERT_LT(index, per_event.array.size());
    const testjson::ValuePtr daemon_verdict = testjson::parse(line);
    const testjson::Value& cli_verdict = *per_event.array[index];
    EXPECT_EQ(daemon_verdict->at("event").string,
              cli_verdict.at("event").string)
        << "event " << index;
    EXPECT_EQ(daemon_verdict->at("applied").number != 0,
              cli_verdict.at("applied").boolean)
        << "event " << index;
    EXPECT_EQ(daemon_verdict->at("schedulable").number != 0,
              cli_verdict.at("schedulable").boolean)
        << "event " << index;
    EXPECT_EQ(daemon_verdict->at("residents").number,
              cli_verdict.at("residents").number)
        << "event " << index;
    saw_reject |= daemon_verdict->at("applied").number == 0;
    ++index;
  }
  EXPECT_EQ(index, trace.events.size());
  // The trace is only a meaningful parity probe if it exercises both
  // verdict polarities.
  EXPECT_TRUE(saw_reject);
}

TEST(ServeLoopbackTest, VerdictsAreByteIdenticalWithObservabilityOn) {
  // The PR-4 contract, extended to the serve pipeline: tracing (with
  // sample=1, every request stamped and emitting spans) and an aggressive
  // stats-series cadence must not perturb a single verdict byte. Replay the
  // parity trace against a plain daemon and a fully-instrumented one; the
  // verdict files must be byte-identical.
  const std::string dir = ::testing::TempDir();
  const std::string trace_path = dir + "/serve_obs_parity.trace";
  const std::string verdicts_off = dir + "/serve_obs_off.jsonl";
  const std::string verdicts_on = dir + "/serve_obs_on.jsonl";
  const std::string chrome_trace = dir + "/serve_obs_parity_trace.json";
  {
    std::ofstream out(trace_path);
    out << write_online_trace(make_parity_trace());
  }

  {
    Daemon plain({"--stats-interval-ms=0"});
    ASSERT_EQ(std::system((kLoadgenBin + " --socket=" + plain.socket_path() +
                           " --trace=" + trace_path + " --verdicts-out=" +
                           verdicts_off + " >/dev/null 2>&1")
                              .c_str()),
              0);
  }
  {
    Daemon traced({"--trace-out=" + chrome_trace, "--trace-sample=1",
                   "--stats-interval-ms=10", "--stats-ring=8"});
    ASSERT_EQ(std::system((kLoadgenBin + " --socket=" +
                           traced.socket_path() + " --trace=" + trace_path +
                           " --verdicts-out=" + verdicts_on +
                           " >/dev/null 2>&1")
                              .c_str()),
              0);
  }
  const std::string off_bytes = read_file(verdicts_off);
  ASSERT_FALSE(off_bytes.empty());
  EXPECT_EQ(off_bytes, read_file(verdicts_on));
}

// ---- backpressure ----------------------------------------------------------

TEST(ServeLoopbackTest, FullQueueShedsRetryAfterAndRecovers) {
  // Tiny queue, one request per batch: a stalled worker makes the queue
  // fill almost immediately.
  Daemon daemon({"--queue-depth=4", "--max-batch=1", "--threads=1",
                 "--batch-timeout-us=0"});
  serve::ServeClient client = daemon.connect();

  // Occupy the dispatcher, then flood. The stall response arrives first
  // (FIFO), then a mix of ok and RETRY_AFTER for the pings.
  serve::ServeRequest stall = make_request(serve::ServeOp::kStall, 0);
  stall.stall_us = 200'000;
  std::string burst = serve::encode_frame(serve::encode_serve_request(stall));
  const int kPings = 64;
  for (int i = 1; i <= kPings; ++i) {
    burst += serve::encode_frame(
        serve::encode_serve_request(make_request(serve::ServeOp::kPing, i)));
  }
  client.send_bytes(burst);

  int ok = 0;
  int shed = 0;
  for (int i = 0; i <= kPings; ++i) {
    const serve::ServeResponse resp = client.recv();
    if (resp.seq == 0) {
      EXPECT_EQ(resp.status, serve::ServeStatus::kOk);  // the stall itself
      continue;
    }
    switch (resp.status) {
      case serve::ServeStatus::kOk: ++ok; break;
      case serve::ServeStatus::kRetryAfter: ++shed; break;
      case serve::ServeStatus::kError:
        FAIL() << "unexpected error: " << resp.error;
    }
  }
  EXPECT_EQ(ok + shed, kPings);
  // The queue (depth 4) cannot hold a 64-ping burst behind a 200ms stall.
  EXPECT_GE(shed, 1) << "queue never filled; backpressure untested";
  EXPECT_GE(ok, 1) << "nothing got through";

  // RETRY_AFTER is advisory, not fatal: the same connection works again.
  const serve::ServeResponse pong =
      client.call(make_request(serve::ServeOp::kPing, 999));
  EXPECT_EQ(pong.status, serve::ServeStatus::kOk);
  EXPECT_EQ(pong.seq, 999u);
}

}  // namespace
}  // namespace fedcons
