// Tests for ASCII Gantt rendering.
#include "fedcons/sim/gantt.h"

#include <gtest/gtest.h>

#include "fedcons/core/builders.h"
#include "fedcons/listsched/list_scheduler.h"
#include "fedcons/util/check.h"

namespace fedcons {
namespace {

TEST(GanttTest, RendersTemplateScheduleRows) {
  // v0(2) on P0 [0,2), v1(3) on P1 [0,3), v2(1) on P0 [3,4).
  TemplateSchedule s(2, {{0, 0, 0, 2}, {1, 1, 0, 3}, {2, 0, 3, 4}});
  std::string out = render_gantt(s);
  EXPECT_NE(out.find("P0 |00-2|"), std::string::npos) << out;
  EXPECT_NE(out.find("P1 |111-|"), std::string::npos) << out;
  EXPECT_NE(out.find("t=0..4"), std::string::npos);
}

TEST(GanttTest, IdleProcessorsRenderAsDashes) {
  TemplateSchedule s(3, {{0, 0, 0, 2}});
  std::string out = render_gantt(s);
  EXPECT_NE(out.find("P1 |--|"), std::string::npos) << out;
  EXPECT_NE(out.find("P2 |--|"), std::string::npos) << out;
}

TEST(GanttTest, ScalesLongWindows) {
  // 1000-tick job with max_width 10: 100 ticks per char.
  TemplateSchedule s(1, {{0, 0, 0, 1000}});
  GanttOptions opt;
  opt.max_width = 10;
  std::string out = render_gantt(s, opt);
  EXPECT_NE(out.find("P0 |0000000000|"), std::string::npos) << out;
  EXPECT_NE(out.find("(100 ticks/char"), std::string::npos);
}

TEST(GanttTest, GlyphsWrapAtBase36) {
  ExecutionTrace tr;
  tr.add(0, 10, 0, 1);   // 'a'
  tr.add(0, 36, 1, 2);   // wraps to '0'
  std::string out = render_gantt(tr, 1);
  EXPECT_NE(out.find("P0 |a0|"), std::string::npos) << out;
}

TEST(GanttTest, TraceWindowOptions) {
  ExecutionTrace tr;
  tr.add(0, 1, 0, 4);
  tr.add(0, 2, 10, 12);
  GanttOptions opt;
  opt.start = 9;
  opt.end = 13;
  std::string out = render_gantt(tr, 1, opt);
  EXPECT_NE(out.find("P0 |-22-|"), std::string::npos) << out;
}

TEST(GanttTest, EmptyInputsHandled) {
  ExecutionTrace tr;
  EXPECT_EQ(render_gantt(tr, 0), "(empty schedule)\n");
  std::string padded = render_gantt(tr, 2);
  EXPECT_NE(padded.find("P0 |"), std::string::npos);
}

TEST(GanttTest, PaperExampleRendersAllJobs) {
  DagTask t = make_paper_example_task();
  TemplateSchedule s = list_schedule(t.graph(), 2);
  std::string out = render_gantt(s);
  for (char c : {'0', '1', '2', '3', '4'}) {
    EXPECT_NE(out.find(c, out.find('|')), std::string::npos)
        << "missing job " << c << " in:\n" << out;
  }
}

TEST(GanttTest, RejectsDegenerateWidth) {
  TemplateSchedule s(1, {{0, 0, 0, 5}});
  GanttOptions opt;
  opt.max_width = 3;
  EXPECT_THROW(render_gantt(s, opt), ContractViolation);
}

}  // namespace
}  // namespace fedcons
