// Backend-equivalence suite for the data-parallel analysis core (DESIGN.md
// §13).
//
// The dispatch contract says every kernel is a pure function of its inputs,
// independent of the backend that computed it. These tests pin that contract
// at three levels:
//   * kernel level — scalar and AVX2 variants of dbf_scan, the fill/copy
//     primitives, and the batched xoshiro core produce bit-identical outputs
//     on identical inputs (fuzzed);
//   * certification level — a certain DBF* lane class (kFit / kReject) always
//     agrees with the exact rational comparison, audited at every aggregate
//     breakpoint ±2 (the band where slope changes make rounding most likely
//     to matter);
//   * verdict level — PARTITION and MINPROCS runs forced onto each backend
//     produce identical results and identical perf-counter deltas.
// Plus the dispatcher itself: FEDCONS_FORCE_BACKEND and force_backend() pins
// are honored and reversible.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <limits>
#include <optional>
#include <string>
#include <vector>

#include "fedcons/analysis/dbf.h"
#include "fedcons/core/sequential_task.h"
#include "fedcons/federated/minprocs.h"
#include "fedcons/federated/partition.h"
#include "fedcons/gen/dag_gen.h"
#include "fedcons/simd/batch_rng.h"
#include "fedcons/simd/dbf_kernel.h"
#include "fedcons/simd/dispatch.h"
#include "fedcons/simd/fill.h"
#include "fedcons/util/perf_counters.h"
#include "fedcons/util/rng.h"

namespace fedcons {
namespace {

using simd::DbfCand;
using simd::LaneClass;
using simd::SimdBackend;

/// Restores the dispatcher (pin dropped, FEDCONS_FORCE_BACKEND restored to
/// its pre-test value) no matter how a test exits. The forced-backend smoke
/// runs execute this whole binary with the variable set, so restoring the
/// exact prior value — not just unsetting — keeps those runs honest.
class DispatchGuard {
 public:
  DispatchGuard() {
    const char* v = std::getenv("FEDCONS_FORCE_BACKEND");
    if (v != nullptr) saved_ = v;
  }
  ~DispatchGuard() {
    if (saved_.has_value()) {
      ::setenv("FEDCONS_FORCE_BACKEND", saved_->c_str(), 1);
    } else {
      ::unsetenv("FEDCONS_FORCE_BACKEND");
    }
    simd::force_backend(std::nullopt);
  }

 private:
  std::optional<std::string> saved_;
};

SimdBackend cpu_default_backend() {
  return simd::backend_supported(SimdBackend::kAvx2) ? SimdBackend::kAvx2
                                                     : SimdBackend::kScalar;
}

TEST(DispatchTest, EnvOverrideHonored) {
  DispatchGuard guard;
  ::setenv("FEDCONS_FORCE_BACKEND", "scalar", 1);
  simd::force_backend(std::nullopt);  // drop any pin; re-resolve from env
  EXPECT_EQ(simd::active_backend(), SimdBackend::kScalar);

  ::setenv("FEDCONS_FORCE_BACKEND", "avx2", 1);
  simd::force_backend(std::nullopt);
  // Forcing avx2 on a CPU without it falls back to scalar (with a warning).
  EXPECT_EQ(simd::active_backend(), cpu_default_backend());

  ::setenv("FEDCONS_FORCE_BACKEND", "sse9", 1);
  simd::force_backend(std::nullopt);
  EXPECT_EQ(simd::active_backend(), cpu_default_backend());

  ::unsetenv("FEDCONS_FORCE_BACKEND");
  simd::force_backend(std::nullopt);
  EXPECT_EQ(simd::active_backend(), cpu_default_backend());
}

TEST(DispatchTest, ForcedPinBeatsEnvUntilDropped) {
  DispatchGuard guard;
  ::setenv("FEDCONS_FORCE_BACKEND", "scalar", 1);
  simd::force_backend(std::nullopt);
  ASSERT_EQ(simd::active_backend(), SimdBackend::kScalar);

  const SimdBackend other = cpu_default_backend();
  simd::force_backend(other);
  EXPECT_EQ(simd::active_backend(), other);  // pin wins over env

  simd::force_backend(std::nullopt);  // drop → env wins again
  EXPECT_EQ(simd::active_backend(), SimdBackend::kScalar);
}

TEST(DispatchTest, ScalarAlwaysSupported) {
  EXPECT_TRUE(simd::backend_supported(SimdBackend::kScalar));
  EXPECT_STREQ(simd::to_string(SimdBackend::kScalar), "scalar");
  EXPECT_STREQ(simd::to_string(SimdBackend::kAvx2), "avx2");
}

// ---------------------------------------------------------------------------
// Term builders
// ---------------------------------------------------------------------------

TEST(DbfTermTest, AffineTermMatchesDefinition) {
  // C=4, D=10, T=5: b = C/T, a = C − b·D, mag = C + b·D — computed through
  // volatile intermediates so this TU cannot FMA-contract what the kernel TU
  // deliberately computes contraction-free.
  const DbfCand cand = simd::dbf_affine_term(4, 10, 5);
  volatile double b = 4.0 / 5.0;
  volatile double bd = b * 10.0;
  volatile double a = 4.0 - bd;
  volatile double mag = 4.0 + bd;
  EXPECT_EQ(cand.b, b);
  EXPECT_EQ(cand.a, a);
  EXPECT_EQ(cand.mag, mag);
}

TEST(DbfTermTest, ConstantAndUtilTerms) {
  const DbfCand c = simd::dbf_constant_term(7);
  EXPECT_EQ(c.a, 7.0);
  EXPECT_EQ(c.b, 0.0);
  EXPECT_EQ(c.mag, 7.0);
  EXPECT_EQ(simd::util_term(1, 4), 0.25);
  EXPECT_EQ(simd::util_term(3, 2), 1.5);
}

TEST(DbfTermTest, OutOfRangeParametersArePoisoned) {
  const long long big = simd::kDbfMaxMagnitude + 1;
  EXPECT_TRUE(std::isinf(simd::dbf_affine_term(1, big, big).mag));
  EXPECT_TRUE(std::isinf(simd::dbf_affine_term(big, 1, 1).mag));
  EXPECT_TRUE(std::isinf(simd::dbf_constant_term(big).mag));
  EXPECT_TRUE(std::isinf(simd::util_term(big, 1)));
  EXPECT_TRUE(std::isinf(simd::util_term(1, big)));
}

// ---------------------------------------------------------------------------
// Scalar vs AVX2 dbf_scan: bit-identical classification
// ---------------------------------------------------------------------------

struct ScanStep {
  int stop;
  LaneClass cls;
};

/// Drive one backend over [0, n), restarting after every non-fit lane, so
/// every lane's classification is observed (not just the first stop).
template <typename ScanFn>
std::vector<ScanStep> full_scan(ScanFn scan, const std::vector<double>& bp,
                                const std::vector<double>& A,
                                const std::vector<double>& B,
                                const std::vector<double>& M, DbfCand cand,
                                double eps_n) {
  std::vector<ScanStep> steps;
  const int n = static_cast<int>(bp.size());
  int i = 0;
  while (i < n) {
    LaneClass cls = LaneClass::kFit;
    const int stop =
        scan(bp.data(), A.data(), B.data(), M.data(), i, n, cand, eps_n, &cls);
    steps.push_back({stop, cls});
    if (stop == n) break;
    i = stop + 1;
  }
  return steps;
}

TEST(DbfScanTest, BackendsClassifyBitIdentically) {
  if (!simd::backend_supported(SimdBackend::kAvx2)) {
    GTEST_SKIP() << "CPU lacks AVX2";
  }
  Rng rng(0xd15f'a7c4u);
  for (int round = 0; round < 40; ++round) {
    const int n = static_cast<int>(rng.uniform_int(1, 200));
    std::vector<double> bp(static_cast<std::size_t>(n)),
        A(static_cast<std::size_t>(n)), B(static_cast<std::size_t>(n)),
        M(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
      const double t = static_cast<double>(rng.uniform_int(1, 1'000'000));
      bp[static_cast<std::size_t>(i)] = t;
      const int mode = static_cast<int>(rng.uniform_int(0, 9));
      if (mode == 0) {
        // Exact tie: demand == bp → must classify kUncertain on both.
        A[static_cast<std::size_t>(i)] = t;
        B[static_cast<std::size_t>(i)] = 0.0;
        M[static_cast<std::size_t>(i)] = t;
      } else if (mode == 1) {
        // Poisoned magnitude → kUncertain on both.
        A[static_cast<std::size_t>(i)] = t * 0.5;
        B[static_cast<std::size_t>(i)] = 0.25;
        M[static_cast<std::size_t>(i)] =
            std::numeric_limits<double>::infinity();
      } else {
        // Demand near bp: uniform in [0.8, 1.2]·bp split across A and B·bp.
        const double frac = rng.uniform_real(0.8, 1.2);
        const double split = rng.uniform01();
        A[static_cast<std::size_t>(i)] = t * frac * split;
        B[static_cast<std::size_t>(i)] = frac * (1.0 - split);
        M[static_cast<std::size_t>(i)] = t * frac + t;
      }
    }
    const DbfCand cand = simd::dbf_affine_term(
        rng.uniform_int(1, 100), rng.uniform_int(1, 500),
        rng.uniform_int(1, 500));
    const double eps_n = simd::kDbfEps * static_cast<double>(n + 16);

    const auto scalar = full_scan(simd::detail::dbf_scan_scalar, bp, A, B, M,
                                  cand, eps_n);
    const auto avx2 =
        full_scan(simd::detail::dbf_scan_avx2, bp, A, B, M, cand, eps_n);
    ASSERT_EQ(scalar.size(), avx2.size()) << "round " << round;
    for (std::size_t s = 0; s < scalar.size(); ++s) {
      EXPECT_EQ(scalar[s].stop, avx2[s].stop) << "round " << round;
      EXPECT_EQ(scalar[s].cls, avx2[s].cls) << "round " << round;
    }

    // The dispatched entry point follows whichever backend is pinned.
    DispatchGuard guard;
    for (SimdBackend b : {SimdBackend::kScalar, SimdBackend::kAvx2}) {
      simd::force_backend(b);
      const auto got =
          full_scan(simd::dbf_scan, bp, A, B, M, cand, eps_n);
      ASSERT_EQ(got.size(), scalar.size());
      for (std::size_t s = 0; s < got.size(); ++s) {
        EXPECT_EQ(got[s].stop, scalar[s].stop);
        EXPECT_EQ(got[s].cls, scalar[s].cls);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Certification audit: certain classes agree with exact rational comparison
// ---------------------------------------------------------------------------

/// DBF*(cand, bp) exactly: C + (C/T)·(bp − D) for the affine form (bp ≥ D),
/// the constant C for the paper-literal form.
BigRational exact_cand_term(const SporadicTask& t, Time bp, bool affine) {
  if (!affine) return BigRational(t.wcet);
  BigInt num = BigInt(t.wcet) * BigInt(t.period + (bp - t.deadline));
  return BigRational(std::move(num), BigInt(t.period));
}

/// Classify one breakpoint exactly as partition_state.cpp's probe does: gather
/// the aggregate's double prefix at bp, run the 1-lane kernel, return the
/// lane class.
LaneClass classify_one(const DbfStarAggregate& agg, Time bp, DbfCand cand) {
  const auto dds = agg.distinct_deadlines();
  const int k0 =
      static_cast<int>(std::upper_bound(dds.begin(), dds.end(), bp) -
                       dds.begin()) -
      1;
  double lane_bp = static_cast<double>(bp);
  double a = 0.0, b = 0.0, m = 0.0;
  if (k0 >= 0) {
    a = agg.soa_prefix_a()[static_cast<std::size_t>(k0)];
    b = agg.soa_prefix_b()[static_cast<std::size_t>(k0)];
    m = agg.soa_prefix_mag()[static_cast<std::size_t>(k0)];
  }
  if (bp < 0 || bp > simd::kDbfMaxMagnitude) {
    m = std::numeric_limits<double>::infinity();
  }
  const double eps_n = simd::kDbfEps * static_cast<double>(agg.size() + 16);
  LaneClass cls = LaneClass::kFit;
  const int stop =
      simd::dbf_scan(&lane_bp, &a, &b, &m, 0, 1, cand, eps_n, &cls);
  return stop == 1 ? LaneClass::kFit : cls;
}

TEST(DbfCertificationTest, CertainClassesAgreeWithExactAtEveryBreakpointBand) {
  Rng rng(0xbadd1u);
  int certain = 0, uncertain = 0;
  for (int round = 0; round < 60; ++round) {
    DbfStarAggregate agg;
    std::vector<SporadicTask> members;
    const int n = static_cast<int>(rng.uniform_int(1, 24));
    for (int i = 0; i < n; ++i) {
      const Time period = rng.uniform_int(2, 4000);
      const Time deadline = rng.uniform_int(1, period);
      const Time wcet = rng.uniform_int(1, deadline);
      members.emplace_back(wcet, deadline, period);
      agg.insert(members.back());
    }
    const Time cper = rng.uniform_int(2, 4000);
    const Time cdl = rng.uniform_int(1, cper);
    const SporadicTask cand_task(rng.uniform_int(1, cdl), cdl, cper);

    std::vector<Time> band;
    for (Time d : agg.distinct_deadlines()) {
      for (Time off = -2; off <= 2; ++off) band.push_back(d + off);
    }
    for (Time off = -2; off <= 2; ++off) band.push_back(cdl + off);

    for (bool affine : {true, false}) {
      const DbfCand cand =
          affine ? simd::dbf_affine_term(cand_task.wcet, cand_task.deadline,
                                         cand_task.period)
                 : simd::dbf_constant_term(cand_task.wcet);
      for (Time bp : band) {
        if (bp < (affine ? cdl : Time{0})) continue;
        const LaneClass cls = classify_one(agg, bp, cand);
        const BigRational exact =
            agg.sum_at_uncounted(bp) + exact_cand_term(cand_task, bp, affine);
        const bool fits_exactly = exact <= BigRational(bp);
        if (cls == LaneClass::kFit) {
          ++certain;
          EXPECT_TRUE(fits_exactly)
              << "kFit but exact demand exceeds bp=" << bp;
        } else if (cls == LaneClass::kReject) {
          ++certain;
          EXPECT_FALSE(fits_exactly)
              << "kReject but exact demand fits at bp=" << bp;
        } else {
          ++uncertain;
        }
      }
    }
  }
  // The kernel must actually decide things for well-scaled inputs — an
  // always-uncertain kernel would pass the agreement checks vacuously.
  EXPECT_GT(certain, uncertain * 10);
}

// ---------------------------------------------------------------------------
// Batched RNG: lane streams ≡ Rng(seed)
// ---------------------------------------------------------------------------

TEST(BatchRngTest, Xoshiro4LanesMatchRngStreams) {
  const std::uint64_t seeds[4] = {1, 0xdeadbeef, 42, ~std::uint64_t{0}};
  simd::Xoshiro4 xo(seeds);
  constexpr int kN = 1000;
  std::vector<std::uint64_t> lanes[4];
  std::uint64_t* out[4];
  for (int l = 0; l < 4; ++l) {
    lanes[l].resize(kN);
    out[l] = lanes[l].data();
  }
  xo.fill(out, kN);
  for (int l = 0; l < 4; ++l) {
    Rng ref(seeds[l]);
    for (int i = 0; i < kN; ++i) {
      ASSERT_EQ(lanes[l][static_cast<std::size_t>(i)], ref.next_u64())
          << "lane " << l << " draw " << i;
    }
  }
}

TEST(BatchRngTest, ScalarAndAvx2CoresEmitIdenticalBlocks) {
  if (!simd::backend_supported(SimdBackend::kAvx2)) {
    GTEST_SKIP() << "CPU lacks AVX2";
  }
  // Hand-seed each lane through the shared rule, laid out SoA
  // (s[word][lane]) so both cores start from identical state.
  std::uint64_t s_scalar[4][4];
  for (int l = 0; l < 4; ++l) {
    std::uint64_t s[4];
    detail::xoshiro_seed(static_cast<std::uint64_t>(l) + 99, s);
    for (int w = 0; w < 4; ++w) s_scalar[w][l] = s[w];
  }
  std::uint64_t s_avx2[4][4];
  std::copy(&s_scalar[0][0], &s_scalar[0][0] + 16, &s_avx2[0][0]);

  constexpr int kN = 257;  // odd length: exercises any tail handling
  std::vector<std::uint64_t> a[4], b[4];
  std::uint64_t* pa[4];
  std::uint64_t* pb[4];
  for (int l = 0; l < 4; ++l) {
    a[l].resize(kN);
    b[l].resize(kN);
    pa[l] = a[l].data();
    pb[l] = b[l].data();
  }
  simd::detail::xo4_fill_scalar(s_scalar, pa, kN);
  simd::detail::xo4_fill_avx2(s_avx2, pb, kN);
  for (int l = 0; l < 4; ++l) EXPECT_EQ(a[l], b[l]) << "lane " << l;
  EXPECT_TRUE(std::equal(&s_scalar[0][0], &s_scalar[0][0] + 16,
                         &s_avx2[0][0]));  // final states advance identically
}

TEST(BatchRngTest, UnevenLaneConsumptionStaysBitIdentical) {
  const std::uint64_t seeds[4] = {7, 7, 1234, 0};  // equal seeds allowed
  simd::BatchRng batch(seeds, /*block=*/32);
  Rng ref[4] = {Rng(seeds[0]), Rng(seeds[1]), Rng(seeds[2]), Rng(seeds[3])};
  Rng sched(99);
  int drawn[4] = {};
  for (int step = 0; step < 20'000; ++step) {
    const int lane = static_cast<int>(sched.uniform_int(0, 3));
    // Skew consumption hard: lane 0 draws in bursts, lane 3 rarely.
    const int burst = lane == 0 ? 7 : (lane == 3 && step % 5 != 0 ? 0 : 1);
    for (int k = 0; k < burst; ++k) {
      ASSERT_EQ(batch.draw(lane), ref[lane].next_u64())
          << "lane " << lane << " draw " << drawn[lane];
      ++drawn[lane];
    }
  }
}

TEST(BatchRngTest, LaneRngDistributionsMatchRng) {
  const std::uint64_t seeds[4] = {11, 22, 33, 44};
  simd::BatchRng batch(seeds);
  simd::LaneRng lane(batch, 2);
  Rng ref(seeds[2]);
  for (int i = 0; i < 2000; ++i) {
    ASSERT_EQ(lane.uniform_int(-5, 1000), ref.uniform_int(-5, 1000));
    ASSERT_EQ(lane.uniform01(), ref.uniform01());
    ASSERT_EQ(lane.log_uniform_real(1.0, 1e6), ref.log_uniform_real(1.0, 1e6));
    ASSERT_EQ(lane.bernoulli(0.3), ref.bernoulli(0.3));
  }
  std::vector<int> va(37), vb(37);
  for (int i = 0; i < 37; ++i) va[static_cast<std::size_t>(i)] =
      vb[static_cast<std::size_t>(i)] = i;
  lane.shuffle(va);
  ref.shuffle(vb);
  EXPECT_EQ(va, vb);
}

// ---------------------------------------------------------------------------
// Fill/copy primitives
// ---------------------------------------------------------------------------

TEST(FillTest, BackendsWriteIdenticalBytesAndRespectBounds) {
  const bool have_avx2 = simd::backend_supported(SimdBackend::kAvx2);
  Rng rng(0xf111u);
  for (std::size_t n : {0u, 1u, 3u, 7u, 8u, 31u, 64u, 100u, 1024u}) {
    for (std::size_t off : {0u, 1u, 3u}) {
      // u32 fill + copy
      {
        std::vector<std::uint32_t> a(n + off + 8, 0xcccccccc);
        std::vector<std::uint32_t> b = a, expect = a;
        std::vector<std::uint32_t> src(n);
        for (auto& v : src) {
          v = static_cast<std::uint32_t>(rng.next_u64());
        }
        const std::uint32_t fill = 0x1234abcd;
        std::fill_n(expect.data() + off, n, fill);
        simd::detail::fill_u32_scalar(a.data() + off, n, fill);
        EXPECT_EQ(a, expect) << "fill_u32 scalar n=" << n << " off=" << off;
        if (have_avx2) {
          simd::detail::fill_u32_avx2(b.data() + off, n, fill);
          EXPECT_EQ(b, expect) << "fill_u32 avx2 n=" << n << " off=" << off;
        }
        std::copy_n(src.data(), n, expect.data() + off);
        simd::detail::copy_u32_scalar(a.data() + off, src.data(), n);
        EXPECT_EQ(a, expect) << "copy_u32 scalar n=" << n;
        if (have_avx2) {
          simd::detail::copy_u32_avx2(b.data() + off, src.data(), n);
          EXPECT_EQ(b, expect) << "copy_u32 avx2 n=" << n;
        }
      }
      // u64 fill
      {
        std::vector<std::uint64_t> a(n + off + 8, 0xdddddddddddddddd);
        std::vector<std::uint64_t> b = a, expect = a;
        const std::uint64_t fill = rng.next_u64();
        std::fill_n(expect.data() + off, n, fill);
        simd::detail::fill_u64_scalar(a.data() + off, n, fill);
        EXPECT_EQ(a, expect) << "fill_u64 scalar n=" << n << " off=" << off;
        if (have_avx2) {
          simd::detail::fill_u64_avx2(b.data() + off, n, fill);
          EXPECT_EQ(b, expect) << "fill_u64 avx2 n=" << n << " off=" << off;
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Verdict-level sweep: PARTITION and MINPROCS under each forced backend
// ---------------------------------------------------------------------------

std::vector<SporadicTask> random_sequential_tasks(Rng& rng, int n) {
  std::vector<SporadicTask> tasks;
  tasks.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    const Time period = rng.uniform_int(5, 2000);
    const Time deadline = rng.uniform_int(2, period);
    const Time wcet = rng.uniform_int(1, std::max<Time>(1, deadline / 2));
    tasks.emplace_back(wcet, deadline, period);
  }
  return tasks;
}

TEST(BackendSweepTest, PartitionVerdictsAndCountersInvariant) {
  DispatchGuard guard;
  std::vector<SimdBackend> backends{SimdBackend::kScalar};
  if (simd::backend_supported(SimdBackend::kAvx2)) {
    backends.push_back(SimdBackend::kAvx2);
  }
  for (PartitionVariant variant :
       {PartitionVariant::kFull, PartitionVariant::kPaperLiteral}) {
    Rng rng(0x5eed'0000u + static_cast<std::uint64_t>(variant));
    for (int trial = 0; trial < 40; ++trial) {
      const auto tasks =
          random_sequential_tasks(rng, static_cast<int>(rng.uniform_int(1, 20)));
      const int m = static_cast<int>(rng.uniform_int(1, 6));
      PartitionOptions options;
      options.variant = variant;

      std::optional<PartitionResult> first;
      std::optional<PerfCounters> first_delta;
      for (SimdBackend b : backends) {
        simd::force_backend(b);
        const PerfCounters before = perf_counters();
        const PartitionResult r = partition_tasks(tasks, m, options);
        const PerfCounters delta = perf_counters() - before;
        if (!first.has_value()) {
          first = r;
          first_delta = delta;
          continue;
        }
        EXPECT_EQ(r.success, first->success) << "trial " << trial;
        EXPECT_EQ(r.assignment, first->assignment) << "trial " << trial;
        EXPECT_EQ(r.failed_task, first->failed_task) << "trial " << trial;
        EXPECT_EQ(delta, *first_delta)
            << "perf-counter delta diverged on trial " << trial;
      }
    }
  }
}

TEST(BackendSweepTest, MinprocsVerdictsAndCountersInvariant) {
  DispatchGuard guard;
  std::vector<SimdBackend> backends{SimdBackend::kScalar};
  if (simd::backend_supported(SimdBackend::kAvx2)) {
    backends.push_back(SimdBackend::kAvx2);
  }
  Rng rng(0xfeedu);
  for (int trial = 0; trial < 30; ++trial) {
    LayeredDagParams params;
    params.max_layers = 5;
    params.max_width = 5;
    params.max_wcet = 10;
    Dag g = generate_layered_dag(rng, params);
    const Time deadline = rng.uniform_int(g.len(), g.vol());
    DagTask task(std::move(g), deadline, deadline + 10);
    const int budget = static_cast<int>(rng.uniform_int(0, 12));

    std::optional<int> first_mu;
    bool first_set = false;
    std::optional<PerfCounters> first_delta;
    for (SimdBackend b : backends) {
      simd::force_backend(b);
      const PerfCounters before = perf_counters();
      const auto r = minprocs(task, budget);
      const PerfCounters delta = perf_counters() - before;
      const std::optional<int> mu =
          r.has_value() ? std::optional<int>(r->processors) : std::nullopt;
      if (!first_set) {
        first_mu = mu;
        first_delta = delta;
        first_set = true;
        continue;
      }
      EXPECT_EQ(mu, first_mu) << "trial " << trial;
      EXPECT_EQ(delta, *first_delta) << "trial " << trial;
    }
  }
}

}  // namespace
}  // namespace fedcons
