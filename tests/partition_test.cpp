// Tests for Algorithm PARTITION (paper, Figure 4) and its variants.
#include "fedcons/federated/partition.h"

#include <gtest/gtest.h>

#include <vector>

#include "fedcons/analysis/edf_uniproc.h"
#include "fedcons/gen/uunifast.h"
#include "fedcons/util/check.h"
#include "fedcons/util/perf_counters.h"
#include "fedcons/util/rng.h"

namespace fedcons {
namespace {

TEST(PartitionTest, EmptySucceedsEvenOnZeroProcessors) {
  EXPECT_TRUE(partition_tasks({}, 0).success);
  EXPECT_TRUE(partition_tasks({}, 3).success);
}

TEST(PartitionTest, NonEmptyOnZeroProcessorsFails) {
  std::vector<SporadicTask> tasks{SporadicTask(1, 10, 10)};
  auto r = partition_tasks(tasks, 0);
  EXPECT_FALSE(r.success);
  EXPECT_EQ(r.failed_task, 0u);
}

TEST(PartitionTest, SingleTaskSingleProcessor) {
  std::vector<SporadicTask> tasks{SporadicTask(5, 10, 20)};
  auto r = partition_tasks(tasks, 1);
  ASSERT_TRUE(r.success);
  ASSERT_EQ(r.assignment.size(), 1u);
  EXPECT_EQ(r.assignment[0], std::vector<std::size_t>{0});
}

TEST(PartitionTest, FirstFitPacksInDeadlineOrder) {
  // Two tasks each filling a processor at their deadline instant, plus a
  // third that must go to the second processor.
  std::vector<SporadicTask> tasks{SporadicTask(6, 10, 20),
                                  SporadicTask(5, 10, 20),
                                  SporadicTask(4, 10, 20)};
  auto r = partition_tasks(tasks, 2);
  ASSERT_TRUE(r.success);
  // DM order = input order (equal deadlines, stable). FF: τ0 → p0 (6 ≤ 10),
  // τ1 → p0? 6+5 = 11 > 10 → p1; τ2 → p0? 6+4 = 10 ≤ 10 → p0.
  EXPECT_EQ(r.assignment[0], (std::vector<std::size_t>{0, 2}));
  EXPECT_EQ(r.assignment[1], (std::vector<std::size_t>{1}));
}

TEST(PartitionTest, FailureReportsOffendingTask) {
  std::vector<SporadicTask> tasks{SporadicTask(6, 10, 20),
                                  SporadicTask(6, 10, 20),
                                  SporadicTask(6, 10, 20)};
  auto r = partition_tasks(tasks, 2);
  EXPECT_FALSE(r.success);
  EXPECT_EQ(r.failed_task, 2u);
}

TEST(PartitionTest, DeadlineMonotonicOrderMatters) {
  // A long-deadline hog placed first would block the tight task on one
  // processor; DM order places the tight task first and both fit.
  std::vector<SporadicTask> tasks{SporadicTask(9, 20, 20),
                                  SporadicTask(2, 2, 20)};
  auto r = partition_tasks(tasks, 1);
  ASSERT_TRUE(r.success);
  // τ1 (D=2) is considered first by DM even though it is second in input.
  EXPECT_EQ(r.assignment[0], (std::vector<std::size_t>{1, 0}));
}

TEST(PartitionTest, UtilizationCheckDistinguishesFullFromLiteral) {
  // Demand at the deadline instant fits, but long-run utilization exceeds 1:
  // τ = (C=3, D=9, T=4) has DBF*(9) = 3 ≤ 9 per copy at its own deadline…
  // wait: u = 3/4 each, two copies: u = 3/2 > 1. Demand check at t=9 for the
  // second copy: 3 + [3 + (3/4)(9−9)] = 6 ≤ 9 → literal accepts, full must
  // reject (EDF cannot sustain U > 1).
  std::vector<SporadicTask> tasks{SporadicTask(3, 9, 4),
                                  SporadicTask(3, 9, 4)};
  PartitionOptions literal;
  literal.variant = PartitionVariant::kPaperLiteral;
  auto rl = partition_tasks(tasks, 1, literal);
  ASSERT_TRUE(rl.success);
  EXPECT_FALSE(partition_is_edf_schedulable(tasks, rl))
      << "the literal variant over-committed the processor";

  PartitionOptions full;  // default: kFull
  auto rf = partition_tasks(tasks, 1, full);
  EXPECT_FALSE(rf.success);
}

TEST(PartitionTest, BestFitAndWorstFitDiffer) {
  // Four tasks, two processors. Worst-fit spreads; best-fit concentrates.
  std::vector<SporadicTask> tasks{SporadicTask(4, 10, 10),
                                  SporadicTask(3, 10, 10),
                                  SporadicTask(2, 10, 10),
                                  SporadicTask(1, 10, 10)};
  PartitionOptions bf;
  bf.fit = FitStrategy::kBestFit;
  PartitionOptions wf;
  wf.fit = FitStrategy::kWorstFit;
  auto rb = partition_tasks(tasks, 2, bf);
  auto rw = partition_tasks(tasks, 2, wf);
  ASSERT_TRUE(rb.success);
  ASSERT_TRUE(rw.success);
  // Best-fit: τ0→p0, τ1→p0 (7/10), τ2→p0 (9/10), τ3→p0 (10/10).
  EXPECT_EQ(rb.assignment[0].size(), 4u);
  // Worst-fit: τ0→p0, τ1→p1, τ2→p1 (5 vs 4? worst = lower util = p1 after
  // τ0; τ1→p1, τ2→p1 has 3 < 4 → τ2→p1 (5), τ3→p0 (4 < 5).
  EXPECT_EQ(rw.assignment[0].size(), 2u);
  EXPECT_EQ(rw.assignment[1].size(), 2u);
}

TEST(PartitionTest, MorePointsRecoverAcceptance) {
  // The 1-point DBF* overestimates the second demand step; with two exact
  // points the pair fits one processor, as the exact test confirms.
  // τ1 = (3, 4, 10), τ2 = (4, 12, 14):
  //   k=1 at t=12: dbf*(τ1,12) = 3 + (3/10)·8 = 27/5; 27/5 + 4 = 47/5 ≤ 12 ✓
  // That fits even with k=1 — craft a case where k=1 fails:
  //   τ1 = (5, 5, 10), τ2 = (5, 14, 20):
  //   k=1 at t=14: dbf*(τ1,14) = 5 + (1/2)·9 = 9.5; 9.5 + 5 = 14.5 > 14 ✗
  //   k=2: dbf exact at 14 (< 5+10=15) = 5; 5 + 5 = 10 ≤ 14 ✓
  std::vector<SporadicTask> tasks{SporadicTask(5, 5, 10),
                                  SporadicTask(5, 14, 20)};
  PartitionOptions one;
  one.dbf_points = 1;
  EXPECT_FALSE(partition_tasks(tasks, 1, one).success);
  PartitionOptions two;
  two.dbf_points = 2;
  auto r = partition_tasks(tasks, 1, two);
  ASSERT_TRUE(r.success);
  EXPECT_TRUE(partition_is_edf_schedulable(tasks, r));
  // Exact admission accepts as well.
  PartitionOptions exact;
  exact.variant = PartitionVariant::kExactEdf;
  EXPECT_TRUE(partition_tasks(tasks, 1, exact).success);
}

TEST(PartitionTest, ExactEdfVariantIsExactPerProcessor) {
  // Single processor: exact-EDF first-fit accepts exactly the EDF-feasible
  // prefix orderings — here the whole staircase set, which every
  // approximation rejects.
  std::vector<SporadicTask> tasks{SporadicTask(1, 1, 3),
                                  SporadicTask(1, 2, 3),
                                  SporadicTask(1, 3, 3)};
  PartitionOptions exact;
  exact.variant = PartitionVariant::kExactEdf;
  auto r = partition_tasks(tasks, 1, exact);
  ASSERT_TRUE(r.success);
  EXPECT_TRUE(partition_is_edf_schedulable(tasks, r));
  PartitionOptions approx;  // kFull with any finite k keeps the linear tail
  approx.dbf_points = 1;
  EXPECT_FALSE(partition_tasks(tasks, 1, approx).success);
}

TEST(PartitionTest, PointsSweepIsSoundEverywhere) {
  Rng rng(99);
  for (int trial = 0; trial < 40; ++trial) {
    std::vector<SporadicTask> tasks;
    int n = static_cast<int>(rng.uniform_int(2, 10));
    for (int j = 0; j < n; ++j) {
      Time period = rng.uniform_int(5, 80);
      Time deadline = rng.uniform_int(2, period);
      Time wcet = rng.uniform_int(1, std::max<Time>(1, deadline - 1));
      tasks.emplace_back(wcet, deadline, period);
    }
    for (int k : {1, 2, 4, 8}) {
      PartitionOptions opt;
      opt.dbf_points = k;
      auto r = partition_tasks(tasks, 2, opt);
      if (r.success) {
        EXPECT_TRUE(partition_is_edf_schedulable(tasks, r))
            << "k=" << k << " trial=" << trial;
      }
    }
    PartitionOptions exact;
    exact.variant = PartitionVariant::kExactEdf;
    auto r = partition_tasks(tasks, 2, exact);
    if (r.success) {
      EXPECT_TRUE(partition_is_edf_schedulable(tasks, r));
    }
  }
}

TEST(PartitionTest, FullVariantSoundForArbitraryDeadlines) {
  // The arbitrary-deadline extension routes low-density tasks (possibly
  // with D > T) through the FULL variant; its accepted bins must pass the
  // exact EDF test. (The literal variant is NOT sound here — covered by
  // UtilizationCheckDistinguishesFullFromLiteral.)
  Rng rng(555);
  int verified = 0;
  for (int trial = 0; trial < 60; ++trial) {
    std::vector<SporadicTask> tasks;
    int n = static_cast<int>(rng.uniform_int(2, 8));
    for (int j = 0; j < n; ++j) {
      Time period = rng.uniform_int(4, 60);
      // Half the tasks get deadlines beyond their periods.
      Time deadline = rng.bernoulli(0.5)
                          ? rng.uniform_int(period, 3 * period)
                          : rng.uniform_int(2, period);
      Time wcet = rng.uniform_int(1, std::min(deadline, period));
      tasks.emplace_back(wcet, deadline, period);
    }
    PartitionOptions opt;  // kFull default
    auto r = partition_tasks(tasks, 2, opt);
    if (!r.success) continue;
    EXPECT_TRUE(partition_is_edf_schedulable(tasks, r))
        << "full-variant bin failed exact EDF with D>T tasks (trial "
        << trial << ")";
    ++verified;
  }
  EXPECT_GT(verified, 0);
}

TEST(PartitionTest, IncrementalAggregateMatchesLegacyEverywhere) {
  // The per-bin DBF* aggregate (DbfStarAggregate) must reproduce the
  // recompute-per-probe paths exactly: same verdicts, same placements, same
  // failing task, and — for the paths it covers — the same number of logical
  // DBF* evaluations.
  Rng rng(4242);
  for (int trial = 0; trial < 60; ++trial) {
    std::vector<SporadicTask> tasks;
    int n = static_cast<int>(rng.uniform_int(2, 12));
    for (int j = 0; j < n; ++j) {
      Time period = rng.uniform_int(5, 80);
      Time deadline = rng.uniform_int(2, period);
      Time wcet = rng.uniform_int(1, std::max<Time>(1, deadline - 1));
      tasks.emplace_back(wcet, deadline, period);
    }
    const int procs = static_cast<int>(rng.uniform_int(1, 4));
    for (PartitionVariant variant :
         {PartitionVariant::kFull, PartitionVariant::kPaperLiteral}) {
      for (FitStrategy fit : {FitStrategy::kFirstFit, FitStrategy::kBestFit,
                              FitStrategy::kWorstFit}) {
        PartitionOptions inc;
        inc.variant = variant;
        inc.fit = fit;
        inc.incremental = true;
        PartitionOptions legacy = inc;
        legacy.incremental = false;

        const PerfCounters before_inc = perf_counters();
        auto a = partition_tasks(tasks, procs, inc);
        const PerfCounters inc_delta = perf_counters() - before_inc;
        const PerfCounters before_leg = perf_counters();
        auto b = partition_tasks(tasks, procs, legacy);
        const PerfCounters leg_delta = perf_counters() - before_leg;

        ASSERT_EQ(a.success, b.success)
            << to_string(variant) << "/" << to_string(fit);
        EXPECT_EQ(a.assignment, b.assignment);
        if (!a.success) EXPECT_EQ(a.failed_task, b.failed_task);
        EXPECT_EQ(inc_delta.dbf_star_evaluations,
                  leg_delta.dbf_star_evaluations)
            << to_string(variant) << "/" << to_string(fit);
      }
    }
    // dbf_points > 1 bypasses the aggregate; the flag must be a no-op there.
    PartitionOptions multi;
    multi.dbf_points = 3;
    PartitionOptions multi_legacy = multi;
    multi_legacy.incremental = false;
    auto a = partition_tasks(tasks, procs, multi);
    auto b = partition_tasks(tasks, procs, multi_legacy);
    ASSERT_EQ(a.success, b.success);
    EXPECT_EQ(a.assignment, b.assignment);
  }
}

TEST(PartitionTest, OrderingStringsRoundTrip) {
  EXPECT_STREQ(to_string(PartitionVariant::kFull), "full");
  EXPECT_STREQ(to_string(PartitionVariant::kPaperLiteral), "paper-literal");
  EXPECT_STREQ(to_string(FitStrategy::kFirstFit), "first-fit");
  EXPECT_STREQ(to_string(FitStrategy::kBestFit), "best-fit");
  EXPECT_STREQ(to_string(FitStrategy::kWorstFit), "worst-fit");
  EXPECT_STREQ(to_string(PartitionOrder::kDeadlineMonotonic),
               "deadline-monotonic");
  EXPECT_STREQ(to_string(PartitionOrder::kDensityDescending), "density-desc");
  EXPECT_STREQ(to_string(PartitionOrder::kUtilizationDescending),
               "utilization-desc");
}

TEST(PartitionTest, RejectsNegativeProcessorCount) {
  EXPECT_THROW(partition_tasks({}, -1), ContractViolation);
}

// Central soundness property: every partition the FULL variant accepts is
// certified schedulable by the exact per-processor EDF test — across random
// task sets, fits, and orders.
class PartitionSoundnessTest
    : public ::testing::TestWithParam<
          std::tuple<std::uint64_t, FitStrategy, PartitionOrder>> {};

TEST_P(PartitionSoundnessTest, FullVariantIsEdfSound) {
  auto [seed, fit, order] = GetParam();
  Rng rng(seed);
  for (int trial = 0; trial < 60; ++trial) {
    const int n = static_cast<int>(rng.uniform_int(2, 12));
    const int m = static_cast<int>(rng.uniform_int(1, 4));
    std::vector<SporadicTask> tasks;
    for (int j = 0; j < n; ++j) {
      Time period = rng.uniform_int(5, 100);
      Time deadline = rng.uniform_int(2, period);
      Time wcet = rng.uniform_int(1, std::max<Time>(1, deadline - 1));
      tasks.emplace_back(wcet, deadline, period);
    }
    PartitionOptions opt;
    opt.variant = PartitionVariant::kFull;
    opt.fit = fit;
    opt.order = order;
    auto r = partition_tasks(tasks, m, opt);
    if (!r.success) continue;
    EXPECT_TRUE(partition_is_edf_schedulable(tasks, r))
        << "full-variant partition failed the exact EDF certificate (seed "
        << seed << ", trial " << trial << ")";
    // Every task appears exactly once.
    std::vector<int> seen(tasks.size(), 0);
    for (const auto& proc : r.assignment)
      for (std::size_t i : proc) ++seen[i];
    for (int c : seen) EXPECT_EQ(c, 1);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, PartitionSoundnessTest,
    ::testing::Combine(
        ::testing::Values(7u, 8u),
        ::testing::Values(FitStrategy::kFirstFit, FitStrategy::kBestFit,
                          FitStrategy::kWorstFit),
        ::testing::Values(PartitionOrder::kDeadlineMonotonic,
                          PartitionOrder::kDensityDescending,
                          PartitionOrder::kUtilizationDescending)));

}  // namespace
}  // namespace fedcons
