// Tests for the global EDF multiprocessor DAG simulator.
#include "fedcons/sim/global_edf_sim.h"

#include <gtest/gtest.h>

#include <array>

#include "fedcons/core/builders.h"
#include "fedcons/gen/taskset_gen.h"
#include "fedcons/util/check.h"

namespace fedcons {
namespace {

std::vector<std::vector<DagJobRelease>> releases_for(const TaskSystem& sys,
                                                     const SimConfig& cfg,
                                                     std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<DagJobRelease>> out;
  for (const auto& t : sys) {
    Rng child = rng.split();
    out.push_back(generate_releases(t, cfg, child));
  }
  return out;
}

TEST(GlobalEdfSimTest, SingleChainRunsSequentially) {
  std::array<Time, 3> w{2, 3, 4};
  TaskSystem sys;
  sys.add(DagTask(make_chain(w), 20, 40));
  SimConfig cfg;
  cfg.horizon = 400;
  auto rel = releases_for(sys, cfg, 1);
  SimStats s = simulate_global_edf(sys, rel, 4, cfg);
  EXPECT_EQ(s.deadline_misses, 0u);
  EXPECT_EQ(s.max_response_time, 9);  // vol of the chain
}

TEST(GlobalEdfSimTest, ParallelBranchesUseProcessors) {
  std::array<Time, 3> branches{5, 5, 5};
  TaskSystem sys;
  sys.add(DagTask(make_fork_join(1, branches, 1), 8, 50));
  SimConfig cfg;
  cfg.horizon = 500;
  auto rel = releases_for(sys, cfg, 2);
  // Three processors: all branches in parallel → response 1+5+1 = 7 ≤ 8.
  SimStats s3 = simulate_global_edf(sys, rel, 3, cfg);
  EXPECT_EQ(s3.deadline_misses, 0u);
  EXPECT_EQ(s3.max_response_time, 7);
  // One processor: response = vol = 17 > 8 → every dag-job misses.
  SimStats s1 = simulate_global_edf(sys, rel, 1, cfg);
  EXPECT_EQ(s1.deadline_misses, s1.jobs_released);
  EXPECT_EQ(s1.max_response_time, 17);
}

TEST(GlobalEdfSimTest, EdfOrderAcrossTasks) {
  // Task A (tight deadline) and task B (loose): B is preempted.
  TaskSystem sys;
  Dag a;
  a.add_vertex(2);
  sys.add(DagTask(std::move(a), 3, 1000));
  Dag b;
  b.add_vertex(10);
  sys.add(DagTask(std::move(b), 100, 1000));
  SimConfig cfg;
  cfg.horizon = 1000;
  auto rel = releases_for(sys, cfg, 3);
  SimStats s = simulate_global_edf(sys, rel, 1, cfg);
  EXPECT_EQ(s.deadline_misses, 0u);
  // A finishes at 2; B at 12.
  EXPECT_EQ(s.max_response_time, 12);
}

TEST(GlobalEdfSimTest, PrecedenceRespectedUnderContention) {
  // Diamond with heavy sides: the sink cannot start before both sides done.
  Dag g = DagBuilder{}
              .vertices({1, 4, 6, 1})
              .edge(0, 1)
              .edge(0, 2)
              .edge(1, 3)
              .edge(2, 3)
              .build();
  TaskSystem sys;
  sys.add(DagTask(std::move(g), 20, 100));
  SimConfig cfg;
  cfg.horizon = 100;
  auto rel = releases_for(sys, cfg, 4);
  SimStats s = simulate_global_edf(sys, rel, 2, cfg);
  EXPECT_EQ(s.deadline_misses, 0u);
  // 1 + max(4,6) + 1 = 8 with two processors.
  EXPECT_EQ(s.max_response_time, 8);
}

TEST(GlobalEdfSimTest, ValidatesArguments) {
  TaskSystem sys;
  Dag g;
  g.add_vertex(1);
  sys.add(DagTask(std::move(g), 5, 10));
  SimConfig cfg;
  auto rel = releases_for(sys, cfg, 4);
  EXPECT_THROW(simulate_global_edf(sys, rel, 0, cfg), ContractViolation);
  std::vector<std::vector<DagJobRelease>> wrong;  // size mismatch
  EXPECT_THROW(simulate_global_edf(sys, wrong, 1, cfg), ContractViolation);
}

TEST(GlobalEdfSimTest, StatsInternallyConsistentOnRandomSystems) {
  // NOTE: "more processors → fewer misses" is NOT asserted — global
  // scheduling of precedence-constrained jobs exhibits Graham/Richard
  // anomalies where extra processors can lengthen schedules. We check the
  // invariants that do hold: release counts are platform-independent, misses
  // never exceed releases, and the busy fraction is a valid fraction.
  Rng rng(5);
  TaskSetParams params;
  params.num_tasks = 4;
  params.total_utilization = 2.0;
  params.utilization_cap = 2.0;
  params.period_min = 50;
  params.period_max = 500;
  SimConfig cfg;
  cfg.horizon = 20000;
  for (int trial = 0; trial < 10; ++trial) {
    TaskSystem sys = generate_task_system(rng, params);
    auto rel = releases_for(sys, cfg, 100 + static_cast<std::uint64_t>(trial));
    std::uint64_t expected_released = 0;
    for (const auto& r : rel) expected_released += r.size();
    for (int m : {1, 2, 4, 8}) {
      SimStats s = simulate_global_edf(sys, rel, m, cfg);
      EXPECT_EQ(s.jobs_released, expected_released);
      EXPECT_LE(s.deadline_misses, s.jobs_released);
      EXPECT_GE(s.busy_fraction, 0.0);
      EXPECT_LE(s.busy_fraction, 1.0 + 1e-9);
    }
  }
}

}  // namespace
}  // namespace fedcons
