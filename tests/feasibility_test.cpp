// Tests for the necessary-feasibility battery (the clairvoyant-OPT proxy).
#include "fedcons/analysis/feasibility.h"

#include <gtest/gtest.h>

#include "fedcons/core/builders.h"
#include "fedcons/gen/taskset_gen.h"
#include "fedcons/util/check.h"
#include "fedcons/util/rng.h"

namespace fedcons {
namespace {

DagTask simple_task(Time wcet, Time deadline, Time period) {
  Dag g;
  g.add_vertex(wcet);
  return DagTask(std::move(g), deadline, period);
}

TEST(FeasibilityTest, EmptySystemPasses) {
  EXPECT_TRUE(passes_necessary_conditions(TaskSystem{}, 1));
}

TEST(FeasibilityTest, CriticalPathConditionFires) {
  TaskSystem sys;
  sys.add(simple_task(10, 5, 20));  // len 10 > D 5
  auto r = necessary_feasibility(sys, 8);
  EXPECT_FALSE(r.passed);
  EXPECT_NE(r.failed_condition.find("len > D"), std::string::npos);
}

TEST(FeasibilityTest, UtilizationConditionFires) {
  TaskSystem sys;
  // Three tasks of utilization 1 each on m = 2.
  for (int i = 0; i < 3; ++i) sys.add(simple_task(10, 10, 10));
  auto r = necessary_feasibility(sys, 2);
  EXPECT_FALSE(r.passed);
  EXPECT_NE(r.failed_condition.find("U_sum > m"), std::string::npos);
}

TEST(FeasibilityTest, VolumeWindowConditionFires) {
  TaskSystem sys;
  // vol = 50 parallel units, D = 5, m = 2: 50 > 2·5 even though len = 1 ≤ D.
  Dag g;
  for (int i = 0; i < 50; ++i) g.add_vertex(1);
  sys.add(DagTask(std::move(g), 5, 100));
  auto r = necessary_feasibility(sys, 2);
  EXPECT_FALSE(r.passed);
  EXPECT_NE(r.failed_condition.find("vol > m*D"), std::string::npos);
}

TEST(FeasibilityTest, GlobalDemandConditionFires) {
  // Each task individually fits its window, combined demand does not:
  // three tasks (C=2, D=2, T=100) on m = 2: at t = 2 demand 6 > 4.
  TaskSystem sys;
  for (int i = 0; i < 3; ++i) sys.add(simple_task(2, 2, 100));
  auto r = necessary_feasibility(sys, 2);
  EXPECT_FALSE(r.passed);
  EXPECT_NE(r.failed_condition.find("demand"), std::string::npos);
}

TEST(FeasibilityTest, ComfortableSystemPasses) {
  TaskSystem sys;
  sys.add(make_paper_example_task());
  sys.add(simple_task(2, 10, 20));
  EXPECT_TRUE(passes_necessary_conditions(sys, 2));
}

TEST(FeasibilityTest, RejectsInvalidM) {
  EXPECT_THROW(necessary_feasibility(TaskSystem{}, 0), ContractViolation);
}

TEST(FeasibilityTest, Example2FamilyIsBorderlineFeasible) {
  // Paper Example 2: n tasks (C=1, D=1, T=n) pass all necessary conditions
  // on m = n processors (each gets one), but fail on m < n because the
  // synchronous release at t = 1 demands n units of work in a window where
  // only m are available.
  const int n = 6;
  TaskSystem sys = make_capacity_augmentation_counterexample(n);
  EXPECT_TRUE(passes_necessary_conditions(sys, n));
  auto r = necessary_feasibility(sys, n - 1);
  EXPECT_FALSE(r.passed);
}

TEST(FeasibilityTest, MonotoneInProcessorCount) {
  Rng rng(31);
  TaskSetParams params;
  params.num_tasks = 6;
  params.total_utilization = 3.0;
  params.utilization_cap = 4.0;
  for (int trial = 0; trial < 20; ++trial) {
    TaskSystem sys = generate_task_system(rng, params);
    bool prev = false;
    for (int m = 1; m <= 8; ++m) {
      bool now = passes_necessary_conditions(sys, m);
      EXPECT_TRUE(!prev || now)
          << "necessary conditions must be monotone in m";
      prev = now;
    }
  }
}

}  // namespace
}  // namespace fedcons
