// PartitionState / IncrementalPartition (federated/partition_state.h):
// rollback exactness (admit-then-release leaves NO residue, down to the
// stored rational representations) and the structural invariant
// state == partition_tasks(residents-in-admission-order) under random
// admit/remove/resize sequences across partition variants.
#include "fedcons/federated/partition_state.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "fedcons/core/io.h"
#include "fedcons/federated/partition.h"
#include "fedcons/util/rng.h"

namespace fedcons {
namespace {

// Representation-exact snapshot of every observable of a PartitionState.
struct BinImage {
  std::vector<std::size_t> ids;
  std::vector<std::string> util_reprs;   // num/den of each prefix value
  std::size_t demand_size = 0;
  std::vector<Time> demand_deadlines;
  std::vector<std::string> demand_reprs;  // num/den of sum_at per deadline
};

std::string repr(const BigRational& r) {
  return r.num().to_string() + "/" + r.den().to_string();
}

BinImage image_of(const PartitionState& state, int k) {
  BinImage img;
  img.ids = state.bin_ids(k);
  // The utilization fold is inclusive-prefix internally; its observable is
  // the total, whose representation depends on the fold history.
  img.util_reprs.push_back(repr(state.bin_utilization(k)));
  const DbfStarAggregate& demand = state.bin_demand(k);
  img.demand_size = demand.size();
  for (Time d : demand.distinct_deadlines()) {
    img.demand_deadlines.push_back(d);
    img.demand_reprs.push_back(repr(demand.sum_at(d)));
    img.demand_reprs.push_back(repr(demand.sum_at(d * 3 + 1)));
  }
  return img;
}

std::vector<BinImage> image_of(const IncrementalPartition& inc) {
  std::vector<BinImage> out;
  for (int k = 0; k < inc.num_bins(); ++k) {
    out.push_back(image_of(inc.state(), k));
  }
  return out;
}

void expect_same_images(const std::vector<BinImage>& a,
                        const std::vector<BinImage>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t k = 0; k < a.size(); ++k) {
    EXPECT_EQ(a[k].ids, b[k].ids) << "bin " << k;
    EXPECT_EQ(a[k].util_reprs, b[k].util_reprs) << "bin " << k;
    EXPECT_EQ(a[k].demand_size, b[k].demand_size) << "bin " << k;
    EXPECT_EQ(a[k].demand_deadlines, b[k].demand_deadlines) << "bin " << k;
    EXPECT_EQ(a[k].demand_reprs, b[k].demand_reprs) << "bin " << k;
  }
}

TEST(PartitionUsesAggregates, MatchesBatchPredicate) {
  PartitionOptions o;
  EXPECT_TRUE(partition_uses_aggregates(o));  // kFull, 1 point, incremental
  o.variant = PartitionVariant::kPaperLiteral;
  EXPECT_TRUE(partition_uses_aggregates(o));
  o.variant = PartitionVariant::kFull;
  o.dbf_points = 3;
  EXPECT_FALSE(partition_uses_aggregates(o));
  o.dbf_points = 1;
  o.incremental = false;
  EXPECT_FALSE(partition_uses_aggregates(o));
  o.incremental = true;
  o.variant = PartitionVariant::kExactEdf;
  EXPECT_FALSE(partition_uses_aggregates(o));
}

// Admit X then release X: every observable — member lists, the utilization
// fold, the DBF* aggregate contents — must be bit-identical to a timeline in
// which X never arrived, not merely value-equal.
TEST(IncrementalPartition, AdmitThenReleaseLeavesNoResidue) {
  const PartitionOptions options;
  IncrementalPartition inc(3, options);
  // A baseline population with deliberately awkward rationals.
  ASSERT_TRUE(inc.admit(0, SporadicTask(7, 19, 23)).ok);
  ASSERT_TRUE(inc.admit(1, SporadicTask(5, 13, 17)).ok);
  ASSERT_TRUE(inc.admit(2, SporadicTask(11, 29, 31)).ok);
  ASSERT_TRUE(inc.admit(3, SporadicTask(3, 19, 37)).ok);
  const auto before = image_of(inc);

  // The intruder lands mid-order (deadline 20 sits between 19 and 29) so its
  // removal exercises the interior-rollback path, not just pop-from-back.
  ASSERT_TRUE(inc.admit(4, SporadicTask(9, 20, 40)).ok);
  EXPECT_EQ(inc.size(), 5u);
  const PartitionEvent ev = inc.remove(4);
  EXPECT_TRUE(ev.ok);
  expect_same_images(image_of(inc), before);
  EXPECT_EQ(inc.size(), 4u);
}

// Same exactness at the extreme end of the value range (kMaxFieldValue is
// the serialization ceiling 2^50): products like C·D overflow int64 and
// exercise the BigInt lanes; the fold must still roll back exactly.
TEST(IncrementalPartition, RollbackExactAtSaturatingMagnitudes) {
  const Time huge = kMaxFieldValue;  // 2^50
  const PartitionOptions options;
  IncrementalPartition inc(2, options);
  ASSERT_TRUE(inc.admit(0, SporadicTask(huge / 4, huge - 1, huge)).ok);
  ASSERT_TRUE(inc.admit(1, SporadicTask(huge / 8, huge - 3, huge - 2)).ok);
  const auto before = image_of(inc);

  (void)inc.admit(2, SporadicTask(huge / 2 - 7, huge - 2, huge));
  (void)inc.remove(2);
  expect_same_images(image_of(inc), before);

  // And a rejected-looking oversized task (utilization ~1 on both bins):
  // admit applies unconditionally, remove must still be an exact inverse
  // even when the admit left a failed state.
  const PartitionEvent full = inc.admit(3, SporadicTask(huge - 1, huge, huge));
  (void)full;
  (void)inc.remove(3);
  expect_same_images(image_of(inc), before);
  EXPECT_TRUE(inc.ok());
}

TEST(IncrementalPartition, ZeroBinsReportsEarliestAdmitted) {
  IncrementalPartition inc(0, PartitionOptions{});
  const PartitionEvent first = inc.admit(7, SporadicTask(1, 50, 60));
  EXPECT_FALSE(first.ok);
  // A later-admitted task with an earlier deadline would sort first, but the
  // batch partitioner reports input-order index 0 on the no-bins path — the
  // earliest ADMITTED resident, not the partition-order head.
  (void)inc.admit(9, SporadicTask(1, 10, 60));
  ASSERT_TRUE(inc.failed_id().has_value());
  EXPECT_EQ(*inc.failed_id(), 7u);
}

SporadicTask random_task(Rng& rng) {
  const Time period = rng.uniform_int(10, 400);
  const Time deadline = rng.uniform_int((period + 1) / 2, period);
  const Time wcet = rng.uniform_int(1, std::max<Time>(1, deadline / 2));
  return SporadicTask(wcet, deadline, period);
}

// The invariant itself: after every event, verdict + per-bin membership
// equal the batch partitioner run from scratch over the residents in
// admission order. Exercised across variants and fit strategies (the replay
// fast path only applies to first-fit; others take the full-replay path).
void run_event_differential(const PartitionOptions& options,
                            std::uint64_t seed) {
  Rng rng(seed);
  IncrementalPartition inc(3, options);
  std::vector<std::size_t> ids;     // admission order
  std::vector<SporadicTask> tasks;  // parallel to ids
  std::size_t next_id = 0;
  int bins = 3;
  for (int event = 0; event < 160; ++event) {
    const double r = rng.uniform01();
    if (r < 0.15) {
      bins = static_cast<int>(rng.uniform_int(0, 5));
      (void)inc.resize(bins);
    } else if (r < 0.45 && !ids.empty()) {
      const auto pick = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(ids.size()) - 1));
      (void)inc.remove(ids[pick]);
      ids.erase(ids.begin() + static_cast<std::ptrdiff_t>(pick));
      tasks.erase(tasks.begin() + static_cast<std::ptrdiff_t>(pick));
    } else {
      const SporadicTask task = random_task(rng);
      (void)inc.admit(next_id, task);
      ids.push_back(next_id++);
      tasks.push_back(task);
    }

    const PartitionResult batch = partition_tasks(tasks, bins, options);
    ASSERT_EQ(inc.ok(), batch.success)
        << "seed " << seed << " event " << event;
    if (batch.success) {
      const auto assignment = inc.assignment();
      ASSERT_EQ(assignment.size(), batch.assignment.size());
      for (std::size_t k = 0; k < assignment.size(); ++k) {
        std::vector<std::size_t> batch_ids;
        for (std::size_t idx : batch.assignment[k]) {
          batch_ids.push_back(ids[idx]);
        }
        ASSERT_EQ(assignment[k], batch_ids)
            << "seed " << seed << " event " << event << " bin " << k;
      }
    } else if (bins > 0) {
      ASSERT_TRUE(inc.failed_id().has_value());
      ASSERT_LT(batch.failed_task, ids.size());
      ASSERT_EQ(*inc.failed_id(), ids[batch.failed_task])
          << "seed " << seed << " event " << event;
    }
  }
}

TEST(IncrementalPartition, DifferentialFirstFitFull) {
  run_event_differential(PartitionOptions{}, 11);
  run_event_differential(PartitionOptions{}, 12);
}

TEST(IncrementalPartition, DifferentialPaperLiteral) {
  PartitionOptions o;
  o.variant = PartitionVariant::kPaperLiteral;
  run_event_differential(o, 21);
}

TEST(IncrementalPartition, DifferentialExactEdf) {
  PartitionOptions o;
  o.variant = PartitionVariant::kExactEdf;
  run_event_differential(o, 31);
}

TEST(IncrementalPartition, DifferentialBestFit) {
  PartitionOptions o;
  o.fit = FitStrategy::kBestFit;
  run_event_differential(o, 41);
}

TEST(IncrementalPartition, DifferentialWorstFit) {
  PartitionOptions o;
  o.fit = FitStrategy::kWorstFit;
  run_event_differential(o, 51);
}

TEST(IncrementalPartition, DifferentialLegacyNonIncrementalProbes) {
  PartitionOptions o;
  o.incremental = false;  // no aggregates: recompute-per-probe oracle path
  run_event_differential(o, 61);
}

TEST(IncrementalPartition, DifferentialMultiPointDbf) {
  PartitionOptions o;
  o.dbf_points = 4;  // kFull without aggregates
  run_event_differential(o, 71);
}

}  // namespace
}  // namespace fedcons
