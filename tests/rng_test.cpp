// Tests for the deterministic PRNG and its distributions.
#include "fedcons/util/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

#include "fedcons/util/check.h"

namespace fedcons {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, UniformIntInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    std::int64_t v = rng.uniform_int(-5, 9);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 9);
  }
}

TEST(RngTest, UniformIntDegenerateRange) {
  Rng rng(7);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.uniform_int(42, 42), 42);
}

TEST(RngTest, UniformIntRejectsInvertedRange) {
  Rng rng(7);
  EXPECT_THROW(rng.uniform_int(3, 2), ContractViolation);
}

TEST(RngTest, UniformIntCoversAllValues) {
  Rng rng(99);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(rng.uniform_int(0, 7));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(RngTest, UniformIntRoughlyUniform) {
  Rng rng(5);
  constexpr int kBuckets = 10;
  constexpr int kDraws = 100000;
  std::vector<int> counts(kBuckets, 0);
  for (int i = 0; i < kDraws; ++i) {
    ++counts[static_cast<std::size_t>(rng.uniform_int(0, kBuckets - 1))];
  }
  const double expected = static_cast<double>(kDraws) / kBuckets;
  for (int c : counts) {
    EXPECT_NEAR(static_cast<double>(c), expected, expected * 0.1);
  }
}

TEST(RngTest, Uniform01HalfOpen) {
  Rng rng(11);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    double v = rng.uniform01();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(RngTest, UniformRealBounds) {
  Rng rng(13);
  for (int i = 0; i < 1000; ++i) {
    double v = rng.uniform_real(-2.5, 7.5);
    EXPECT_GE(v, -2.5);
    EXPECT_LT(v, 7.5);
  }
  EXPECT_THROW(rng.uniform_real(1.0, 1.0), ContractViolation);
}

TEST(RngTest, LogUniformBoundsAndSpread) {
  Rng rng(17);
  int low_decade = 0;
  for (int i = 0; i < 10000; ++i) {
    double v = rng.log_uniform_real(10.0, 100000.0);
    EXPECT_GE(v, 10.0);
    EXPECT_LT(v, 100000.0 * (1 + 1e-9));
    if (v < 100.0) ++low_decade;
  }
  // One of four decades: expect about a quarter of draws — the signature of
  // log-uniform (plain uniform would put ~0.09% there).
  EXPECT_NEAR(low_decade / 10000.0, 0.25, 0.05);
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(19);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
  EXPECT_THROW(rng.bernoulli(1.5), ContractViolation);
}

TEST(RngTest, BernoulliRate) {
  Rng rng(23);
  int hits = 0;
  for (int i = 0; i < 100000; ++i) {
    if (rng.bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(hits / 100000.0, 0.3, 0.01);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(29);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  std::vector<int> orig = v;
  rng.shuffle(v);
  EXPECT_TRUE(std::is_permutation(v.begin(), v.end(), orig.begin()));
}

TEST(RngTest, ShuffleEventuallyMoves) {
  Rng rng(31);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> orig = v;
  bool moved = false;
  for (int i = 0; i < 10 && !moved; ++i) {
    rng.shuffle(v);
    moved = (v != orig);
  }
  EXPECT_TRUE(moved);
}

TEST(RngTest, SplitIsDeterministicGivenParentState) {
  Rng a(55), b(55);
  Rng child_a = a.split();
  Rng child_b = b.split();
  for (int i = 0; i < 64; ++i) {
    EXPECT_EQ(child_a.next_u64(), child_b.next_u64());
  }
}

TEST(RngTest, SplitChildDivergesFromParent) {
  Rng a(55);
  Rng child = a.split();
  Rng parent_replay(55);
  parent_replay.split();  // consume the same draw the split used
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (child.next_u64() == parent_replay.next_u64()) ++same;
  }
  EXPECT_LT(same, 2) << "child stream must not mirror the parent stream";
}

TEST(RngTest, ReseedResetsSequence) {
  Rng rng(77);
  std::vector<std::uint64_t> first;
  for (int i = 0; i < 8; ++i) first.push_back(rng.next_u64());
  rng.reseed(77);
  for (int i = 0; i < 8; ++i) EXPECT_EQ(rng.next_u64(), first[static_cast<std::size_t>(i)]);
}

}  // namespace
}  // namespace fedcons
