// Tests for TemplateSchedule construction and validation.
#include "fedcons/listsched/schedule.h"

#include <gtest/gtest.h>

#include "fedcons/util/check.h"

namespace fedcons {
namespace {

Dag two_vertex_chain() {
  Dag g;
  g.add_vertex(3);
  g.add_vertex(2);
  g.add_edge(0, 1);
  return g;
}

TEST(TemplateScheduleTest, BasicsAndMakespan) {
  TemplateSchedule s(2, {{0, 0, 0, 3}, {1, 1, 3, 5}});
  EXPECT_EQ(s.num_processors(), 2);
  EXPECT_EQ(s.num_jobs(), 2u);
  EXPECT_EQ(s.makespan(), 5);
  EXPECT_EQ(s.job_for(0).finish, 3);
  EXPECT_EQ(s.job_for(1).processor, 1);
}

TEST(TemplateScheduleTest, RejectsMalformedSlots) {
  EXPECT_THROW(TemplateSchedule(0, {}), ContractViolation);
  EXPECT_THROW(TemplateSchedule(1, {{0, 0, -1, 2}}), ContractViolation);
  EXPECT_THROW(TemplateSchedule(1, {{0, 0, 5, 3}}), ContractViolation);
  EXPECT_THROW(TemplateSchedule(1, {{0, 1, 0, 2}}), ContractViolation);
  EXPECT_THROW(TemplateSchedule(1, {{0, -1, 0, 2}}), ContractViolation);
  EXPECT_THROW(TemplateSchedule(1, {{0, 0, 0, 2}, {0, 0, 2, 4}}),
               ContractViolation);  // duplicate vertex
}

TEST(TemplateScheduleTest, JobForUnknownVertexThrows) {
  TemplateSchedule s(1, {{0, 0, 0, 1}});
  EXPECT_THROW(s.job_for(3), ContractViolation);
}

TEST(TemplateScheduleTest, ValidateAgainstAcceptsCorrect) {
  Dag g = two_vertex_chain();
  TemplateSchedule s(1, {{0, 0, 0, 3}, {1, 0, 3, 5}});
  EXPECT_TRUE(s.validate_against(g));
}

TEST(TemplateScheduleTest, ValidateRejectsWrongDuration) {
  Dag g = two_vertex_chain();
  TemplateSchedule s(1, {{0, 0, 0, 2}, {1, 0, 2, 4}});  // v0 needs 3
  EXPECT_FALSE(s.validate_against(g));
}

TEST(TemplateScheduleTest, ValidateRejectsPrecedenceViolation) {
  Dag g = two_vertex_chain();
  // v1 starts before v0 finishes.
  TemplateSchedule s(2, {{0, 0, 0, 3}, {1, 1, 1, 3}});
  EXPECT_FALSE(s.validate_against(g));
}

TEST(TemplateScheduleTest, ValidateRejectsProcessorOverlap) {
  Dag g;
  g.add_vertex(3);
  g.add_vertex(3);
  TemplateSchedule s(1, {{0, 0, 0, 3}, {1, 0, 2, 5}});
  EXPECT_FALSE(s.validate_against(g));
}

TEST(TemplateScheduleTest, ValidateRejectsVertexMismatch) {
  Dag g = two_vertex_chain();
  TemplateSchedule s(1, {{0, 0, 0, 3}});  // missing v1
  EXPECT_FALSE(s.validate_against(g));
}

TEST(TemplateScheduleTest, OccupancyComputation) {
  // 2 processors, makespan 4, total work 6 → 6 / 8 = 0.75.
  TemplateSchedule s(2, {{0, 0, 0, 4}, {1, 1, 0, 2}});
  EXPECT_DOUBLE_EQ(s.occupancy(), 0.75);
}

TEST(TemplateScheduleTest, EmptyScheduleOccupancyZero) {
  TemplateSchedule s(1, {});
  EXPECT_EQ(s.makespan(), 0);
  EXPECT_DOUBLE_EQ(s.occupancy(), 0.0);
}

}  // namespace
}  // namespace fedcons
