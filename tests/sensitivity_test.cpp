// Tests for WCET sensitivity analysis.
#include "fedcons/federated/sensitivity.h"

#include <gtest/gtest.h>

#include "fedcons/core/builders.h"
#include "fedcons/federated/fedcons_algorithm.h"
#include "fedcons/util/check.h"

namespace fedcons {
namespace {

SensitivityTest fedcons_test() {
  return [](const TaskSystem& s, int m) { return fedcons_schedulable(s, m); };
}

DagTask simple_task(Time wcet, Time deadline, Time period) {
  Dag g;
  g.add_vertex(wcet);
  return DagTask(std::move(g), deadline, period);
}

TEST(ScaleTaskWcetsTest, ScalesOnlyTheTarget) {
  TaskSystem sys;
  sys.add(simple_task(10, 100, 100));
  sys.add(simple_task(20, 100, 100));
  TaskSystem scaled = scale_task_wcets(sys, 0, 1.5);
  EXPECT_EQ(scaled[0].vol(), 15);
  EXPECT_EQ(scaled[1].vol(), 20);
  EXPECT_THROW(scale_task_wcets(sys, 5, 1.5), ContractViolation);
  EXPECT_THROW(scale_task_wcets(sys, 0, 0.0), ContractViolation);
}

TEST(ScaleTaskWcetsTest, PreservesStructure) {
  TaskSystem sys;
  sys.add(make_paper_example_task());
  TaskSystem scaled = scale_task_wcets(sys, 0, 2.0);
  EXPECT_EQ(scaled[0].graph().num_edges(), 5u);
  EXPECT_EQ(scaled[0].vol(), 18);
  EXPECT_EQ(scaled[0].deadline(), 16);
}

TEST(SensitivityTest, SingleTaskMarginIsSlackRatio) {
  // vol = 50, D = 100 on one processor: accepted while ⌈50α⌉ ≤ 100 → α = 2.
  TaskSystem sys;
  sys.add(simple_task(50, 100, 100));
  auto margins = wcet_sensitivity(sys, 1, fedcons_test());
  ASSERT_EQ(margins.size(), 1u);
  EXPECT_NEAR(margins[0].margin, 2.0, 1.0 / 16.0);
}

TEST(SensitivityTest, ZeroSlackSystemHasUnitMargin) {
  // Example-2 member: C = D = 1 — any growth breaks the critical path.
  TaskSystem sys = make_capacity_augmentation_counterexample(3);
  auto margins = wcet_sensitivity(sys, 3, fedcons_test(), 4.0);
  for (const auto& m : margins) {
    EXPECT_NEAR(m.margin, 1.0, 1e-9) << "task " << m.task;
  }
  EXPECT_NEAR(system_wcet_margin(sys, 3, fedcons_test(), 4.0), 1.0, 1e-9);
}

TEST(SensitivityTest, UnschedulableSystemReportsZero) {
  TaskSystem sys;
  sys.add(simple_task(200, 100, 100));  // vol > m·D on one processor
  auto margins = wcet_sensitivity(sys, 1, fedcons_test());
  EXPECT_DOUBLE_EQ(margins[0].margin, 0.0);
  EXPECT_DOUBLE_EQ(system_wcet_margin(sys, 1, fedcons_test()), 0.0);
}

TEST(SensitivityTest, MarginsAreAcceptedScales) {
  TaskSystem sys;
  sys.add(make_paper_example_task());
  sys.add(simple_task(3, 20, 40));
  const int m = 1;
  for (const auto& tm : wcet_sensitivity(sys, m, fedcons_test())) {
    ASSERT_GE(tm.margin, 1.0);
    EXPECT_TRUE(fedcons_schedulable(
        scale_task_wcets(sys, tm.task, tm.margin), m))
        << "reported margin not actually accepted (task " << tm.task << ")";
  }
  double sys_margin = system_wcet_margin(sys, m, fedcons_test());
  ASSERT_GE(sys_margin, 1.0);
  EXPECT_TRUE(
      fedcons_schedulable(sys.scaled_by_speed(1.0 / sys_margin), m));
}

TEST(SensitivityTest, SystemMarginBoundedByTaskMargins) {
  // Growing everything includes growing the most constrained task, so the
  // system margin cannot exceed any per-task margin (up to grid rounding).
  TaskSystem sys;
  sys.add(simple_task(40, 100, 100));
  sys.add(simple_task(30, 60, 120));
  const int m = 1;
  double sys_margin = system_wcet_margin(sys, m, fedcons_test());
  for (const auto& tm : wcet_sensitivity(sys, m, fedcons_test())) {
    EXPECT_LE(sys_margin, tm.margin + 1.0 / 32.0);
  }
}

TEST(SensitivityTest, CapsAtMaxScale) {
  TaskSystem sys;
  sys.add(simple_task(1, 1000, 1000));
  double margin = system_wcet_margin(sys, 4, fedcons_test(), 3.0);
  EXPECT_DOUBLE_EQ(margin, 3.0);
}

}  // namespace
}  // namespace fedcons
