// Tests for the DAG workload structure: metrics, validation, and queries.
#include "fedcons/core/dag.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "fedcons/util/check.h"

namespace fedcons {
namespace {

Dag diamond() {
  // v0(2) → {v1(3), v2(5)} → v3(1)
  Dag g;
  g.add_vertex(2);
  g.add_vertex(3);
  g.add_vertex(5);
  g.add_vertex(1);
  g.add_edge(0, 1);
  g.add_edge(0, 2);
  g.add_edge(1, 3);
  g.add_edge(2, 3);
  return g;
}

TEST(DagTest, EmptyGraph) {
  Dag g;
  EXPECT_TRUE(g.empty());
  EXPECT_EQ(g.num_vertices(), 0u);
  EXPECT_EQ(g.num_edges(), 0u);
  EXPECT_TRUE(g.is_acyclic());
  EXPECT_EQ(g.vol(), 0);
  EXPECT_EQ(g.len(), 0);
  EXPECT_EQ(g.width(), 0u);
}

TEST(DagTest, VertexWcetValidation) {
  Dag g;
  EXPECT_THROW(g.add_vertex(0), ContractViolation);
  EXPECT_THROW(g.add_vertex(-5), ContractViolation);
  EXPECT_EQ(g.add_vertex(1), 0u);
  EXPECT_EQ(g.wcet(0), 1);
  EXPECT_THROW(g.wcet(1), ContractViolation);
}

TEST(DagTest, EdgeValidation) {
  Dag g;
  g.add_vertex(1);
  g.add_vertex(1);
  EXPECT_THROW(g.add_edge(0, 0), ContractViolation);  // self-loop
  EXPECT_THROW(g.add_edge(0, 5), ContractViolation);  // bad id
  g.add_edge(0, 1);
  EXPECT_THROW(g.add_edge(0, 1), ContractViolation);  // duplicate
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_FALSE(g.has_edge(1, 0));
  EXPECT_EQ(g.num_edges(), 1u);
}

TEST(DagTest, CycleDetected) {
  Dag g;
  g.add_vertex(1);
  g.add_vertex(1);
  g.add_vertex(1);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 0);
  EXPECT_FALSE(g.is_acyclic());
  EXPECT_THROW(g.len(), ContractViolation);
  EXPECT_THROW(g.topological_order(), ContractViolation);
}

TEST(DagTest, DiamondMetrics) {
  Dag g = diamond();
  EXPECT_EQ(g.vol(), 11);
  EXPECT_EQ(g.len(), 8);  // 2 + 5 + 1 along v0→v2→v3
  EXPECT_EQ(g.width(), 2u);
  EXPECT_EQ(g.in_degree(3), 2u);
  EXPECT_EQ(g.out_degree(0), 2u);
}

TEST(DagTest, TopologicalOrderRespectsEdgesAndIsDeterministic) {
  Dag g = diamond();
  const auto& topo = g.topological_order();
  ASSERT_EQ(topo.size(), 4u);
  auto pos = [&](VertexId v) {
    return std::find(topo.begin(), topo.end(), v) - topo.begin();
  };
  EXPECT_LT(pos(0), pos(1));
  EXPECT_LT(pos(0), pos(2));
  EXPECT_LT(pos(1), pos(3));
  EXPECT_LT(pos(2), pos(3));
  // Deterministic Kahn with min-id tie-break: 0, 1, 2, 3.
  EXPECT_EQ(topo, (std::vector<VertexId>{0, 1, 2, 3}));
}

TEST(DagTest, TopAndBottomLevels) {
  Dag g = diamond();
  EXPECT_EQ(g.top_level(0), 2);
  EXPECT_EQ(g.top_level(1), 5);
  EXPECT_EQ(g.top_level(2), 7);
  EXPECT_EQ(g.top_level(3), 8);
  EXPECT_EQ(g.bottom_level(0), 8);
  EXPECT_EQ(g.bottom_level(1), 4);
  EXPECT_EQ(g.bottom_level(2), 6);
  EXPECT_EQ(g.bottom_level(3), 1);
}

TEST(DagTest, CriticalPath) {
  Dag g = diamond();
  auto path = g.critical_path();
  EXPECT_EQ(path, (std::vector<VertexId>{0, 2, 3}));
  Time sum = 0;
  for (VertexId v : path) sum += g.wcet(v);
  EXPECT_EQ(sum, g.len());
}

TEST(DagTest, CriticalPathOnChain) {
  Dag g;
  g.add_vertex(4);
  g.add_vertex(5);
  g.add_vertex(6);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  EXPECT_EQ(g.len(), 15);
  EXPECT_EQ(g.vol(), 15);
  EXPECT_EQ(g.width(), 1u);
  EXPECT_EQ(g.critical_path(), (std::vector<VertexId>{0, 1, 2}));
}

TEST(DagTest, Reachability) {
  Dag g = diamond();
  EXPECT_TRUE(g.reaches(0, 3));
  EXPECT_TRUE(g.reaches(0, 1));
  EXPECT_FALSE(g.reaches(1, 2));
  EXPECT_FALSE(g.reaches(3, 0));
  EXPECT_FALSE(g.reaches(0, 0));  // non-empty path required, no cycle
}

TEST(DagTest, WidthOfIndependentSet) {
  Dag g;
  for (int i = 0; i < 6; ++i) g.add_vertex(1);
  EXPECT_EQ(g.width(), 6u);
  EXPECT_EQ(g.len(), 1);
  EXPECT_EQ(g.vol(), 6);
}

TEST(DagTest, WidthOfForkJoin) {
  // src → 4 branches → sink: the four branches form the max antichain.
  Dag g;
  VertexId src = g.add_vertex(1);
  VertexId sink = g.add_vertex(1);
  for (int i = 0; i < 4; ++i) {
    VertexId b = g.add_vertex(2);
    g.add_edge(src, b);
    g.add_edge(b, sink);
  }
  EXPECT_EQ(g.width(), 4u);
  EXPECT_EQ(g.len(), 4);
}

TEST(DagTest, MutationInvalidatesCaches) {
  Dag g;
  g.add_vertex(3);
  EXPECT_EQ(g.len(), 3);
  VertexId v = g.add_vertex(4);
  g.add_edge(0, v);
  EXPECT_EQ(g.len(), 7);
  EXPECT_EQ(g.vol(), 7);
}

TEST(DagTest, DotExportMentionsAllElements) {
  Dag g = diamond();
  std::string dot = g.to_dot("d");
  EXPECT_NE(dot.find("digraph d"), std::string::npos);
  EXPECT_NE(dot.find("v0"), std::string::npos);
  EXPECT_NE(dot.find("v3"), std::string::npos);
  EXPECT_NE(dot.find("v0 -> v2"), std::string::npos);
  EXPECT_NE(dot.find("e=5"), std::string::npos);
}

TEST(DagTest, LenLessOrEqualVol) {
  Dag g = diamond();
  EXPECT_LE(g.len(), g.vol());
}

TEST(DagTest, SpanAccessors) {
  Dag g = diamond();
  auto succ = g.successors(0);
  EXPECT_EQ(succ.size(), 2u);
  auto pred = g.predecessors(3);
  EXPECT_EQ(pred.size(), 2u);
  EXPECT_THROW(g.successors(9), ContractViolation);
}

TEST(DagTest, ReducedSuccessorsDropsTransitiveEdges) {
  // Chain 0→1→2 with shortcut 0→2, plus 0→3 where 3 is only reachable
  // directly: the shortcut is redundant, the direct edge is not.
  Dag g;
  for (int i = 0; i < 4; ++i) g.add_vertex(1);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(0, 2);  // transitively implied via 1
  g.add_edge(0, 3);
  auto red0 = g.reduced_successors(0);
  EXPECT_EQ(std::vector<VertexId>(red0.begin(), red0.end()),
            (std::vector<VertexId>{1, 3}));
  auto red1 = g.reduced_successors(1);
  EXPECT_EQ(std::vector<VertexId>(red1.begin(), red1.end()),
            (std::vector<VertexId>{2}));
  EXPECT_THROW(g.reduced_successors(9), ContractViolation);
}

TEST(DagTest, ReducedSuccessorsKeepsDiamondIntact) {
  // No edge of the diamond is transitively implied.
  Dag g = diamond();
  for (VertexId v = 0; v < 4; ++v) {
    auto full = g.successors(v);
    auto red = g.reduced_successors(v);
    EXPECT_EQ(std::vector<VertexId>(red.begin(), red.end()),
              std::vector<VertexId>(full.begin(), full.end()));
  }
}

TEST(DagTest, ReducedSuccessorsPreservesReachability) {
  // A denser graph: every removed edge must still have a directed path.
  Dag g;
  for (int i = 0; i < 6; ++i) g.add_vertex(1);
  g.add_edge(0, 1);
  g.add_edge(0, 2);
  g.add_edge(0, 4);  // implied via 0→1→4
  g.add_edge(1, 3);
  g.add_edge(1, 4);
  g.add_edge(2, 3);
  g.add_edge(3, 5);
  g.add_edge(2, 5);  // implied via 2→3→5
  g.add_edge(0, 5);  // implied via 0→1→3→5
  for (VertexId u = 0; u < 6; ++u) {
    for (VertexId s : g.successors(u)) {
      bool reachable = false;
      for (VertexId r : g.reduced_successors(u)) {
        if (r == s || g.reaches(r, s)) reachable = true;
      }
      EXPECT_TRUE(reachable) << "edge " << u << "->" << s;
    }
    // Reduction is a subset of the original edges.
    for (VertexId r : g.reduced_successors(u)) {
      EXPECT_TRUE(g.has_edge(u, r));
    }
  }
}

TEST(DagTest, ReducedSuccessorsSizeGateReturnsOriginalLists) {
  // Past kMaxReductionVertices the bitset build is skipped: the "reduction"
  // is defined as the original lists (still a sound over-approximation).
  Dag g;
  const auto n = static_cast<VertexId>(Dag::kMaxReductionVertices + 2);
  for (VertexId i = 0; i < n; ++i) g.add_vertex(1);
  for (VertexId i = 0; i + 1 < n; ++i) g.add_edge(i, i + 1);
  g.add_edge(0, 2);  // transitive, but kept by the gated path
  auto red = g.reduced_successors(0);
  EXPECT_EQ(std::vector<VertexId>(red.begin(), red.end()),
            (std::vector<VertexId>{1, 2}));
}

TEST(DagTest, ReducedSuccessorsInvalidatedByMutation) {
  Dag g;
  for (int i = 0; i < 3; ++i) g.add_vertex(1);
  g.add_edge(0, 2);
  EXPECT_EQ(g.reduced_successors(0).size(), 1u);
  // Adding 0→1→2 makes the cached 0→2 redundant; the cache must rebuild.
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  auto red = g.reduced_successors(0);
  EXPECT_EQ(std::vector<VertexId>(red.begin(), red.end()),
            (std::vector<VertexId>{1}));
}

}  // namespace
}  // namespace fedcons
