// Unit and property tests for exact rational arithmetic.
#include "fedcons/util/rational.h"

#include <gtest/gtest.h>

#include "fedcons/util/check.h"
#include "fedcons/util/rng.h"

namespace fedcons {
namespace {

TEST(BigRationalTest, DefaultIsZero) {
  BigRational r;
  EXPECT_TRUE(r.is_zero());
  EXPECT_EQ(r.sign(), 0);
  EXPECT_TRUE(r.is_integer());
  EXPECT_EQ(r.floor(), 0);
}

TEST(BigRationalTest, RejectsZeroDenominator) {
  EXPECT_THROW(BigRational(1, 0), ContractViolation);
  EXPECT_THROW(BigRational(BigInt(1), BigInt(0)), ContractViolation);
}

TEST(BigRationalTest, SignNormalization) {
  BigRational a(1, -2);
  EXPECT_EQ(a.sign(), -1);
  EXPECT_EQ(a, BigRational(-1, 2));
  BigRational b(-3, -4);
  EXPECT_EQ(b.sign(), 1);
  EXPECT_EQ(b, BigRational(3, 4));
}

TEST(BigRationalTest, EqualityIgnoresRepresentation) {
  EXPECT_EQ(BigRational(1, 2), BigRational(2, 4));
  EXPECT_EQ(BigRational(6, 3), BigRational(2));
  EXPECT_NE(BigRational(1, 2), BigRational(1, 3));
}

TEST(BigRationalTest, ArithmeticBasics) {
  EXPECT_EQ(BigRational(1, 2) + BigRational(1, 3), BigRational(5, 6));
  EXPECT_EQ(BigRational(1, 2) - BigRational(1, 3), BigRational(1, 6));
  EXPECT_EQ(BigRational(2, 3) * BigRational(3, 4), BigRational(1, 2));
  EXPECT_EQ(BigRational(1, 2) / BigRational(1, 4), BigRational(2));
  EXPECT_THROW(BigRational(1) / BigRational(0), ContractViolation);
}

TEST(BigRationalTest, OrderingCrossMultiplies) {
  EXPECT_LT(BigRational(1, 3), BigRational(1, 2));
  EXPECT_LT(BigRational(-1, 2), BigRational(-1, 3));
  EXPECT_LE(BigRational(2, 4), BigRational(1, 2));
  EXPECT_GT(BigRational(7, 8), BigRational(6, 7));
}

TEST(BigRationalTest, FloorAndCeil) {
  EXPECT_EQ(BigRational(7, 2).floor(), 3);
  EXPECT_EQ(BigRational(7, 2).ceil(), 4);
  EXPECT_EQ(BigRational(-7, 2).floor(), -4);
  EXPECT_EQ(BigRational(-7, 2).ceil(), -3);
  EXPECT_EQ(BigRational(6, 2).floor(), 3);
  EXPECT_EQ(BigRational(6, 2).ceil(), 3);
  EXPECT_EQ(BigRational(0).floor(), 0);
}

TEST(BigRationalTest, IsInteger) {
  EXPECT_TRUE(BigRational(4, 2).is_integer());
  EXPECT_FALSE(BigRational(5, 2).is_integer());
  EXPECT_TRUE(BigRational(0, 7).is_integer());
  EXPECT_TRUE(BigRational(-9, 3).is_integer());
}

TEST(BigRationalTest, ToStringReadable) {
  EXPECT_EQ(BigRational(3).to_string(), "3");
  EXPECT_EQ(BigRational(1, 2).to_string(), "1/2");
  EXPECT_EQ(BigRational(-1, 2).to_string(), "-1/2");
}

TEST(BigRationalTest, ToDoubleApproximates) {
  EXPECT_NEAR(BigRational(1, 3).to_double(), 1.0 / 3.0, 1e-15);
  EXPECT_NEAR(BigRational(-22, 7).to_double(), -22.0 / 7.0, 1e-15);
}

TEST(BigRationalTest, MakeRatioHelper) {
  EXPECT_EQ(make_ratio(9, 16).to_string(), "9/16");
  EXPECT_EQ(make_ratio(9, 20), BigRational(9, 20));
}

// Properties on random operands, cross-checked against long double.
class RationalPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RationalPropertyTest, FieldAxioms) {
  Rng rng(GetParam());
  auto draw = [&] {
    return BigRational(rng.uniform_int(-1000, 1000),
                       rng.uniform_int(1, 1000));
  };
  for (int i = 0; i < 300; ++i) {
    BigRational a = draw(), b = draw(), c = draw();
    EXPECT_EQ(a + b, b + a);
    EXPECT_EQ(a * b, b * a);
    EXPECT_EQ((a + b) + c, a + (b + c));
    EXPECT_EQ(a * (b + c), a * b + a * c);
    EXPECT_EQ(a - a, BigRational(0));
    if (!b.is_zero()) EXPECT_EQ((a / b) * b, a);
  }
}

TEST_P(RationalPropertyTest, OrderConsistentWithDouble) {
  Rng rng(GetParam() ^ 0x5555);
  for (int i = 0; i < 300; ++i) {
    std::int64_t n1 = rng.uniform_int(-10000, 10000);
    std::int64_t d1 = rng.uniform_int(1, 10000);
    std::int64_t n2 = rng.uniform_int(-10000, 10000);
    std::int64_t d2 = rng.uniform_int(1, 10000);
    BigRational a(n1, d1), b(n2, d2);
    // Exact cross-product comparison as the oracle.
    __int128 lhs = static_cast<__int128>(n1) * d2;
    __int128 rhs = static_cast<__int128>(n2) * d1;
    EXPECT_EQ(a < b, lhs < rhs);
    EXPECT_EQ(a == b, lhs == rhs);
  }
}

TEST_P(RationalPropertyTest, FloorCeilInvariants) {
  Rng rng(GetParam() ^ 0x9999);
  for (int i = 0; i < 300; ++i) {
    BigRational r(rng.uniform_int(-100000, 100000),
                  rng.uniform_int(1, 1000));
    std::int64_t f = r.floor();
    std::int64_t c = r.ceil();
    EXPECT_LE(BigRational(f), r);
    EXPECT_LT(r, BigRational(f + 1));
    EXPECT_GE(BigRational(c), r);
    EXPECT_GT(r, BigRational(c - 1));
    EXPECT_TRUE(c == f || c == f + 1);
    EXPECT_EQ(c == f, r.is_integer());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RationalPropertyTest,
                         ::testing::Values(11u, 22u, 33u));

}  // namespace
}  // namespace fedcons
