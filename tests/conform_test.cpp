// Tests for the conformance subsystem: oracles, harness determinism, the
// shrinker, artifact round-tripping, and the anomaly demonstration.
#include "fedcons/conform/harness.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "fedcons/conform/anomaly_demo.h"
#include "fedcons/conform/artifact.h"
#include "fedcons/conform/oracle.h"
#include "fedcons/conform/shrinker.h"
#include "fedcons/core/io.h"
#include "fedcons/util/check.h"
#include "fedcons/util/perf_counters.h"

namespace fedcons {
namespace {

/// The hand-crafted two-task witness refuting the literal Fig. 4 demand
/// check under utilization-descending placement: B (u = 9/16) is placed
/// first, A's single-point check at t = 9 sees DBF*(B, 9) = 0 and passes,
/// yet total demand at t = 16 is 8 + 9 = 17 > 16.
TaskSystem handcrafted_udo_witness() {
  Dag a;
  a.add_vertex(8);
  Dag b;
  b.add_vertex(9);
  TaskSystem s;
  s.add(DagTask(std::move(a), 9, 18, "hand-A"));
  s.add(DagTask(std::move(b), 16, 16, "hand-B"));
  return s;
}

SimConfig witness_sim_config() {
  SimConfig cfg;  // kAlwaysWcet, kPeriodic: the synchronous worst case
  cfg.horizon = 40;
  cfg.seed = 1;
  return cfg;
}

TEST(ConformanceEntryTest, BatteriesExposeExpectedNames) {
  const auto builtin = builtin_conformance_entries();
  EXPECT_GE(builtin.size(), 9u);
  for (const auto& e : builtin) {
    EXPECT_FALSE(e.name.empty());
    EXPECT_TRUE(static_cast<bool>(e.run));
  }
  const auto demo = demonstration_conformance_entries();
  ASSERT_EQ(demo.size(), 2u);
  // The demonstration battery must never leak into the default one.
  for (const auto& d : demo) {
    for (const auto& b : builtin) EXPECT_NE(d.name, b.name);
  }
  EXPECT_NO_THROW(find_conformance_entry("FEDCONS"));
  EXPECT_NO_THROW(find_conformance_entry("FEDCONS-lit-udo"));
  EXPECT_THROW(find_conformance_entry("no-such-entry"), ContractViolation);
}

TEST(ConformanceEntryTest, HandcraftedWitnessRefutesLiteralUdoOnly) {
  const TaskSystem sys = handcrafted_udo_witness();
  const SimConfig cfg = witness_sim_config();

  const auto unsound = find_conformance_entry("FEDCONS-lit-udo");
  const ConformanceOutcome bad = unsound.run(sys, 1, cfg);
  EXPECT_TRUE(bad.supported);
  EXPECT_TRUE(bad.admitted);
  EXPECT_GT(bad.sim.deadline_misses, 0u);
  EXPECT_TRUE(bad.violation());

  // The sound algorithm rejects the same system (U_sum = 4/9 + 9/16 > 1).
  const auto sound = find_conformance_entry("FEDCONS");
  const ConformanceOutcome good = sound.run(sys, 1, cfg);
  EXPECT_TRUE(good.supported);
  EXPECT_FALSE(good.admitted);
  EXPECT_FALSE(good.violation());
}

TEST(ConformanceEntryTest, OutcomeViolationRequiresAllThree) {
  ConformanceOutcome o;
  EXPECT_FALSE(o.violation());
  o.supported = true;
  o.admitted = true;
  EXPECT_FALSE(o.violation());  // zero misses
  o.sim.deadline_misses = 1;
  EXPECT_TRUE(o.violation());
  o.admitted = false;
  EXPECT_FALSE(o.violation());
}

TEST(HarnessTest, BuiltinBatteryHasZeroViolations) {
  ConformConfig config = default_conform_config();
  config.trials = 200;
  config.m = 4;
  config.master_seed = 7;
  const auto entries = builtin_conformance_entries();
  const ConformReport report = run_conformance(config, entries);

  EXPECT_EQ(report.trials, 200u);
  EXPECT_EQ(report.total_violations(), 0u);
  EXPECT_TRUE(report.violations.empty());
  ASSERT_EQ(report.entries.size(), entries.size());
  std::uint64_t total_admitted = 0;
  for (const auto& e : report.entries) {
    EXPECT_EQ(e.violations, 0u) << e.name;
    EXPECT_GT(e.supported, 0u) << e.name;  // implicit_fraction gives
                                           // FED-LI-implicit real coverage
    total_admitted += e.admitted;
  }
  EXPECT_GT(total_admitted, 0u);
  // One oracle evaluation per (trial, entry) pair.
  EXPECT_EQ(report.counters.conform_trials, 200u * entries.size());
  EXPECT_EQ(report.counters.conform_violations, 0u);
}

TEST(HarnessTest, FindsAndMinimizesUnsoundEntry) {
  ConformConfig config = default_conform_config();
  config.trials = 50;
  config.master_seed = 3;
  std::vector<ConformanceEntry> entries;
  entries.push_back(find_conformance_entry("FEDCONS-lit-udo"));
  const ConformReport report = run_conformance(config, entries);

  EXPECT_GT(report.total_violations(), 0u);
  ASSERT_FALSE(report.violations.empty());
  EXPECT_EQ(report.counters.conform_violations, report.total_violations());
  EXPECT_GT(report.counters.conform_shrink_steps, 0u);

  for (const auto& v : report.violations) {
    EXPECT_EQ(v.algorithm, "FEDCONS-lit-udo");
    EXPECT_LE(v.minimized_m, config.m);
    EXPECT_GT(v.shrink_probes, 0u);
    // Minimization never loses the violation: the pinned artifact replays.
    const ConformanceOutcome replayed = replay_artifact(v.artifact);
    EXPECT_TRUE(replayed.violation()) << "trial " << v.trial;
    // A minimized system is never larger than the original.
    EXPECT_LE(v.minimized_text.size(), v.system_text.size());
    // And the artifact survives a serialize/parse round trip.
    const ViolationArtifact reparsed = parse_artifact(to_json(v.artifact));
    EXPECT_EQ(reparsed.system_text, v.artifact.system_text);
  }
}

TEST(HarnessTest, ReportIsBitIdenticalAcrossThreadCounts) {
  ConformConfig config = default_conform_config();
  config.trials = 30;
  config.master_seed = 3;
  std::vector<ConformanceEntry> entries;
  entries.push_back(find_conformance_entry("FEDCONS"));
  entries.push_back(find_conformance_entry("FEDCONS-lit-udo"));

  config.num_threads = 1;
  const ConformReport serial = run_conformance(config, entries);
  config.num_threads = 3;
  const ConformReport parallel = run_conformance(config, entries);

  ASSERT_EQ(serial.entries.size(), parallel.entries.size());
  for (std::size_t e = 0; e < serial.entries.size(); ++e) {
    EXPECT_EQ(serial.entries[e].supported, parallel.entries[e].supported);
    EXPECT_EQ(serial.entries[e].admitted, parallel.entries[e].admitted);
    EXPECT_EQ(serial.entries[e].violations, parallel.entries[e].violations);
    EXPECT_EQ(serial.entries[e].jobs_released,
              parallel.entries[e].jobs_released);
  }
  // The violation path — including minimization and artifact text — is part
  // of the determinism contract, not just the aggregate counts.
  ASSERT_EQ(serial.violations.size(), parallel.violations.size());
  ASSERT_GT(serial.violations.size(), 0u);
  for (std::size_t i = 0; i < serial.violations.size(); ++i) {
    EXPECT_EQ(serial.violations[i].trial, parallel.violations[i].trial);
    EXPECT_EQ(serial.violations[i].system_text,
              parallel.violations[i].system_text);
    EXPECT_EQ(serial.violations[i].minimized_text,
              parallel.violations[i].minimized_text);
    EXPECT_EQ(serial.violations[i].minimized_m,
              parallel.violations[i].minimized_m);
    EXPECT_EQ(to_json(serial.violations[i].artifact),
              to_json(parallel.violations[i].artifact));
  }
  EXPECT_EQ(serial.counters.conform_trials, parallel.counters.conform_trials);
  EXPECT_EQ(serial.counters.conform_violations,
            parallel.counters.conform_violations);
  EXPECT_EQ(serial.counters.conform_shrink_steps,
            parallel.counters.conform_shrink_steps);
}

TEST(ShrinkerTest, MinimizesHandcraftedWitnessAndCountsProbes) {
  const auto entry = find_conformance_entry("FEDCONS-lit-udo");
  const SimConfig cfg = witness_sim_config();
  const std::uint64_t steps_before = perf_counters().conform_shrink_steps;

  const ShrinkResult result =
      shrink_violation(entry, handcrafted_udo_witness(), 1, cfg);

  EXPECT_EQ(result.m, 1);
  EXPECT_GE(result.probes, 1u);
  EXPECT_EQ(perf_counters().conform_shrink_steps - steps_before,
            result.probes);
  // The minimized system still violates, and shrinking is idempotent-safe:
  // it never returns a non-violating system.
  EXPECT_TRUE(entry.run(result.system, result.m, cfg).violation());
  // The witness is already near-minimal (two single-vertex tasks); the
  // shrinker must not inflate it.
  EXPECT_LE(result.system.size(), 2u);
}

TEST(ShrinkerTest, RespectsProbeBudget) {
  const auto entry = find_conformance_entry("FEDCONS-lit-udo");
  const ShrinkResult result = shrink_violation(
      entry, handcrafted_udo_witness(), 1, witness_sim_config(), 3);
  EXPECT_LE(result.probes, 3u);
  EXPECT_TRUE(entry.run(result.system, result.m, witness_sim_config())
                  .violation());
}

TEST(ShrinkerTest, RejectsNonViolatingInput) {
  const auto entry = find_conformance_entry("FEDCONS");
  // FEDCONS rejects the witness, so there is no violation to shrink.
  EXPECT_THROW(shrink_violation(entry, handcrafted_udo_witness(), 1,
                                witness_sim_config()),
               ContractViolation);
}

TEST(ArtifactTest, RoundTripPreservesEveryField) {
  ViolationArtifact art;
  art.algorithm = "FEDCONS-lit-udo";
  art.m = 3;
  art.sim.horizon = 123;
  art.sim.release = ReleaseModel::kSporadic;
  art.sim.jitter_frac = 0.75;
  art.sim.exec = ExecModel::kUniform;
  art.sim.exec_lo = 0.25;
  art.sim.seed = 987654321;
  art.note = "quotes \" and \\ backslashes\nand newlines";
  art.observed.jobs_released = 4;
  art.observed.deadline_misses = 2;
  art.observed.max_lateness = 7;
  art.observed.max_response_time = 17;
  art.system_text = serialize_task_system(handcrafted_udo_witness());

  const ViolationArtifact back = parse_artifact(to_json(art));
  EXPECT_EQ(back.algorithm, art.algorithm);
  EXPECT_EQ(back.m, art.m);
  EXPECT_EQ(back.sim.horizon, art.sim.horizon);
  EXPECT_EQ(back.sim.release, art.sim.release);
  EXPECT_DOUBLE_EQ(back.sim.jitter_frac, art.sim.jitter_frac);
  EXPECT_EQ(back.sim.exec, art.sim.exec);
  EXPECT_DOUBLE_EQ(back.sim.exec_lo, art.sim.exec_lo);
  EXPECT_EQ(back.sim.seed, art.sim.seed);
  EXPECT_EQ(back.note, art.note);
  EXPECT_EQ(back.observed.jobs_released, art.observed.jobs_released);
  EXPECT_EQ(back.observed.deadline_misses, art.observed.deadline_misses);
  EXPECT_EQ(back.observed.max_lateness, art.observed.max_lateness);
  EXPECT_EQ(back.observed.max_response_time, art.observed.max_response_time);
  EXPECT_EQ(back.system_text, art.system_text);
  // Serialization is byte-deterministic, so a second round trip is exact.
  EXPECT_EQ(to_json(back), to_json(art));
}

TEST(ArtifactTest, ReplayRefutesTheHandcraftedWitness) {
  ViolationArtifact art;
  art.algorithm = "FEDCONS-lit-udo";
  art.m = 1;
  art.sim = witness_sim_config();
  art.system_text = serialize_task_system(handcrafted_udo_witness());
  const ConformanceOutcome outcome = replay_artifact(art);
  EXPECT_TRUE(outcome.violation());
}

TEST(ArtifactTest, ParserRejectsMalformedInput) {
  ViolationArtifact art;
  art.algorithm = "FEDCONS";
  art.m = 1;
  art.system_text = serialize_task_system(handcrafted_udo_witness());
  const std::string good = to_json(art);

  EXPECT_THROW(parse_artifact(""), ParseError);
  EXPECT_THROW(parse_artifact("not json"), ParseError);
  EXPECT_THROW(parse_artifact("{\"schema\": \"fedcons-conformance-repro-v1\""),
               ParseError);  // truncated
  EXPECT_THROW(parse_artifact("{\"schema\": \"some-other-schema\"}"),
               ParseError);  // wrong schema tag
  EXPECT_THROW(parse_artifact("{\"algorithm\": \"FEDCONS\"}"),
               ParseError);  // schema field missing entirely
  // Valid JSON whose embedded system text is garbage must also fail.
  std::string bad_system = good;
  const std::string needle = "task hand-A";
  bad_system.replace(bad_system.find(needle), needle.size(), "tusk hand-A");
  EXPECT_THROW(parse_artifact(bad_system), ParseError);
  EXPECT_NO_THROW(parse_artifact(good));
}

TEST(AnomalyDemoTest, OnlineRerunMissesWhereTemplateReplayDoesNot) {
  const AnomalyDemoReport demo = run_anomaly_demo();
  ASSERT_TRUE(demo.found);
  EXPECT_GE(demo.seed, 1u);

  // The differential core: same system, same m, same seed.
  EXPECT_TRUE(demo.online.supported);
  EXPECT_TRUE(demo.online.admitted);
  EXPECT_GT(demo.online.sim.deadline_misses, 0u);
  EXPECT_TRUE(demo.online.violation());

  EXPECT_TRUE(demo.replay.supported);
  EXPECT_TRUE(demo.replay.admitted);
  EXPECT_EQ(demo.replay.sim.deadline_misses, 0u);
  EXPECT_FALSE(demo.replay.violation());

  // The packaged artifact reproduces the online-rerun refutation.
  EXPECT_EQ(demo.artifact.algorithm, "FEDCONS@online-rerun");
  EXPECT_TRUE(replay_artifact(demo.artifact).violation());
  EXPECT_EQ(demo.artifact.system_text, demo.system_text);
}

TEST(AnomalyDemoTest, DeterministicAcrossInvocations) {
  const AnomalyDemoReport a = run_anomaly_demo();
  const AnomalyDemoReport b = run_anomaly_demo();
  ASSERT_TRUE(a.found);
  ASSERT_TRUE(b.found);
  EXPECT_EQ(a.seed, b.seed);
  EXPECT_EQ(to_json(a.artifact), to_json(b.artifact));
}

}  // namespace
}  // namespace fedcons
