// Tests for the partitioned deadline-monotonic baseline.
#include "fedcons/baselines/partitioned_dm.h"

#include <gtest/gtest.h>

#include <array>

#include "fedcons/analysis/rta.h"
#include "fedcons/baselines/partitioned_seq.h"
#include "fedcons/core/builders.h"
#include "fedcons/gen/taskset_gen.h"
#include "fedcons/util/check.h"
#include "fedcons/util/rng.h"

namespace fedcons {
namespace {

DagTask simple_task(Time wcet, Time deadline, Time period) {
  Dag g;
  g.add_vertex(wcet);
  return DagTask(std::move(g), deadline, period);
}

TEST(PartitionedDmTest, EmptySystem) {
  EXPECT_TRUE(partitioned_dm(TaskSystem{}, 2).success);
  EXPECT_THROW(partitioned_dm(TaskSystem{}, 0), ContractViolation);
}

TEST(PartitionedDmTest, SimplePlacement) {
  TaskSystem sys;
  sys.add(simple_task(6, 10, 20));
  sys.add(simple_task(6, 10, 20));
  auto r = partitioned_dm(sys, 2);
  ASSERT_TRUE(r.success);
  EXPECT_EQ(r.assignment[0].size() + r.assignment[1].size(), 2u);
  EXPECT_FALSE(partitioned_dm_schedulable(sys, 1));
}

TEST(PartitionedDmTest, HighDensityTaskRejectedEverywhere) {
  TaskSystem sys;
  std::array<Time, 6> w{1, 1, 1, 1, 1, 1};
  sys.add(DagTask(make_independent(w), 3, 12));  // vol 6 > D 3
  EXPECT_FALSE(partitioned_dm_schedulable(sys, 64));
}

TEST(PartitionedDmTest, RejectsArbitraryDeadlines) {
  TaskSystem sys;
  sys.add(simple_task(1, 20, 10));
  EXPECT_THROW(partitioned_dm(sys, 2), ContractViolation);
}

TEST(PartitionedDmTest, AcceptedBinsPassRta) {
  Rng rng(21);
  TaskSetParams params;
  params.num_tasks = 8;
  params.total_utilization = 2.0;
  params.utilization_cap = 0.9;
  int verified = 0;
  for (int trial = 0; trial < 30; ++trial) {
    TaskSystem sys = generate_task_system(rng, params);
    auto r = partitioned_dm(sys, 4);
    if (!r.success) continue;
    for (const auto& bin : r.assignment) {
      std::vector<SporadicTask> seq;
      for (TaskId t : bin) seq.push_back(sys[t].to_sequential());
      EXPECT_TRUE(dm_schedulable(seq));
      ++verified;
    }
  }
  EXPECT_GT(verified, 0);
}

TEST(PartitionedDmTest, NeverBeatsPartitionedEdfInAggregate) {
  // Per-processor DM is dominated by per-processor EDF (optimality), but the
  // bin-packing orders coincide here (both DM-first-fit), so P-SEQ (EDF
  // bins, DBF* admission) should accept at least as often in aggregate.
  Rng rng(22);
  TaskSetParams params;
  params.num_tasks = 10;
  params.total_utilization = 2.5;
  params.utilization_cap = 0.9;
  int dm_count = 0, edf_count = 0;
  for (int trial = 0; trial < 50; ++trial) {
    TaskSystem sys = generate_task_system(rng, params);
    if (partitioned_dm_schedulable(sys, 3)) ++dm_count;
    if (partitioned_sequential_schedulable(sys, 3)) ++edf_count;
  }
  EXPECT_GE(edf_count, dm_count);
}

TEST(PartitionedDmTest, MonotoneInProcessorCount) {
  Rng rng(23);
  TaskSetParams params;
  params.num_tasks = 6;
  params.total_utilization = 2.0;
  params.utilization_cap = 0.9;
  for (int trial = 0; trial < 15; ++trial) {
    TaskSystem sys = generate_task_system(rng, params);
    bool prev = false;
    for (int m = 1; m <= 8; ++m) {
      bool now = partitioned_dm_schedulable(sys, m);
      EXPECT_TRUE(!prev || now);
      prev = now;
    }
  }
}

}  // namespace
}  // namespace fedcons
