// Tests for graceful degradation on processor failure: re-admission on the
// surviving processors, the shedding policy, and the structured report.
#include "fedcons/fault/degraded.h"

#include <gtest/gtest.h>

#include <array>

#include "fedcons/core/builders.h"

namespace fedcons {
namespace {

/// n identical light tasks with utilization u = c / 10 each.
TaskSystem light_tasks(int n, Time c) {
  TaskSystem sys;
  for (int i = 0; i < n; ++i) {
    sys.add(DagTask(make_chain(std::array<Time, 1>{c}), 10, 10,
                    "tau" + std::to_string(i)));
  }
  return sys;
}

TEST(DegradedModeTest, FullRescheduleWhenSurvivorsFit) {
  // Three U=0.1 tasks easily fit on the single surviving processor.
  const TaskSystem sys = light_tasks(3, 1);
  const DegradedModeReport rep =
      degrade_on_processor_failure(sys, 2, {0, 100});
  EXPECT_EQ(rep.original_m, 2);
  EXPECT_EQ(rep.remaining_m, 1);
  EXPECT_TRUE(rep.full_reschedule);
  EXPECT_TRUE(rep.result.success);
  EXPECT_EQ(rep.survivors.size(), 3u);
  EXPECT_TRUE(rep.shed.empty());
  const std::string text = rep.describe(sys);
  EXPECT_NE(text.find("full reschedule"), std::string::npos);
}

TEST(DegradedModeTest, ShedsUntilTheRemainderFits) {
  // Two U=0.8 tasks fit on two processors but not on one: exactly one must
  // be shed and the survivor must be admitted.
  const TaskSystem sys = light_tasks(2, 8);
  ASSERT_TRUE(fedcons_schedule(sys, 2).success);
  const DegradedModeReport rep =
      degrade_on_processor_failure(sys, 2, {1, 500});
  EXPECT_FALSE(rep.full_reschedule);
  EXPECT_TRUE(rep.result.success);
  EXPECT_EQ(rep.survivors.size(), 1u);
  ASSERT_EQ(rep.shed.size(), 1u);
  EXPECT_FALSE(rep.shed[0].reason.empty());
  // The shed entry names a task of the original system.
  EXPECT_LT(rep.shed[0].task, sys.size());
  const std::string text = rep.describe(sys);
  EXPECT_NE(text.find("SHED"), std::string::npos);
}

TEST(DegradedModeTest, LastProcessorFailureShedsEverything) {
  const TaskSystem sys = light_tasks(2, 1);
  const DegradedModeReport rep =
      degrade_on_processor_failure(sys, 1, {0, 0});
  EXPECT_EQ(rep.remaining_m, 0);
  EXPECT_TRUE(rep.survivors.empty());
  EXPECT_EQ(rep.shed.size(), 2u);
  EXPECT_FALSE(rep.result.success);
  EXPECT_FALSE(rep.full_reschedule);
  EXPECT_NE(rep.describe(sys).find("platform exhausted"), std::string::npos);
}

TEST(DegradedModeTest, SurvivorOrderFollowsTheOriginalSystem) {
  const TaskSystem sys = light_tasks(4, 1);
  const DegradedModeReport rep =
      degrade_on_processor_failure(sys, 3, {2, 42});
  ASSERT_TRUE(rep.result.success);
  for (std::size_t k = 1; k < rep.survivors.size(); ++k) {
    EXPECT_LT(rep.survivors[k - 1], rep.survivors[k]);
  }
  EXPECT_EQ(rep.failure.processor, 2);
  EXPECT_EQ(rep.failure.at, 42);
}

TEST(DegradedModeTest, JsonReportIsDeterministicAndStructured) {
  const TaskSystem sys = light_tasks(2, 8);
  const DegradedModeReport rep =
      degrade_on_processor_failure(sys, 2, {1, 500});
  const std::string a = degraded_report_json(sys, rep);
  const std::string b = degraded_report_json(sys, rep);
  EXPECT_EQ(a, b);
  EXPECT_NE(a.find("\"report\": \"degraded-mode\""), std::string::npos);
  EXPECT_NE(a.find("\"failed_processor\": 1"), std::string::npos);
  EXPECT_NE(a.find("\"remaining_m\": 1"), std::string::npos);
  EXPECT_NE(a.find("\"full_reschedule\": false"), std::string::npos);
  EXPECT_NE(a.find("\"shed\""), std::string::npos);
}

}  // namespace
}  // namespace fedcons
