// Compiles the umbrella header and exercises one cross-subsystem flow —
// guards against the umbrella drifting out of sync with the module headers.
#include "fedcons/fedcons.h"

#include <gtest/gtest.h>

namespace fedcons {
namespace {

TEST(UmbrellaTest, EndToEndThroughSingleInclude) {
  TaskSystem sys;
  sys.add(make_paper_example_task());
  ASSERT_TRUE(passes_necessary_conditions(sys, 1));

  FedconsResult alloc = fedcons_schedule(sys, 1);
  ASSERT_TRUE(alloc.success);

  SimConfig cfg;
  cfg.horizon = 2000;
  SystemSimReport rep = simulate_system(sys, alloc, cfg);
  EXPECT_EQ(rep.total.deadline_misses, 0u);

  // Round-trip through serialization for good measure.
  TaskSystem back = parse_task_system(serialize_task_system(sys));
  EXPECT_EQ(back.size(), 1u);
  EXPECT_EQ(back[0].vol(), 9);
}

}  // namespace
}  // namespace fedcons
