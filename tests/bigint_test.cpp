// Unit and property tests for the arbitrary-precision integer substrate.
#include "fedcons/util/bigint.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>

#include "fedcons/util/rng.h"

namespace fedcons {
namespace {

TEST(BigIntTest, DefaultIsZero) {
  BigInt z;
  EXPECT_TRUE(z.is_zero());
  EXPECT_EQ(z.sign(), 0);
  EXPECT_EQ(z.to_string(), "0");
  EXPECT_EQ(z.limb_count(), 0u);
}

TEST(BigIntTest, Int64RoundTrip) {
  for (std::int64_t v : {std::int64_t{0}, std::int64_t{1}, std::int64_t{-1},
                         std::int64_t{42}, std::int64_t{-99999},
                         std::numeric_limits<std::int64_t>::max(),
                         std::numeric_limits<std::int64_t>::min()}) {
    BigInt b(v);
    ASSERT_TRUE(b.fits_int64()) << v;
    EXPECT_EQ(b.to_int64(), v);
  }
}

TEST(BigIntTest, Int64MinDoesNotOverflow) {
  BigInt b(std::numeric_limits<std::int64_t>::min());
  EXPECT_EQ(b.to_string(), "-9223372036854775808");
}

TEST(BigIntTest, AdditionSmall) {
  EXPECT_EQ((BigInt(2) + BigInt(3)).to_int64(), 5);
  EXPECT_EQ((BigInt(-2) + BigInt(3)).to_int64(), 1);
  EXPECT_EQ((BigInt(2) + BigInt(-3)).to_int64(), -1);
  EXPECT_EQ((BigInt(-2) + BigInt(-3)).to_int64(), -5);
}

TEST(BigIntTest, SubtractionSmall) {
  EXPECT_EQ((BigInt(10) - BigInt(4)).to_int64(), 6);
  EXPECT_EQ((BigInt(4) - BigInt(10)).to_int64(), -6);
  EXPECT_EQ((BigInt(-4) - BigInt(-10)).to_int64(), 6);
}

TEST(BigIntTest, MultiplicationSmall) {
  EXPECT_EQ((BigInt(7) * BigInt(6)).to_int64(), 42);
  EXPECT_EQ((BigInt(-7) * BigInt(6)).to_int64(), -42);
  EXPECT_EQ((BigInt(-7) * BigInt(-6)).to_int64(), 42);
  EXPECT_TRUE((BigInt(0) * BigInt(123456)).is_zero());
}

TEST(BigIntTest, MultiplicationGrowsBeyondInt64) {
  BigInt big = BigInt(std::numeric_limits<std::int64_t>::max());
  BigInt sq = big * big;
  EXPECT_FALSE(sq.fits_int64());
  // (2^63 − 1)^2 = 85070591730234615847396907784232501249
  EXPECT_EQ(sq.to_string(), "85070591730234615847396907784232501249");
}

TEST(BigIntTest, ZeroResultIsCanonical) {
  BigInt a(12345);
  BigInt z = a - a;
  EXPECT_TRUE(z.is_zero());
  EXPECT_FALSE(z.is_negative());
  EXPECT_EQ(z.limb_count(), 0u);
}

TEST(BigIntTest, ComparisonTotalOrder) {
  EXPECT_LT(BigInt(-5), BigInt(-2));
  EXPECT_LT(BigInt(-2), BigInt(0));
  EXPECT_LT(BigInt(0), BigInt(3));
  EXPECT_LT(BigInt(3), BigInt(30));
  EXPECT_EQ(BigInt(17), BigInt(17));
  EXPECT_NE(BigInt(17), BigInt(-17));
  EXPECT_GE(BigInt(5), BigInt(5));
  EXPECT_GT(BigInt(6), BigInt(5));
  EXPECT_LE(BigInt(5), BigInt(5));
}

TEST(BigIntTest, NegationInvolution) {
  BigInt a(987654321);
  EXPECT_EQ(-(-a), a);
  EXPECT_EQ(-BigInt(0), BigInt(0));
}

TEST(BigIntTest, ToStringMultiChunk) {
  // 10^18 * 10^18 = 10^36 exercises the base-10^9 chunking with zero pads.
  BigInt e18(1000000000000000000LL);
  EXPECT_EQ((e18 * e18).to_string(),
            "1000000000000000000000000000000000000");
}

TEST(BigIntTest, ToDoubleApproximation) {
  BigInt b(1LL << 40);
  EXPECT_DOUBLE_EQ(b.to_double(), static_cast<double>(1LL << 40));
  EXPECT_DOUBLE_EQ((-b).to_double(), -static_cast<double>(1LL << 40));
}

// Property: BigInt arithmetic agrees with native __int128 on random operands.
class BigIntPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BigIntPropertyTest, MatchesInt128) {
  Rng rng(GetParam());
  for (int i = 0; i < 500; ++i) {
    const std::int64_t x = rng.uniform_int(-1'000'000'000LL, 1'000'000'000LL);
    const std::int64_t y = rng.uniform_int(-1'000'000'000LL, 1'000'000'000LL);
    BigInt bx(x), by(y);
    EXPECT_EQ((bx + by).to_int64(), x + y);
    EXPECT_EQ((bx - by).to_int64(), x - y);
    __int128 prod = static_cast<__int128>(x) * y;
    BigInt bprod = bx * by;
    ASSERT_TRUE(bprod.fits_int64());
    EXPECT_EQ(bprod.to_int64(), static_cast<std::int64_t>(prod));
    EXPECT_EQ(bx < by, x < y);
    EXPECT_EQ(bx == by, x == y);
  }
}

TEST_P(BigIntPropertyTest, RingAxiomsOnWideOperands) {
  Rng rng(GetParam() ^ 0xabcdef);
  auto draw = [&] {
    BigInt v(rng.uniform_int(-1'000'000'000'000LL, 1'000'000'000'000LL));
    // widen by squaring occasionally
    if (rng.bernoulli(0.5)) v = v * v;
    return v;
  };
  for (int i = 0; i < 100; ++i) {
    BigInt a = draw(), b = draw(), c = draw();
    EXPECT_EQ(a + b, b + a);
    EXPECT_EQ(a * b, b * a);
    EXPECT_EQ((a + b) + c, a + (b + c));
    EXPECT_EQ(a * (b + c), a * b + a * c);
    EXPECT_EQ(a - b, -(b - a));
    EXPECT_EQ(a + BigInt(0), a);
    EXPECT_EQ(a * BigInt(1), a);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BigIntPropertyTest,
                         ::testing::Values(1u, 2u, 3u, 17u, 1234567u));

}  // namespace
}  // namespace fedcons
