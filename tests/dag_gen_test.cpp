// Tests for random DAG topology generators.
#include "fedcons/gen/dag_gen.h"

#include <gtest/gtest.h>

#include "fedcons/util/check.h"

namespace fedcons {
namespace {

TEST(LayeredDagGenTest, StructurallySound) {
  Rng rng(1);
  LayeredDagParams p;
  p.min_layers = 3;
  p.max_layers = 6;
  p.min_width = 2;
  p.max_width = 5;
  for (int trial = 0; trial < 100; ++trial) {
    Dag g = generate_layered_dag(rng, p);
    EXPECT_TRUE(g.is_acyclic());
    EXPECT_GE(g.num_vertices(), 3u * 2u);
    for (std::size_t v = 0; v < g.num_vertices(); ++v) {
      EXPECT_GE(g.wcet(static_cast<VertexId>(v)), p.min_wcet);
      EXPECT_LE(g.wcet(static_cast<VertexId>(v)), p.max_wcet);
    }
  }
}

TEST(LayeredDagGenTest, EveryNonFirstLayerVertexHasPredecessor) {
  Rng rng(2);
  LayeredDagParams p;
  p.min_layers = 4;
  p.max_layers = 4;
  p.min_width = 3;
  p.max_width = 3;
  p.edge_probability = 0.0;  // force reliance on the guarantee edge
  p.skip_probability = 0.0;
  for (int trial = 0; trial < 20; ++trial) {
    Dag g = generate_layered_dag(rng, p);
    // Exactly 3 sources (the first layer) — everyone else got a parent.
    std::size_t sources = 0;
    for (std::size_t v = 0; v < g.num_vertices(); ++v) {
      if (g.in_degree(static_cast<VertexId>(v)) == 0) ++sources;
    }
    EXPECT_EQ(sources, 3u);
  }
}

TEST(LayeredDagGenTest, DenseEdgesIncreaseChainLength) {
  LayeredDagParams sparse;
  sparse.edge_probability = 0.05;
  sparse.skip_probability = 0.0;
  LayeredDagParams dense = sparse;
  dense.edge_probability = 1.0;
  Rng rng_a(3), rng_b(3);
  double sparse_len = 0, dense_len = 0;
  for (int i = 0; i < 50; ++i) {
    sparse_len += static_cast<double>(generate_layered_dag(rng_a, sparse).len());
    dense_len += static_cast<double>(generate_layered_dag(rng_b, dense).len());
  }
  EXPECT_GT(dense_len, sparse_len);
}

TEST(LayeredDagGenTest, ValidatesParameters) {
  Rng rng(4);
  LayeredDagParams p;
  p.min_layers = 0;
  EXPECT_THROW(generate_layered_dag(rng, p), ContractViolation);
  p = {};
  p.edge_probability = 1.5;
  EXPECT_THROW(generate_layered_dag(rng, p), ContractViolation);
  p = {};
  p.min_wcet = 0;
  EXPECT_THROW(generate_layered_dag(rng, p), ContractViolation);
}

TEST(ForkJoinGenTest, SingleSourceSingleSink) {
  Rng rng(5);
  ForkJoinParams p;
  for (int trial = 0; trial < 100; ++trial) {
    Dag g = generate_fork_join_dag(rng, p);
    EXPECT_TRUE(g.is_acyclic());
    std::size_t sources = 0, sinks = 0;
    for (std::size_t v = 0; v < g.num_vertices(); ++v) {
      if (g.in_degree(static_cast<VertexId>(v)) == 0) ++sources;
      if (g.out_degree(static_cast<VertexId>(v)) == 0) ++sinks;
    }
    EXPECT_EQ(sources, 1u);
    EXPECT_EQ(sinks, 1u);
  }
}

TEST(ForkJoinGenTest, NestingGrowsWithProbability) {
  ForkJoinParams flat;
  flat.nest_probability = 0.0;
  flat.min_branches = flat.max_branches = 3;
  Rng rng(6);
  Dag g = generate_fork_join_dag(rng, flat);
  // No nesting: source + sink + 3 branches.
  EXPECT_EQ(g.num_vertices(), 5u);

  ForkJoinParams deep;
  deep.nest_probability = 1.0;
  deep.max_depth = 3;
  deep.min_branches = deep.max_branches = 2;
  Rng rng2(7);
  Dag g2 = generate_fork_join_dag(rng2, deep);
  EXPECT_GT(g2.num_vertices(), 5u);
  EXPECT_TRUE(g2.is_acyclic());
}

TEST(ForkJoinGenTest, ValidatesParameters) {
  Rng rng(8);
  ForkJoinParams p;
  p.max_depth = 0;
  EXPECT_THROW(generate_fork_join_dag(rng, p), ContractViolation);
  p = {};
  p.min_branches = 0;
  EXPECT_THROW(generate_fork_join_dag(rng, p), ContractViolation);
}

TEST(RescaleVolumeTest, HitsTargetApproximately) {
  Rng rng(9);
  LayeredDagParams p;
  for (int trial = 0; trial < 50; ++trial) {
    Dag g = generate_layered_dag(rng, p);
    Time target = g.vol() * 3;
    Dag scaled = rescale_volume(g, target);
    EXPECT_EQ(scaled.num_vertices(), g.num_vertices());
    EXPECT_EQ(scaled.num_edges(), g.num_edges());
    // Rounding error at most one tick per vertex.
    EXPECT_LE(std::abs(scaled.vol() - target),
              static_cast<Time>(g.num_vertices()));
  }
}

TEST(RescaleVolumeTest, DownscaleKeepsUnitMinimum) {
  Dag g;
  g.add_vertex(100);
  g.add_vertex(1);
  Dag scaled = rescale_volume(g, 2);
  EXPECT_GE(scaled.wcet(0), 1);
  EXPECT_GE(scaled.wcet(1), 1);
}

TEST(RescaleVolumeTest, ValidatesTarget) {
  Dag g;
  g.add_vertex(5);
  g.add_vertex(5);
  EXPECT_THROW(rescale_volume(g, 1), ContractViolation);  // below |V|
  EXPECT_THROW(rescale_volume(Dag{}, 5), ContractViolation);
}

}  // namespace
}  // namespace fedcons
