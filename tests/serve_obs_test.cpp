// Observability-plane integration tests against a live fedcons_serve daemon:
//
//  1. Stats schema — every stats payload carries schema_version (pinned to
//     serve::kStatsSchemaVersion), the uptime/monotonic clock pair, the
//     queue_depth gauge, and the four reconstructable histograms.
//  2. Time-series ring — stats_series returns at most --stats-ring samples
//     at the configured cadence, monotonically ordered, with "last" capping.
//  3. Stage echo — "stages": 1 on a request adds the stage_*_us breakdown to
//     that response and only that response.
//  4. Prometheus export — stats?format=prometheus carries the exposition
//     text, and `fedcons_loadgen --scrape` dumps it verbatim to stdout.
//  5. fedcons_top — renders a lifetime frame plus interval frames against a
//     live daemon and exits cleanly in --plain mode.
//  6. Trace chain — with --trace-out and --trace-sample=1 every request's
//     enqueue -> dequeue -> batch-seal -> handle -> write path lands in the
//     Perfetto JSON as queue/batch/handle/write spans sharing one trace_id,
//     in stage order.
//
// Daemon/loadgen/top binaries are injected as compile definitions by CMake.
#include <gtest/gtest.h>

#ifdef _WIN32
#error "this suite forks a daemon and decodes POSIX wait statuses"
#endif
#include <csignal>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "fedcons/core/dag.h"
#include "fedcons/core/io.h"
#include "fedcons/core/task_system.h"
#include "fedcons/serve/client.h"
#include "fedcons/serve/protocol.h"
#include "fedcons/serve/server.h"
#include "fedcons/util/check.h"
#include "test_json.h"

namespace fedcons {
namespace {

const std::string kServeBin = FEDCONS_SERVE_BIN;
const std::string kLoadgenBin = FEDCONS_LOADGEN_BIN;
const std::string kTopBin = FEDCONS_TOP_BIN;

/// A daemon child process bound to a per-test unix socket. The destructor
/// SIGTERMs and reaps it, so a failing test cannot leak the process.
class Daemon {
 public:
  explicit Daemon(std::vector<std::string> extra_args = {}) {
    static int counter = 0;
    socket_path_ = ::testing::TempDir() + "/serve_obs_" +
                   std::to_string(::getpid()) + "_" +
                   std::to_string(counter++) + ".sock";
    std::vector<std::string> args = {kServeBin, "--socket=" + socket_path_};
    args.insert(args.end(), extra_args.begin(), extra_args.end());
    pid_ = ::fork();
    FEDCONS_EXPECTS_MSG(pid_ >= 0, "fork failed");
    if (pid_ == 0) {
      std::freopen("/dev/null", "w", stdout);
      std::vector<char*> argv;
      argv.reserve(args.size() + 1);
      for (std::string& a : args) argv.push_back(a.data());
      argv.push_back(nullptr);
      ::execv(argv[0], argv.data());
      std::_Exit(127);  // exec failed
    }
  }

  ~Daemon() {
    if (pid_ > 0) {
      ::kill(pid_, SIGTERM);
      wait_exit();
    }
  }

  Daemon(const Daemon&) = delete;
  Daemon& operator=(const Daemon&) = delete;

  [[nodiscard]] const std::string& socket_path() const {
    return socket_path_;
  }

  [[nodiscard]] serve::ServeClient connect() const {
    return serve::ServeClient::connect_unix(socket_path_);
  }

  /// Reap the child; returns its exit code (or -1 on a signal death).
  int wait_exit() {
    if (pid_ <= 0) return -2;
    int status = 0;
    ::waitpid(pid_, &status, 0);
    pid_ = -1;
    return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  }

 private:
  std::string socket_path_;
  pid_t pid_ = -1;
};

serve::ServeRequest make_request(serve::ServeOp op, std::uint64_t seq) {
  serve::ServeRequest req;
  req.op = op;
  req.seq = seq;
  return req;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

/// Run a shell command, return its exit code (-1 on abnormal termination).
int run_command(const std::string& cmd) {
  const int status = std::system(cmd.c_str());
  return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
}

// ---- stats schema ----------------------------------------------------------

TEST(ServeObsTest, StatsCarriesSchemaVersionClocksAndHistograms) {
  Daemon daemon;
  serve::ServeClient client = daemon.connect();
  for (std::uint64_t seq = 1; seq <= 3; ++seq) {
    const auto pong = client.call(make_request(serve::ServeOp::kPing, seq));
    ASSERT_EQ(pong.status, serve::ServeStatus::kOk) << pong.error;
  }

  const serve::ServeResponse stats =
      client.call(make_request(serve::ServeOp::kStats, 4));
  ASSERT_EQ(stats.status, serve::ServeStatus::kOk) << stats.error;
  const auto doc = testjson::parse(stats.raw);

  ASSERT_TRUE(doc->has("schema_version"));
  EXPECT_EQ(doc->at("schema_version").number,
            static_cast<double>(serve::kStatsSchemaVersion));
  ASSERT_TRUE(doc->has("uptime_us"));
  EXPECT_GT(doc->at("uptime_us").number, 0.0);
  ASSERT_TRUE(doc->has("snapshot_monotonic_us"));
  EXPECT_GT(doc->at("snapshot_monotonic_us").number, 0.0);
  ASSERT_TRUE(doc->has("queue_depth"));
  EXPECT_GE(doc->at("queue_depth").number, 0.0);
  // No tracing configured: nothing may be sampled.
  ASSERT_TRUE(doc->has("requests_sampled"));
  EXPECT_EQ(doc->at("requests_sampled").number, 0.0);
  EXPECT_GE(doc->at("requests_enqueued").number, 3.0);

  for (const char* hist : {"latency_us", "admit_latency_us",
                           "release_latency_us", "batch_size"}) {
    ASSERT_TRUE(doc->has(hist)) << hist;
    const auto& h = doc->at(hist);
    ASSERT_TRUE(h.is_object()) << hist;
    for (const char* key : {"count", "sum", "min", "max", "buckets"}) {
      EXPECT_TRUE(h.has(key)) << hist << "." << key;
    }
    EXPECT_TRUE(h.at("buckets").is_string()) << hist;
  }
  // Three pings were handled; the all-ops latency histogram saw them. The
  // admit/release histograms must not have (pings are neither class).
  EXPECT_GE(doc->at("latency_us").at("count").number, 3.0);
  EXPECT_EQ(doc->at("admit_latency_us").at("count").number, 0.0);
  EXPECT_EQ(doc->at("release_latency_us").at("count").number, 0.0);
}

// ---- time-series ring ------------------------------------------------------

TEST(ServeObsTest, StatsSeriesRingCapsAndOrdersSamples) {
  Daemon daemon({"--stats-interval-ms=10", "--stats-ring=4"});
  serve::ServeClient client = daemon.connect();

  // Let the snapshotter lap the ring several times over (~12 intervals).
  for (int i = 0; i < 12; ++i) {
    const auto pong = client.call(
        make_request(serve::ServeOp::kPing, static_cast<std::uint64_t>(i)));
    ASSERT_EQ(pong.status, serve::ServeStatus::kOk) << pong.error;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }

  const serve::ServeResponse series =
      client.call(make_request(serve::ServeOp::kStatsSeries, 100));
  ASSERT_EQ(series.status, serve::ServeStatus::kOk) << series.error;
  const auto doc = testjson::parse(series.raw);
  EXPECT_EQ(doc->at("schema_version").number,
            static_cast<double>(serve::kStatsSchemaVersion));
  EXPECT_EQ(doc->at("interval_us").number, 10'000.0);
  EXPECT_EQ(doc->at("ring_capacity").number, 4.0);
  const int count = static_cast<int>(doc->at("count").number);
  ASSERT_GE(count, 1);
  ASSERT_LE(count, 4);  // the ring bounds memory: 12 laps, 4 survivors

  double prev_mono = 0.0;
  double prev_enq = 0.0;
  for (int i = 0; i < count; ++i) {
    const std::string key = "s" + std::to_string(i);
    ASSERT_TRUE(doc->has(key)) << key;
    const auto& s = doc->at(key);
    for (const char* field :
         {"snapshot_monotonic_us", "uptime_us", "requests_enqueued",
          "requests_shed", "batches", "handle_us", "write_us", "queue_depth",
          "latency_count", "latency_p50", "latency_p99"}) {
      ASSERT_TRUE(s.has(field)) << key << "." << field;
    }
    EXPECT_GT(s.at("snapshot_monotonic_us").number, prev_mono) << key;
    prev_mono = s.at("snapshot_monotonic_us").number;
    EXPECT_GE(s.at("requests_enqueued").number, prev_enq) << key;
    prev_enq = s.at("requests_enqueued").number;
  }

  // "last": 2 windows the tail: newest two samples only.
  serve::ServeRequest tail = make_request(serve::ServeOp::kStatsSeries, 101);
  tail.series_last = 2;
  const serve::ServeResponse tail_resp = client.call(tail);
  ASSERT_EQ(tail_resp.status, serve::ServeStatus::kOk) << tail_resp.error;
  const auto tail_doc = testjson::parse(tail_resp.raw);
  const int tail_count = static_cast<int>(tail_doc->at("count").number);
  ASSERT_GE(tail_count, 1);
  ASSERT_LE(tail_count, 2);
  const std::string newest = "s" + std::to_string(tail_count - 1);
  EXPECT_GE(tail_doc->at(newest).at("snapshot_monotonic_us").number,
            prev_mono)
      << "tail must be the newest samples, not the oldest";
}

TEST(ServeObsTest, StatsSeriesDisabledReportsEmptyRing) {
  Daemon daemon({"--stats-interval-ms=0"});
  serve::ServeClient client = daemon.connect();
  const serve::ServeResponse series =
      client.call(make_request(serve::ServeOp::kStatsSeries, 1));
  ASSERT_EQ(series.status, serve::ServeStatus::kOk) << series.error;
  const auto doc = testjson::parse(series.raw);
  EXPECT_EQ(doc->at("interval_us").number, 0.0);
  EXPECT_EQ(doc->at("count").number, 0.0);
}

// ---- stage echo ------------------------------------------------------------

TEST(ServeObsTest, StageEchoOnlyOnRequestsThatAskForIt) {
  Daemon daemon;
  serve::ServeClient client = daemon.connect();

  serve::ServeRequest staged = make_request(serve::ServeOp::kPing, 1);
  staged.echo_stages = true;
  const serve::ServeResponse with = client.call(staged);
  ASSERT_EQ(with.status, serve::ServeStatus::kOk) << with.error;
  EXPECT_TRUE(with.has_stages);
  EXPECT_NE(with.raw.find("\"stage_queue_us\""), std::string::npos);
  EXPECT_NE(with.raw.find("\"stage_batch_us\""), std::string::npos);
  EXPECT_NE(with.raw.find("\"stage_handle_us\""), std::string::npos);

  const serve::ServeResponse without =
      client.call(make_request(serve::ServeOp::kPing, 2));
  ASSERT_EQ(without.status, serve::ServeStatus::kOk) << without.error;
  EXPECT_FALSE(without.has_stages);
  EXPECT_EQ(without.raw.find("\"stage_queue_us\""), std::string::npos);
}

// ---- prometheus export -----------------------------------------------------

TEST(ServeObsTest, StatsFormatPrometheusCarriesExpositionText) {
  Daemon daemon;
  serve::ServeClient client = daemon.connect();
  const auto pong = client.call(make_request(serve::ServeOp::kPing, 1));
  ASSERT_EQ(pong.status, serve::ServeStatus::kOk) << pong.error;

  serve::ServeRequest req = make_request(serve::ServeOp::kStats, 2);
  req.prometheus = true;
  const serve::ServeResponse resp = client.call(req);
  ASSERT_EQ(resp.status, serve::ServeStatus::kOk) << resp.error;
  const auto doc = testjson::parse(resp.raw);
  EXPECT_EQ(doc->at("schema_version").number,
            static_cast<double>(serve::kStatsSchemaVersion));
  ASSERT_TRUE(doc->has("prometheus"));
  const std::string text = doc->at("prometheus").string;
  EXPECT_EQ(text.rfind("# HELP fedcons_serve_uptime_us", 0), 0u);
  EXPECT_NE(text.find("# TYPE fedcons_serve_requests_total counter"),
            std::string::npos);
  EXPECT_NE(text.find(
                "# TYPE fedcons_serve_request_latency_us histogram"),
            std::string::npos);
  EXPECT_NE(text.find("le=\"+Inf\""), std::string::npos);
  ASSERT_FALSE(text.empty());
  EXPECT_EQ(text.back(), '\n');
}

TEST(ServeObsTest, LoadgenScrapeDumpsExposition) {
  Daemon daemon;
  const std::string out_path = ::testing::TempDir() + "/scrape_" +
                               std::to_string(::getpid()) + ".prom";
  const int rc = run_command(kLoadgenBin + " --socket=" +
                             daemon.socket_path() + " --scrape > " +
                             out_path);
  EXPECT_EQ(rc, 0);
  const std::string text = read_file(out_path);
  EXPECT_EQ(text.rfind("# HELP fedcons_serve_uptime_us", 0), 0u);
  EXPECT_NE(text.find("fedcons_serve_request_latency_us_bucket{op=\"all\""),
            std::string::npos);
  // The scrape prints the raw exposition, not its JSON-escaped transport
  // form: real newlines, no \n escapes.
  EXPECT_EQ(text.find("\\n"), std::string::npos);
  std::remove(out_path.c_str());
}

// ---- fedcons_top -----------------------------------------------------------

TEST(ServeObsTest, TopRendersLifetimeThenIntervalFrames) {
  Daemon daemon({"--stats-interval-ms=20"});
  {
    serve::ServeClient client = daemon.connect();
    for (std::uint64_t seq = 1; seq <= 5; ++seq) {
      const auto pong = client.call(make_request(serve::ServeOp::kPing, seq));
      ASSERT_EQ(pong.status, serve::ServeStatus::kOk) << pong.error;
    }
  }
  const std::string out_path = ::testing::TempDir() + "/top_" +
                               std::to_string(::getpid()) + ".txt";
  const int rc = run_command(kTopBin + " --socket=" + daemon.socket_path() +
                             " --interval-ms=40 --iterations=3 --plain > " +
                             out_path + " 2>&1");
  EXPECT_EQ(rc, 0);
  const std::string text = read_file(out_path);
  // First frame is the lifetime view; the two that follow are windows.
  EXPECT_NE(text.find("window lifetime"), std::string::npos);
  std::size_t frames = 0;
  for (std::size_t pos = text.find("fedcons_top  uptime");
       pos != std::string::npos;
       pos = text.find("fedcons_top  uptime", pos + 1)) {
    ++frames;
  }
  EXPECT_EQ(frames, 3u);
  for (const char* label : {"qps", "shed", "batches", "queue depth",
                            "batch size p99", "dispatch busy", "p99 us"}) {
    EXPECT_NE(text.find(label), std::string::npos) << label;
  }
  // --plain must not emit ANSI control sequences.
  EXPECT_EQ(text.find('\x1b'), std::string::npos);
  std::remove(out_path.c_str());
}

// ---- trace chain -----------------------------------------------------------

DagTask make_task(long long vol, long long deadline, long long period,
                  const std::string& name) {
  Dag g;
  g.add_vertex(vol);
  return DagTask(g, deadline, period, name);
}

TEST(ServeObsTest, TraceChainLinksAllStagesUnderOneTraceId) {
  const std::string trace_path = ::testing::TempDir() + "/trace_" +
                                 std::to_string(::getpid()) + ".json";
  std::remove(trace_path.c_str());
  std::uint64_t issued = 0;
  {
    Daemon daemon({"--trace-out=" + trace_path, "--trace-sample=1"});
    serve::ServeClient client = daemon.connect();

    serve::ServeRequest open = make_request(serve::ServeOp::kOpen, ++issued);
    open.m = 4;
    const serve::ServeResponse opened = client.call(open);
    ASSERT_EQ(opened.status, serve::ServeStatus::kOk) << opened.error;

    serve::ServeRequest admit = make_request(serve::ServeOp::kAdmit, ++issued);
    admit.session = opened.session;
    admit.system = serialize_task_system(
        TaskSystem({make_task(10, 90, 100, "traced")}));
    const serve::ServeResponse verdict = client.call(admit);
    ASSERT_EQ(verdict.status, serve::ServeStatus::kOk) << verdict.error;

    const auto pong = client.call(make_request(serve::ServeOp::kPing, ++issued));
    ASSERT_EQ(pong.status, serve::ServeStatus::kOk) << pong.error;

    // At sample=1 every enqueued request so far is sampled.
    const serve::ServeResponse stats =
        client.call(make_request(serve::ServeOp::kStats, ++issued));
    ASSERT_EQ(stats.status, serve::ServeStatus::kOk) << stats.error;
    const auto stats_doc = testjson::parse(stats.raw);
    EXPECT_GE(stats_doc->at("requests_sampled").number,
              static_cast<double>(issued - 1));

    const serve::ServeResponse bye =
        client.call(make_request(serve::ServeOp::kShutdown, ++issued));
    EXPECT_EQ(bye.status, serve::ServeStatus::kOk);
    EXPECT_EQ(daemon.wait_exit(), 0);  // trace file flushed on clean exit
  }

  const auto doc = testjson::parse(read_file(trace_path));
  ASSERT_TRUE(doc->has("traceEvents"));
  // Group serve-category spans by trace_id; record each stage's start time.
  struct Chain {
    std::map<std::string, double> stage_ts;
  };
  std::map<std::uint64_t, Chain> chains;
  for (const auto& ev : doc->at("traceEvents").array) {
    if (!ev->has("cat") || ev->at("cat").string != "serve") continue;
    ASSERT_TRUE(ev->has("args"));
    ASSERT_TRUE(ev->at("args").has("trace_id"));
    const auto id =
        static_cast<std::uint64_t>(ev->at("args").at("trace_id").number);
    chains[id].stage_ts[ev->at("name").string] = ev->at("ts").number;
  }
  EXPECT_GE(chains.size(), issued - 1)
      << "every request before shutdown was sampled";

  std::size_t complete = 0;
  for (const auto& [id, chain] : chains) {
    const auto& ts = chain.stage_ts;
    if (!ts.count("queue") || !ts.count("batch") || !ts.count("handle") ||
        !ts.count("write")) {
      continue;
    }
    ++complete;
    // The pipeline order is physical: each stage starts no earlier than its
    // predecessor.
    EXPECT_LE(ts.at("queue"), ts.at("batch")) << "trace_id " << id;
    EXPECT_LE(ts.at("batch"), ts.at("handle")) << "trace_id " << id;
    EXPECT_LE(ts.at("handle"), ts.at("write")) << "trace_id " << id;
  }
  EXPECT_GE(complete, issued - 1)
      << "each pre-shutdown request must carry the full 4-span chain";
  std::remove(trace_path.c_str());
}

}  // namespace
}  // namespace fedcons
