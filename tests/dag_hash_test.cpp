// Canonical DAG content hash (core/dag_hash.h): the memo-cache key must be
// invariant under vertex relabeling and edge reordering, sensitive to every
// content lane (WCETs, structure, D, T), and collision-free in practice over
// the generator families the experiments draw from.
#include "fedcons/core/dag_hash.h"

#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "fedcons/core/io.h"
#include "fedcons/gen/taskset_gen.h"
#include "fedcons/util/rng.h"

namespace fedcons {
namespace {

// Diamond with a tail: v0 -> {v1, v2} -> v3 -> v4, distinct WCETs.
DagTask diamond_task() {
  Dag g;
  const VertexId a = g.add_vertex(3);
  const VertexId b = g.add_vertex(5);
  const VertexId c = g.add_vertex(7);
  const VertexId d = g.add_vertex(2);
  const VertexId e = g.add_vertex(11);
  g.add_edge(a, b);
  g.add_edge(a, c);
  g.add_edge(b, d);
  g.add_edge(c, d);
  g.add_edge(d, e);
  return DagTask(g, /*deadline=*/40, /*period=*/50, "diamond");
}

TEST(DagHash, RelabelingInvariance) {
  const DagTask original = diamond_task();
  // Same graph, vertices inserted in reverse and edges in a different order.
  Dag g;
  const VertexId e = g.add_vertex(11);
  const VertexId d = g.add_vertex(2);
  const VertexId c = g.add_vertex(7);
  const VertexId b = g.add_vertex(5);
  const VertexId a = g.add_vertex(3);
  g.add_edge(d, e);
  g.add_edge(c, d);
  g.add_edge(a, c);
  g.add_edge(b, d);
  g.add_edge(a, b);
  const DagTask relabeled(g, 40, 50, "same content, different labels");
  EXPECT_EQ(canonical_task_hash(original), canonical_task_hash(relabeled));
  EXPECT_EQ(canonical_dag_hash(original.graph()),
            canonical_dag_hash(relabeled.graph()));
}

TEST(DagHash, NameIsExcluded) {
  const DagTask a = diamond_task();
  Dag g = a.graph();
  const DagTask renamed(g, a.deadline(), a.period(), "another name");
  EXPECT_EQ(canonical_task_hash(a), canonical_task_hash(renamed));
}

TEST(DagHash, WcetSensitivity) {
  const DagTask base = diamond_task();
  Dag g;
  const VertexId a = g.add_vertex(3);
  const VertexId b = g.add_vertex(5);
  const VertexId c = g.add_vertex(7);
  const VertexId d = g.add_vertex(2);
  const VertexId e = g.add_vertex(12);  // 11 -> 12
  g.add_edge(a, b);
  g.add_edge(a, c);
  g.add_edge(b, d);
  g.add_edge(c, d);
  g.add_edge(d, e);
  const DagTask tweaked(g, 40, 50);
  EXPECT_NE(canonical_task_hash(base), canonical_task_hash(tweaked));
}

TEST(DagHash, DeadlineAndPeriodSensitivity) {
  const DagTask base = diamond_task();
  Dag g = base.graph();
  const DagTask d_changed(g, 41, 50);
  Dag g2 = base.graph();
  const DagTask t_changed(g2, 40, 51);
  EXPECT_NE(canonical_task_hash(base), canonical_task_hash(d_changed));
  EXPECT_NE(canonical_task_hash(base), canonical_task_hash(t_changed));
  EXPECT_NE(canonical_task_hash(d_changed), canonical_task_hash(t_changed));
  // D/T only reach the task hash, not the graph hash.
  EXPECT_EQ(canonical_dag_hash(base.graph()),
            canonical_dag_hash(d_changed.graph()));
}

TEST(DagHash, EdgeSensitivity) {
  Dag with_edge;
  const VertexId a = with_edge.add_vertex(4);
  const VertexId b = with_edge.add_vertex(4);
  with_edge.add_edge(a, b);
  Dag without_edge;
  without_edge.add_vertex(4);
  without_edge.add_vertex(4);
  EXPECT_NE(canonical_dag_hash(with_edge), canonical_dag_hash(without_edge));
}

TEST(DagHash, OrientationSensitivity) {
  // Same undirected shape, opposite edge direction between unequal WCETs.
  Dag forward;
  {
    const VertexId a = forward.add_vertex(3);
    const VertexId b = forward.add_vertex(9);
    forward.add_edge(a, b);
  }
  Dag backward;
  {
    const VertexId a = backward.add_vertex(3);
    const VertexId b = backward.add_vertex(9);
    backward.add_edge(b, a);
  }
  EXPECT_NE(canonical_dag_hash(forward), canonical_dag_hash(backward));
}

TEST(DagHash, HexFormat) {
  const DagHash h = canonical_task_hash(diamond_task());
  const std::string hex = h.to_hex();
  ASSERT_EQ(hex.size(), 32u);
  for (char c : hex) {
    EXPECT_TRUE((c >= '0' && c <= '9') || (c >= 'a' && c <= 'f')) << hex;
  }
  EXPECT_EQ((DagHash{0, 0}.to_hex()),
            std::string("00000000000000000000000000000000"));
}

// Birthday sweep over the experiment generators: thousands of tasks from
// both topology families at varied utilizations. Distinct content must not
// collide; tasks whose 128-bit digests DO collide must be the same content,
// which we check by comparing the cheap exact invariants and then the full
// serialized form (serialization is canonical up to vertex order, which the
// generators fix, so equal text == equal content here).
TEST(DagHash, BirthdaySweepOverGenerators) {
  Rng rng(20260808);
  std::map<std::string, std::string> by_hash;  // hex -> serialized system
  int tasks_hashed = 0;
  for (int batch = 0; batch < 120; ++batch) {
    TaskSetParams params;
    params.num_tasks = 6;
    params.total_utilization = 0.5 + 0.25 * (batch % 12);
    params.period_min = 50.0;
    params.period_max = 5000.0;
    params.topology = (batch % 3 == 0)   ? DagTopology::kLayered
                      : (batch % 3 == 1) ? DagTopology::kForkJoin
                                         : DagTopology::kMixed;
    const TaskSystem system = generate_task_system(rng, params);
    for (const DagTask& task : system) {
      ++tasks_hashed;
      const std::string hex = canonical_task_hash(task).to_hex();
      // Hash excludes the display name, so the reference form must too.
      const DagTask anonymous(task.graph(), task.deadline(), task.period());
      const std::string text =
          serialize_task_system(TaskSystem(std::vector<DagTask>{anonymous}));
      const auto [it, inserted] = by_hash.emplace(hex, text);
      if (!inserted) {
        EXPECT_EQ(it->second, text)
            << "128-bit collision between distinct tasks, key " << hex;
      }
    }
  }
  EXPECT_EQ(tasks_hashed, 120 * 6);
}

}  // namespace
}  // namespace fedcons
