// fedcons_loadgen — open/closed-loop load generator for fedcons_serve.
//
// Usage:
//   fedcons_loadgen --socket=PATH | --port=N
//     [--connections=N] [--pipeline=K] [--duration-s=S] [--warmup-s=S]
//     [--rate=QPS] [--m=N] [--seed=N] [--json] [--server-stages]
//     [--shutdown]
//   fedcons_loadgen --socket=PATH --trace=FILE [--m=N]
//     [--verdicts-out=FILE] [--shutdown]
//   fedcons_loadgen --socket=PATH --scrape     # dump Prometheus text, exit
//
// Throughput mode (default): N connections, each on its own thread, each
// driving one AdmissionSession through an admit/release churn over a pool
// of registered task contents (content handles — steady state sends no task
// text). Closed loop (--rate=0) keeps K requests in flight per connection:
// every response immediately funds the next request, so the measured rate
// is the server's sustainable throughput, not an arrival-rate assumption.
// --rate>0 switches to an open loop that paces sends at the target rate
// regardless of completions (classic coordinated-omission-avoiding load);
// latency then includes queueing delay. Latency is measured client side
// (send to response, microseconds) in an obs::Histogram; responses inside
// the warmup window are excluded from the report. RETRY_AFTER responses are
// counted as shed, never retried inline, so backpressure shows up in the
// report instead of silently inflating latency.
//
// Trace mode (--trace): replays an online/trace.h JSONL trace through the
// daemon serially on one connection — the same event stream `fedcons_cli
// --online` replays in-process — and writes one verdict line per event to
// --verdicts-out. The loopback test byte-compares those verdicts against
// the in-process replay; this is the end-to-end proof that the daemon's
// answers ARE the library's answers.
//
// The throughput report was historically a lifetime sum over the measured
// window — blind to how the rate and queue depth MOVED during the run. The
// report now also asks the daemon for its stats_series ring, windows the
// samples to this run's measured interval (steady_clock is CLOCK_MONOTONIC
// on Linux, so the daemon's snapshot_monotonic_us stamps are directly
// comparable to ours), and prints the server-side interval QPS and the
// maximum queue depth any sample in the window observed.
//
// --server-stages marks every admit/release request with "stages": 1; the
// report then adds server-attributed stage histograms (queue wait, batch
// formation, session handling) next to the client-observed latency — the
// difference is the wire + client overhead.
//
// --scrape connects, fetches stats?format=prometheus, prints the exposition
// text to stdout, and exits — a one-shot scrape for piping into promtool or
// a file, and the CI hook that keeps the exposition renderer honest.
//
// --shutdown sends the protocol "shutdown" op when done (drains the daemon).
// Exit 0 on success, 2 on usage/parse errors.
#include <algorithm>
#include <chrono>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string_view>
#include <thread>
#include <unordered_map>
#include <vector>

#include "fedcons/core/io.h"
#include "fedcons/obs/metrics.h"
#include "fedcons/online/trace.h"
#include "fedcons/serve/client.h"
#include "fedcons/util/check.h"
#include "fedcons/util/flags.h"
#include "fedcons/util/mini_json.h"
#include "fedcons/util/table.h"

using namespace fedcons;

namespace {

using Clock = std::chrono::steady_clock;

int usage() {
  std::cerr
      << "usage: fedcons_loadgen --socket=PATH | --port=N\n"
         "         [--connections=N] [--sessions=N] [--pipeline=K]\n"
         "         [--residents=N]\n"
         "         [--duration-s=S] [--warmup-s=S] [--rate=QPS] [--m=N]\n"
         "         [--seed=N] [--json] [--server-stages] [--shutdown]\n"
         "       fedcons_loadgen --socket=PATH --trace=FILE [--m=N]\n"
         "         [--verdicts-out=FILE] [--shutdown]\n"
         "       fedcons_loadgen --socket=PATH --scrape\n";
  return 2;
}

/// The churn content pool: low-utilization single-vertex tasks (the
/// bench_online low pool), all of which coexist on the shared processors at
/// the resident cap below.
std::vector<DagTask> make_pool() {
  std::vector<DagTask> pool;
  for (int v = 0; v < 10; ++v) {
    Dag g;
    g.add_vertex(10 + v % 3);
    pool.emplace_back(g, /*deadline=*/90 + v, /*period=*/100 + v,
                      "low" + std::to_string(v));
  }
  return pool;
}

struct Options {
  std::string socket;
  int port = 0;
  int connections = 1;
  int sessions = 4;  ///< independent sessions per connection
  int pipeline = 48;
  /// Residents per session in steady state; past this every admit is paired
  /// with a release, so per-event analysis cost stays flat over the run.
  /// Per-event cost grows with the resident count, so this is the workload
  /// size knob ("small resident systems" in the bench recipes).
  int residents = 6;
  double duration_s = 2.0;
  double warmup_s = 0.2;
  double rate = 0.0;  ///< total target QPS across connections; 0 = closed
  int m = 8;
  std::uint64_t seed = 1;
  bool server_stages = false;  ///< ask for the per-request stage echo
};

struct WorkerResult {
  std::uint64_t ops = 0;      ///< verdict responses in the measured window
  std::uint64_t applied = 0;  ///< of which applied
  std::uint64_t shed = 0;     ///< RETRY_AFTER responses (whole run)
  std::uint64_t errors = 0;   ///< error responses (whole run)
  obs::Histogram latency_us;  ///< measured window only
  // Server-attributed stage breakdown (--server-stages, measured window).
  obs::Histogram stage_queue_us;
  obs::Histogram stage_batch_us;
  obs::Histogram stage_handle_us;
};

serve::ServeClient connect(const Options& opt) {
  return opt.socket.empty() ? serve::ServeClient::connect_tcp(opt.port)
                            : serve::ServeClient::connect_unix(opt.socket);
}

/// One connection's closed/open loop. Requests are framed locally and
/// flushed in one send() per decision round, so a deep pipeline costs a
/// bounded number of syscalls per batch of responses.
WorkerResult run_worker(const Options& opt, int index,
                        Clock::time_point start) {
  serve::ServeClient client = connect(opt);
  WorkerResult result;

  // Per-session churn state. Sessions are independent admission domains;
  // driving several per connection keeps many requests in flight (and so
  // batches deep) even though each session's resident set — and with it
  // the per-event analysis cost — stays small.
  struct SessionState {
    std::uint64_t id = 0;
    std::vector<std::uint64_t> resident_ids;
    std::size_t projected_residents = 0;
  };
  const std::size_t cap = static_cast<std::size_t>(opt.residents);
  std::uint64_t seq = 0;
  std::vector<SessionState> sessions(
      static_cast<std::size_t>(opt.sessions));
  for (SessionState& s : sessions) {
    serve::ServeRequest open;
    open.op = serve::ServeOp::kOpen;
    open.seq = seq++;
    open.m = opt.m;
    const serve::ServeResponse opened = client.call(open);
    FEDCONS_EXPECTS_MSG(opened.status == serve::ServeStatus::kOk &&
                            opened.has_session,
                        "loadgen: open failed: " + opened.error);
    s.id = opened.session;
  }

  const std::vector<DagTask> pool = make_pool();
  std::vector<std::uint64_t> handles;
  for (const DagTask& task : pool) {
    serve::ServeRequest reg;
    reg.op = serve::ServeOp::kRegister;
    reg.seq = seq++;
    reg.session = sessions[0].id;
    reg.system = serialize_task_system(TaskSystem({task}));
    const serve::ServeResponse resp = client.call(reg);
    FEDCONS_EXPECTS_MSG(resp.status == serve::ServeStatus::kOk &&
                            resp.has_content,
                        "loadgen: register failed: " + resp.error);
    handles.push_back(resp.content);
  }

  const auto warmup_end =
      start + std::chrono::microseconds(
                  static_cast<std::int64_t>(opt.warmup_s * 1e6));
  const auto deadline =
      warmup_end + std::chrono::microseconds(
                       static_cast<std::int64_t>(opt.duration_s * 1e6));
  // Open-loop pacing: this connection owns every connections-th slot of the
  // global schedule.
  const bool open_loop = opt.rate > 0.0;
  const double per_conn_rate = opt.rate / opt.connections;
  const auto interval = std::chrono::nanoseconds(
      open_loop ? static_cast<std::int64_t>(1e9 / per_conn_rate) : 0);
  auto next_send = start + (interval * index) / std::max(opt.connections, 1);

  struct Sent {
    Clock::time_point at;
    std::size_t session = 0;  ///< index into `sessions`
    bool is_admit = false;
    std::uint64_t release_id = 0;
  };
  std::unordered_map<std::uint64_t, Sent> inflight;
  std::uint64_t next_content = opt.seed + static_cast<std::uint64_t>(index);
  std::size_t cursor = 0;  // round-robin over sessions
  std::string sendbuf;
  bool sending = true;
  while (sending || !inflight.empty()) {
    // Fill the pipeline (closed loop) or send everything due (open loop),
    // round-robin across the sessions. The admit/release decision pipelines
    // ahead of the responses, so it is made against projected_residents —
    // the resident count once every in-flight request lands; deciding on
    // resident_ids alone would let a deep pipeline balloon a session far
    // past the cap during priming, and per-event analysis cost scales with
    // the resident count. A session at the cap whose admitted ids are all
    // still in flight is skipped until responses land.
    sendbuf.clear();
    std::size_t stuck = 0;  // sessions that cannot send right now
    while (sending &&
           inflight.size() < static_cast<std::size_t>(opt.pipeline) &&
           stuck < sessions.size()) {
      const auto now = Clock::now();
      if (now >= deadline) {
        sending = false;
        break;
      }
      if (open_loop && now < next_send) break;
      SessionState& s = sessions[cursor++ % sessions.size()];
      if (s.projected_residents >= cap && s.resident_ids.empty()) {
        ++stuck;
        continue;
      }
      stuck = 0;
      next_send += interval;
      serve::ServeRequest req;
      req.seq = seq++;
      req.session = s.id;
      Sent sent;
      sent.session = static_cast<std::size_t>(&s - sessions.data());
      if (s.projected_residents >= cap) {
        // Release the NEWEST resident: the incremental partition then
        // replays a one-placement suffix, keeping per-event cost flat at
        // the cap instead of O(cap) per release.
        req.op = serve::ServeOp::kRelease;
        sent.release_id = s.resident_ids.back();
        req.release_ids.push_back(sent.release_id);
        s.resident_ids.pop_back();
        --s.projected_residents;
      } else {
        req.op = serve::ServeOp::kAdmit;
        req.has_content = true;
        req.content = handles[next_content++ % handles.size()];
        sent.is_admit = true;
        ++s.projected_residents;
      }
      req.echo_stages = opt.server_stages;
      sendbuf += serve::encode_frame(serve::encode_serve_request(req));
      sent.at = Clock::now();
      inflight.emplace(req.seq, sent);
    }
    if (!sendbuf.empty()) client.send_bytes(sendbuf);
    if (inflight.empty()) {
      if (!sending) break;
      if (open_loop) std::this_thread::sleep_until(next_send);
      continue;
    }
    const auto process = [&](const serve::ServeResponse& resp) {
      const auto now = Clock::now();
      const auto it = inflight.find(resp.seq);
      FEDCONS_EXPECTS_MSG(it != inflight.end(),
                          "loadgen: response for unknown seq " +
                              std::to_string(resp.seq));
      const Sent sent = it->second;
      inflight.erase(it);
      SessionState& s = sessions[sent.session];
      switch (resp.status) {
        case serve::ServeStatus::kOk:
          if (resp.has_verdict && now >= warmup_end) {
            ++result.ops;
            if (resp.applied) ++result.applied;
            result.latency_us.add(static_cast<std::uint64_t>(
                std::chrono::duration_cast<std::chrono::microseconds>(
                    now - sent.at)
                    .count()));
            if (resp.has_stages) {
              result.stage_queue_us.add(resp.stage_queue_us);
              result.stage_batch_us.add(resp.stage_batch_us);
              result.stage_handle_us.add(resp.stage_handle_us);
            }
          }
          if (resp.has_verdict && resp.applied && !resp.task_ids.empty()) {
            for (const auto id : resp.task_ids) s.resident_ids.push_back(id);
          }
          if (sent.is_admit && resp.has_verdict && !resp.applied) {
            --s.projected_residents;  // rejected admit never became resident
          }
          break;
        case serve::ServeStatus::kRetryAfter:
        case serve::ServeStatus::kError:
          // Undo the projection: a shed/failed admit never lands; a shed
          // release leaves its task resident, so the id goes back.
          if (resp.status == serve::ServeStatus::kRetryAfter) {
            ++result.shed;
          } else {
            ++result.errors;
          }
          if (sent.is_admit) {
            --s.projected_residents;
          } else {
            s.resident_ids.push_back(sent.release_id);
            ++s.projected_residents;
          }
          break;
      }
    };
    // One blocking read, then drain every response the read(s) buffered:
    // a whole server batch is processed per syscall, and the next fill
    // round re-arms the pipeline with one send.
    process(client.recv());
    serve::ServeResponse buffered;
    while (client.try_recv(buffered)) process(buffered);
  }
  return result;
}

/// One stats_series sample, as scraped off the wire (parse_mini_json
/// flattens the nested "sN" objects to "sN.field" keys).
struct SeriesPoint {
  std::uint64_t monotonic_us = 0;
  std::uint64_t requests_enqueued = 0;
  std::uint64_t queue_depth = 0;
};

std::vector<SeriesPoint> fetch_series(serve::ServeClient& client,
                                      std::uint64_t seq) {
  serve::ServeRequest req;
  req.op = serve::ServeOp::kStatsSeries;
  req.seq = seq;
  const serve::ServeResponse resp = client.call(req);
  FEDCONS_EXPECTS_MSG(resp.status == serve::ServeStatus::kOk,
                      "loadgen: stats_series failed: " + resp.error);
  const auto fields = parse_mini_json(resp.raw);
  const std::uint64_t count = mini_json_uint(fields.at("count"));
  std::vector<SeriesPoint> out;
  out.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    const std::string key = "s" + std::to_string(i);
    SeriesPoint p;
    p.monotonic_us =
        mini_json_uint(fields.at(key + ".snapshot_monotonic_us"));
    p.requests_enqueued =
        mini_json_uint(fields.at(key + ".requests_enqueued"));
    p.queue_depth = mini_json_uint(fields.at(key + ".queue_depth"));
    out.push_back(p);
  }
  return out;
}

int run_throughput(const Options& opt, bool json, bool shutdown) {
  const auto start = Clock::now();
  std::vector<WorkerResult> results(
      static_cast<std::size_t>(opt.connections));
  std::vector<std::thread> workers;
  workers.reserve(results.size());
  for (int i = 0; i < opt.connections; ++i) {
    workers.emplace_back(
        [&, i] { results[static_cast<std::size_t>(i)] = run_worker(opt, i, start); });
  }
  for (std::thread& w : workers) w.join();

  WorkerResult total;
  for (const WorkerResult& r : results) {
    total.ops += r.ops;
    total.applied += r.applied;
    total.shed += r.shed;
    total.errors += r.errors;
    total.latency_us.merge(r.latency_us);
    total.stage_queue_us.merge(r.stage_queue_us);
    total.stage_batch_us.merge(r.stage_batch_us);
    total.stage_handle_us.merge(r.stage_handle_us);
  }
  const double qps = total.ops / opt.duration_s;

  // Server-side view of the measured window, from the daemon's series ring:
  // both clocks are CLOCK_MONOTONIC, so the window bounds translate
  // directly. A lifetime sum can't show a mid-run stall or a shed burst;
  // the windowed series can.
  const auto mono_us = [](Clock::time_point t) {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            t.time_since_epoch())
            .count());
  };
  const std::uint64_t win_lo = mono_us(
      start + std::chrono::microseconds(
                  static_cast<std::int64_t>(opt.warmup_s * 1e6)));
  const std::uint64_t win_hi = win_lo + static_cast<std::uint64_t>(
                                            opt.duration_s * 1e6);
  double series_qps = 0.0;
  std::uint64_t series_max_depth = 0;
  std::size_t series_samples = 0;
  {
    serve::ServeClient control = connect(opt);
    std::vector<SeriesPoint> points = fetch_series(control, 0);
    points.erase(std::remove_if(points.begin(), points.end(),
                                [&](const SeriesPoint& p) {
                                  return p.monotonic_us < win_lo ||
                                         p.monotonic_us > win_hi;
                                }),
                 points.end());
    series_samples = points.size();
    for (const SeriesPoint& p : points) {
      series_max_depth = std::max(series_max_depth, p.queue_depth);
    }
    if (points.size() >= 2) {
      const SeriesPoint& a = points.front();
      const SeriesPoint& b = points.back();
      if (b.monotonic_us > a.monotonic_us) {
        series_qps = static_cast<double>(b.requests_enqueued -
                                         a.requests_enqueued) /
                     (static_cast<double>(b.monotonic_us - a.monotonic_us) /
                      1e6);
      }
    }
    if (shutdown) {
      serve::ServeRequest req;
      req.op = serve::ServeOp::kShutdown;
      req.seq = 1;
      const serve::ServeResponse resp = control.call(req);
      FEDCONS_EXPECTS_MSG(resp.status == serve::ServeStatus::kOk,
                          "loadgen: shutdown failed: " + resp.error);
    }
  }

  if (json) {
    std::cout << "{\"tool\": \"fedcons_loadgen\", \"mode\": \""
              << (opt.rate > 0 ? "open" : "closed")
              << "\", \"connections\": " << opt.connections
              << ", \"sessions\": " << opt.sessions
              << ", \"residents\": " << opt.residents
              << ", \"pipeline\": " << opt.pipeline
              << ", \"duration_s\": " << fmt_double(opt.duration_s, 3)
              << ", \"rate\": " << fmt_double(opt.rate, 1)
              << ", \"ops\": " << total.ops
              << ", \"qps\": " << fmt_double(qps, 1)
              << ", \"applied\": " << total.applied
              << ", \"shed\": " << total.shed
              << ", \"errors\": " << total.errors
              << ", \"series_samples\": " << series_samples
              << ", \"server_interval_qps\": " << fmt_double(series_qps, 1)
              << ", \"server_max_queue_depth\": " << series_max_depth
              << ", \"latency_us\": "
              << obs::histogram_json(total.latency_us);
    if (total.stage_queue_us.count() != 0) {
      std::cout << ", \"stage_queue_us\": "
                << obs::histogram_json(total.stage_queue_us)
                << ", \"stage_batch_us\": "
                << obs::histogram_json(total.stage_batch_us)
                << ", \"stage_handle_us\": "
                << obs::histogram_json(total.stage_handle_us);
    }
    std::cout << "}\n";
  } else {
    Table t({"metric", "value"});
    t.add_row({"connections", fmt_int(opt.connections)});
    t.add_row({"sessions", fmt_int(opt.sessions)});
    t.add_row({"residents", fmt_int(opt.residents)});
    t.add_row({"pipeline", fmt_int(opt.pipeline)});
    t.add_row({"ops", fmt_int(static_cast<long long>(total.ops))});
    t.add_row({"qps", fmt_double(qps, 1)});
    t.add_row({"applied", fmt_int(static_cast<long long>(total.applied))});
    t.add_row({"shed", fmt_int(static_cast<long long>(total.shed))});
    t.add_row({"errors", fmt_int(static_cast<long long>(total.errors))});
    t.add_row({"p50 us", fmt_int(static_cast<long long>(
                             total.latency_us.percentile(50)))});
    t.add_row({"p99 us", fmt_int(static_cast<long long>(
                             total.latency_us.percentile(99)))});
    t.add_row({"p999 us", fmt_int(static_cast<long long>(
                              total.latency_us.percentile(99.9)))});
    t.add_row({"srv interval qps", fmt_double(series_qps, 1)});
    t.add_row({"srv max queue depth",
               fmt_int(static_cast<long long>(series_max_depth))});
    if (total.stage_queue_us.count() != 0) {
      t.add_row({"srv stage queue p99 us",
                 fmt_int(static_cast<long long>(
                     total.stage_queue_us.percentile(99)))});
      t.add_row({"srv stage batch p99 us",
                 fmt_int(static_cast<long long>(
                     total.stage_batch_us.percentile(99)))});
      t.add_row({"srv stage handle p99 us",
                 fmt_int(static_cast<long long>(
                     total.stage_handle_us.percentile(99)))});
    }
    t.print(std::cout);
  }
  return total.errors == 0 ? 0 : 1;
}

/// One-shot Prometheus scrape: fetch, print, exit.
int run_scrape(const Options& opt) {
  serve::ServeClient client = connect(opt);
  serve::ServeRequest req;
  req.op = serve::ServeOp::kStats;
  req.prometheus = true;
  const serve::ServeResponse resp = client.call(req);
  FEDCONS_EXPECTS_MSG(resp.status == serve::ServeStatus::kOk,
                      "loadgen: stats scrape failed: " + resp.error);
  const auto fields = parse_mini_json(resp.raw);
  const auto it = fields.find("prometheus");
  FEDCONS_EXPECTS_MSG(it != fields.end(),
                      "loadgen: scrape response has no prometheus text");
  std::cout << it->second;  // parse already unescaped the embedded newlines
  return 0;
}

/// Serial trace replay: the same event stream, answered by the daemon.
int run_trace(const Options& opt, const std::string& trace_path,
              const std::string& verdicts_path, bool m_override,
              bool shutdown) {
  std::ifstream in(trace_path);
  FEDCONS_EXPECTS_MSG(in.good(),
                      "loadgen: cannot read trace " + trace_path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  const OnlineTrace trace = parse_online_trace(buffer.str());

  serve::ServeClient client = connect(opt);
  std::uint64_t seq = 0;
  serve::ServeRequest open;
  open.op = serve::ServeOp::kOpen;
  open.seq = seq++;
  open.m = m_override ? opt.m : trace.processors;
  const serve::ServeResponse opened = client.call(open);
  FEDCONS_EXPECTS_MSG(opened.status == serve::ServeStatus::kOk,
                      "loadgen: open failed: " + opened.error);
  const std::uint64_t session = opened.session;

  std::string verdicts;
  bool final_schedulable = true;
  for (std::size_t i = 0; i < trace.events.size(); ++i) {
    const OnlineEvent& e = trace.events[i];
    serve::ServeRequest req;
    req.seq = seq++;
    req.session = session;
    switch (e.kind) {
      case OnlineEvent::Kind::kAdmit:
        req.op = serve::ServeOp::kAdmit;
        req.system = serialize_task_system(TaskSystem(e.admits));
        break;
      case OnlineEvent::Kind::kRelease:
        req.op = serve::ServeOp::kRelease;
        req.release_ids = e.release_ids;
        break;
      case OnlineEvent::Kind::kSwap:
        req.op = serve::ServeOp::kSwap;
        req.release_ids = e.release_ids;
        req.system = serialize_task_system(TaskSystem(e.admits));
        break;
    }
    const serve::ServeResponse resp = client.call(req);
    FEDCONS_EXPECTS_MSG(resp.status == serve::ServeStatus::kOk,
                        "loadgen: event " + std::to_string(i) +
                            " failed: " + resp.error);
    final_schedulable = resp.schedulable;
    verdicts += "{\"index\": " + std::to_string(i) + ", \"event\": \"" +
                to_string(e.kind) + "\", \"applied\": " +
                (resp.applied ? "1" : "0") + ", \"schedulable\": " +
                (resp.schedulable ? "1" : "0") + ", \"task_ids\": \"" +
                serve::join_ids(resp.task_ids) + "\", \"residents\": " +
                std::to_string(resp.residents) + "}\n";
  }

  if (shutdown) {
    serve::ServeRequest req;
    req.op = serve::ServeOp::kShutdown;
    req.seq = seq++;
    const serve::ServeResponse resp = client.call(req);
    FEDCONS_EXPECTS_MSG(resp.status == serve::ServeStatus::kOk,
                        "loadgen: shutdown failed: " + resp.error);
  }

  if (verdicts_path.empty()) {
    std::cout << verdicts;
  } else {
    std::ofstream out(verdicts_path);
    FEDCONS_EXPECTS_MSG(out.good(),
                        "loadgen: cannot write " + verdicts_path);
    out << verdicts;
  }
  return final_schedulable ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const Flags flags(argc, argv);
    static constexpr std::string_view kAllowed[] = {
        "socket", "port",     "connections", "sessions", "pipeline",
        "residents",  "duration-s", "warmup-s", "rate",  "m",
        "seed",   "json",   "trace",  "verdicts-out", "shutdown",
        "scrape", "server-stages"};
    const auto unknown = flags.unknown_keys(kAllowed);
    if (!unknown.empty() || !flags.positional().empty()) {
      for (const auto& key : unknown) {
        std::cerr << "fedcons_loadgen: unknown flag --" << key << "\n";
      }
      for (const auto& arg : flags.positional()) {
        std::cerr << "fedcons_loadgen: stray argument '" << arg << "'\n";
      }
      return usage();
    }
    if (flags.has("socket") == flags.has("port")) {
      std::cerr
          << "fedcons_loadgen: exactly one of --socket/--port required\n";
      return usage();
    }

    Options opt;
    opt.socket = flags.get_string("socket", "");
    opt.port = static_cast<int>(flags.get_int("port", 0));
    opt.connections = static_cast<int>(flags.get_int("connections", 1));
    opt.sessions = static_cast<int>(flags.get_int("sessions", 4));
    opt.residents = static_cast<int>(flags.get_int("residents", 6));
    opt.pipeline = static_cast<int>(flags.get_int("pipeline", 48));
    opt.duration_s = flags.get_double("duration-s", 2.0);
    opt.warmup_s = flags.get_double("warmup-s", 0.2);
    opt.rate = flags.get_double("rate", 0.0);
    opt.m = static_cast<int>(flags.get_int("m", 8));
    opt.seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
    opt.server_stages = flags.get_bool("server-stages", false);
    if (opt.connections < 1 || opt.sessions < 1 || opt.pipeline < 1 ||
        opt.residents < 1 ||
        opt.duration_s <= 0 ||
        opt.warmup_s < 0 || opt.rate < 0 || opt.m < 1) {
      std::cerr << "fedcons_loadgen: flag values out of range\n";
      return usage();
    }

    if (flags.get_bool("scrape", false)) {
      return run_scrape(opt);
    }
    if (flags.has("trace")) {
      return run_trace(opt, flags.get_string("trace", ""),
                       flags.get_string("verdicts-out", ""), flags.has("m"),
                       flags.get_bool("shutdown", false));
    }
    return run_throughput(opt, flags.get_bool("json", false),
                          flags.get_bool("shutdown", false));
  } catch (const std::exception& e) {
    std::cerr << "fedcons_loadgen: " << e.what() << "\n";
    return 2;
  }
}
