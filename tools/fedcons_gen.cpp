// fedcons_gen — generate random workload files for fedcons_cli.
//
// Usage:
//   fedcons_gen --preset=avionics --seed=1                > w.tasks
//   fedcons_gen --tasks=12 --util=4.0 --topology=layered  > w.tasks
//   fedcons_gen --list-presets
//
// Generator knobs (override preset values when both given):
//   --tasks=N --util=U --util-cap=C --period-min=P --period-max=P
//   --dratio-min=R --dratio-max=R --topology=layered|fork-join|mixed
//
// Unknown or malformed flags exit 2 with usage.
#include <iostream>

#include "fedcons/core/io.h"
#include "fedcons/gen/presets.h"
#include "fedcons/util/flags.h"
#include "fedcons/util/rng.h"

using namespace fedcons;

namespace {

int usage() {
  std::cerr << "usage: fedcons_gen [--preset=NAME] [--seed=N] [--tasks=N]\n"
               "                   [--util=U] [--util-cap=C] "
               "[--period-min=P] [--period-max=P]\n"
               "                   [--dratio-min=R] [--dratio-max=R]\n"
               "                   [--topology=layered|fork-join|mixed]\n"
               "       fedcons_gen --list-presets\n";
  return 2;
}

int run(const Flags& flags) {
  if (flags.has("list-presets")) {
    std::cout << describe_presets();
    return 0;
  }

  TaskSetParams params;  // "mixed"-ish defaults
  const std::string preset_name = flags.get_string("preset", "");
  if (!preset_name.empty()) {
    auto preset = find_preset(preset_name);
    if (!preset.has_value()) {
      std::cerr << "unknown preset '" << preset_name << "'; available:\n"
                << describe_presets();
      return 2;
    }
    params = preset->params;
  }

  params.num_tasks =
      static_cast<int>(flags.get_int("tasks", params.num_tasks));
  params.total_utilization =
      flags.get_double("util", params.total_utilization);
  params.utilization_cap =
      flags.get_double("util-cap", params.utilization_cap);
  params.period_min = flags.get_double("period-min", params.period_min);
  params.period_max = flags.get_double("period-max", params.period_max);
  params.deadline_ratio_min =
      flags.get_double("dratio-min", params.deadline_ratio_min);
  params.deadline_ratio_max =
      flags.get_double("dratio-max", params.deadline_ratio_max);
  const std::string topo = flags.get_string("topology", "");
  if (topo == "layered") params.topology = DagTopology::kLayered;
  else if (topo == "fork-join") params.topology = DagTopology::kForkJoin;
  else if (topo == "mixed") params.topology = DagTopology::kMixed;
  else if (!topo.empty()) {
    std::cerr << "unknown topology '" << topo
              << "' (layered | fork-join | mixed)\n";
    return 2;
  }

  Rng rng(static_cast<std::uint64_t>(flags.get_int("seed", 1)));
  GenerationInfo info;
  TaskSystem sys = generate_task_system(rng, params, &info);
  serialize_task_system(sys, std::cout);
  std::cerr << "# generated " << sys.size() << " tasks, U_sum ≈ "
            << info.achieved_utilization << " ("
            << info.deadline_clamps << " deadline clamp(s))\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const Flags flags(argc, argv);
    static constexpr std::string_view kAllowed[] = {
        "list-presets", "preset",     "tasks",      "util",
        "util-cap",     "period-min", "period-max", "dratio-min",
        "dratio-max",   "topology",   "seed",
    };
    const auto unknown = flags.unknown_keys(kAllowed);
    if (!unknown.empty() || !flags.positional().empty()) {
      for (const auto& key : unknown) {
        std::cerr << "error: unknown flag --" << key << "\n";
      }
      for (const auto& arg : flags.positional()) {
        std::cerr << "error: unexpected argument '" << arg << "'\n";
      }
      return usage();
    }
    return run(flags);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }
}
