// fedcons_top — live terminal monitor for a running fedcons_serve daemon.
//
// Usage:
//   fedcons_top --socket=PATH | --port=N
//               [--interval-ms=N] [--iterations=N] [--plain]
//
// Polls the daemon's "stats" op on one connection and renders a refreshing
// dashboard: request/shed rates, client-visible latency percentiles by op
// class, queue depth, batch-size distribution, and per-stage busy fractions.
// Everything after the first frame is an INTERVAL view: the tool
// reconstructs the server's log2 histograms from the scrape's raw bucket
// counts (obs::parse_histogram_buckets + Histogram::from_state) and
// differences consecutive snapshots with Histogram::delta_since, so the
// percentiles describe the last interval's requests — not the lifetime
// average a long-running daemon's cumulative histogram converges to.
//
// --interval-ms (default 1000) is the poll cadence. --iterations=N exits
// after N frames (0 = run until the daemon goes away or SIGINT). --plain
// suppresses the ANSI clear-screen between frames — one appended dashboard
// block per poll, for logs, pipes, and tests.
//
// The first frame shows lifetime values (there is no earlier snapshot to
// difference against); every later frame is the delta. Rates divide by the
// server's own snapshot_monotonic_us delta, not the client's sleep time, so
// a slow poll never inflates a rate. Exit 0 on a clean finish, 1 when the
// daemon disappears mid-run, 2 on usage errors.
#include <chrono>
#include <iostream>
#include <string_view>
#include <thread>

#include "fedcons/obs/metrics.h"
#include "fedcons/serve/client.h"
#include "fedcons/util/check.h"
#include "fedcons/util/flags.h"
#include "fedcons/util/mini_json.h"
#include "fedcons/util/table.h"

using namespace fedcons;

namespace {

int usage() {
  std::cerr << "usage: fedcons_top --socket=PATH | --port=N\n"
               "                   [--interval-ms=N] [--iterations=N]\n"
               "                   [--plain]\n";
  return 2;
}

/// One parsed stats snapshot, histograms reconstructed from bucket counts.
struct Snapshot {
  std::uint64_t uptime_us = 0;
  std::uint64_t monotonic_us = 0;
  std::uint64_t requests_enqueued = 0;
  std::uint64_t requests_shed = 0;
  std::uint64_t batches = 0;
  std::uint64_t queue_depth = 0;
  std::uint64_t queue_high_watermark = 0;
  std::uint64_t reader_busy_us = 0;
  std::uint64_t handle_us = 0;
  std::uint64_t write_us = 0;
  std::uint64_t dispatch_busy_us = 0;
  obs::Histogram latency;
  obs::Histogram admit_latency;
  obs::Histogram release_latency;
  obs::Histogram batch_size;
};

obs::Histogram parse_histogram(
    const std::map<std::string, std::string>& fields,
    const std::string& name) {
  return obs::Histogram::from_state(
      obs::parse_histogram_buckets(fields.at(name + ".buckets")),
      mini_json_uint(fields.at(name + ".count")),
      mini_json_uint(fields.at(name + ".sum")),
      mini_json_uint(fields.at(name + ".min")),
      mini_json_uint(fields.at(name + ".max")));
}

Snapshot fetch(serve::ServeClient& client, std::uint64_t seq) {
  serve::ServeRequest req;
  req.op = serve::ServeOp::kStats;
  req.seq = seq;
  const serve::ServeResponse resp = client.call(req);
  FEDCONS_EXPECTS_MSG(resp.status == serve::ServeStatus::kOk,
                      "fedcons_top: stats failed: " + resp.error);
  const auto fields = parse_mini_json(resp.raw);
  Snapshot s;
  s.uptime_us = mini_json_uint(fields.at("uptime_us"));
  s.monotonic_us = mini_json_uint(fields.at("snapshot_monotonic_us"));
  s.requests_enqueued = mini_json_uint(fields.at("requests_enqueued"));
  s.requests_shed = mini_json_uint(fields.at("requests_shed"));
  s.batches = mini_json_uint(fields.at("batches"));
  s.queue_depth = mini_json_uint(fields.at("queue_depth"));
  s.queue_high_watermark =
      mini_json_uint(fields.at("queue_high_watermark"));
  s.reader_busy_us = mini_json_uint(fields.at("reader_busy_us"));
  s.handle_us = mini_json_uint(fields.at("handle_us"));
  s.write_us = mini_json_uint(fields.at("write_us"));
  s.dispatch_busy_us = mini_json_uint(fields.at("dispatch_busy_us"));
  s.latency = parse_histogram(fields, "latency_us");
  s.admit_latency = parse_histogram(fields, "admit_latency_us");
  s.release_latency = parse_histogram(fields, "release_latency_us");
  s.batch_size = parse_histogram(fields, "batch_size");
  return s;
}

std::string fmt_rate(std::uint64_t delta, double dt_s) {
  return dt_s > 0 ? fmt_double(static_cast<double>(delta) / dt_s, 1) : "0";
}

/// Busy fraction of the interval: a stage's busy-us delta over wall time.
std::string fmt_busy(std::uint64_t delta_us, double dt_s) {
  return dt_s > 0
             ? fmt_double(static_cast<double>(delta_us) / (dt_s * 1e6), 3)
             : "0";
}

void latency_row(Table& t, const char* label, const obs::Histogram& h) {
  t.add_row({label, fmt_int(static_cast<long long>(h.count())),
             fmt_double(h.mean(), 1),
             fmt_int(static_cast<long long>(h.percentile(50))),
             fmt_int(static_cast<long long>(h.percentile(99)))});
}

void render(const Snapshot& now, const Snapshot* prev, bool plain) {
  if (!plain) std::cout << "\x1b[2J\x1b[H";  // clear + home
  const bool interval = prev != nullptr;
  const double dt_s =
      interval ? static_cast<double>(now.monotonic_us - prev->monotonic_us) /
                     1e6
               : static_cast<double>(now.uptime_us) / 1e6;
  const auto d = [&](std::uint64_t cur, std::uint64_t old) {
    return interval ? cur - old : cur;
  };
  std::cout << "fedcons_top  uptime "
            << fmt_double(static_cast<double>(now.uptime_us) / 1e6, 1)
            << "s  window "
            << (interval ? fmt_double(dt_s, 1) + "s" : std::string("lifetime"))
            << "\n";

  Table rates({"rate", "per s"});
  rates.add_row({"qps", fmt_rate(d(now.requests_enqueued,
                                   interval ? prev->requests_enqueued : 0),
                                 dt_s)});
  rates.add_row({"shed", fmt_rate(d(now.requests_shed,
                                    interval ? prev->requests_shed : 0),
                                  dt_s)});
  rates.add_row({"batches", fmt_rate(d(now.batches,
                                       interval ? prev->batches : 0),
                                     dt_s)});
  rates.print(std::cout);

  Table lat({"latency", "count", "mean us", "p50 us", "p99 us"});
  const obs::Histogram all =
      interval ? now.latency.delta_since(prev->latency) : now.latency;
  const obs::Histogram admit =
      interval ? now.admit_latency.delta_since(prev->admit_latency)
               : now.admit_latency;
  const obs::Histogram release =
      interval ? now.release_latency.delta_since(prev->release_latency)
               : now.release_latency;
  latency_row(lat, "all", all);
  latency_row(lat, "admit", admit);
  latency_row(lat, "release", release);
  lat.print(std::cout);

  const obs::Histogram batch =
      interval ? now.batch_size.delta_since(prev->batch_size)
               : now.batch_size;
  Table misc({"metric", "value"});
  misc.add_row({"queue depth", fmt_int(static_cast<long long>(
                                   now.queue_depth))});
  misc.add_row({"queue high watermark",
                fmt_int(static_cast<long long>(now.queue_high_watermark))});
  misc.add_row({"batch size p50",
                fmt_int(static_cast<long long>(batch.percentile(50)))});
  misc.add_row({"batch size p99",
                fmt_int(static_cast<long long>(batch.percentile(99)))});
  misc.add_row(
      {"reader busy",
       fmt_busy(d(now.reader_busy_us, interval ? prev->reader_busy_us : 0),
                dt_s)});
  misc.add_row({"handle busy",
                fmt_busy(d(now.handle_us, interval ? prev->handle_us : 0),
                         dt_s)});
  misc.add_row({"write busy",
                fmt_busy(d(now.write_us, interval ? prev->write_us : 0),
                         dt_s)});
  misc.add_row({"dispatch busy",
                fmt_busy(d(now.dispatch_busy_us,
                           interval ? prev->dispatch_busy_us : 0),
                         dt_s)});
  misc.print(std::cout);
  std::cout.flush();
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const Flags flags(argc, argv);
    static constexpr std::string_view kAllowed[] = {
        "socket", "port", "interval-ms", "iterations", "plain"};
    const auto unknown = flags.unknown_keys(kAllowed);
    if (!unknown.empty() || !flags.positional().empty()) {
      for (const auto& key : unknown) {
        std::cerr << "fedcons_top: unknown flag --" << key << "\n";
      }
      for (const auto& arg : flags.positional()) {
        std::cerr << "fedcons_top: stray argument '" << arg << "'\n";
      }
      return usage();
    }
    if (flags.has("socket") == flags.has("port")) {
      std::cerr << "fedcons_top: exactly one of --socket/--port required\n";
      return usage();
    }
    const std::string socket = flags.get_string("socket", "");
    const int port = static_cast<int>(flags.get_int("port", 0));
    const auto interval = std::chrono::milliseconds(
        flags.get_int("interval-ms", 1000));
    const std::int64_t iterations = flags.get_int("iterations", 0);
    const bool plain = flags.get_bool("plain", false);
    if (interval.count() < 1 || iterations < 0) {
      std::cerr << "fedcons_top: flag values out of range\n";
      return usage();
    }

    serve::ServeClient client =
        socket.empty() ? serve::ServeClient::connect_tcp(port)
                       : serve::ServeClient::connect_unix(socket);
    Snapshot prev;
    bool have_prev = false;
    std::uint64_t seq = 0;
    for (std::int64_t frame = 0; iterations == 0 || frame < iterations;
         ++frame) {
      if (frame != 0) std::this_thread::sleep_for(interval);
      const Snapshot now = fetch(client, seq++);
      render(now, have_prev ? &prev : nullptr, plain);
      prev = now;
      have_prev = true;
    }
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "fedcons_top: " << e.what() << "\n";
    return 1;
  }
}
