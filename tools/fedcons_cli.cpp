// fedcons_cli — analyze, schedule, and simulate task systems from files.
//
// Usage:
//   fedcons_cli --file=workload.tasks --m=8 [--simulate] [--horizon=100000]
//               [--strategy=fedcons|arbfed|arbfed-clamp] [--algo=NAME]
//               [--variant=full|literal] [--seed=1] [--dot] [--gantt]
//               [--margins] [--json] [--explain[=json]] [--trace-out=FILE]
//               [--inject=SPEC] [--enforce=on|off]
//   fedcons_cli --online=TRACE [--m=N] [--json | --explain]
//   fedcons_cli --list-algos         # engine registry names + descriptions
//   fedcons_cli --example            # print a sample workload file and exit
//
// --online=TRACE replays an admission-event trace (the online/trace.h JSONL
// format: admit / release / swap lines) through a live AdmissionSession and
// reports per-event latency next to the incremental-analysis counters (memo
// hits/misses, partition probes replayed). --m overrides the trace header's
// processor count. --json emits the machine-readable replay document
// (latency fields are wall-clock measurements, not byte-stable); --explain
// appends each resident high-density task's μ-scan trajectory, marking μ
// values served from the memo cache. Exit 0 iff the final verdict is
// schedulable.
//
// --inject=SPEC runs the fault-injection flow (fault/fault_plan.h grammar,
// e.g. "task:a,overrun:2500,early:10;seed:7" or "proc:2@1000"):
//  * a `proc:P@T` clause computes the degraded-mode plan — FEDCONS re-run on
//    m−1 processors, shedding tasks only if re-admission fails. Exit 0 when
//    every task survives, 1 when tasks were shed. --json emits the
//    structured degraded-mode document.
//  * `task:` clauses replay the admitted allocation with the faults
//    injected. --enforce=on (default) turns runtime supervision on; the run
//    reports per-task misses and enforcement events, and exits 0 iff no
//    NON-targeted task missed a deadline (the isolation property), 1
//    otherwise.
//
// All three tools reject unknown or malformed flags with usage + exit 2.
//
// --algo=NAME runs any test from the engine registry (verdict only; the
// FEDCONS-specific cluster report, --gantt, --margins, and --simulate need
// the structured result and stay on the --strategy path).
//
// --json (fedcons strategy only) replaces the human-readable report with one
// machine-readable document: the verdict, the allocation, per-task MINPROCS
// scan bounds ([minprocs_scan_lb, minprocs_scan_cap] — how far the
// bound-guided scan can possibly run), and the analysis-cost counters
// measured across this run (perf counter deltas plus the thread's
// workspace-reuse count). Exit status is unchanged.
//
// --explain (fedcons strategy only) records verdict provenance and appends
// the full decision log to the report: each high-density task's μ-scan
// trajectory with every LS probe's makespan against D_i, and each
// low-density task's bin-attempt list with the failing DBF* breakpoint.
// --explain=json emits the machine-readable provenance document instead of
// the human report (mutually exclusive with --json: one document per run).
//
// --trace-out=FILE enables span tracing for the run and writes a Chrome
// trace-event JSON (open in Perfetto / chrome://tracing) on exit.
//
// Exit status: 0 = schedulable (and, with --simulate, zero misses),
//              1 = rejected / misses, 2 = usage or parse error.
#include <fstream>
#include <iostream>
#include <iterator>

#include "fedcons/analysis/feasibility.h"
#include "fedcons/core/io.h"
#include "fedcons/engine/registry.h"
#include "fedcons/fault/degraded.h"
#include "fedcons/fault/fault_plan.h"
#include "fedcons/federated/arbitrary.h"
#include "fedcons/federated/fedcons_algorithm.h"
#include "fedcons/federated/sensitivity.h"
#include "fedcons/listsched/ls_workspace.h"
#include "fedcons/obs/provenance.h"
#include "fedcons/obs/span_tracer.h"
#include "fedcons/online/admission_session.h"
#include "fedcons/online/trace.h"
#include "fedcons/sim/gantt.h"
#include "fedcons/sim/system_sim.h"
#include "fedcons/simd/dispatch.h"
#include "fedcons/util/check.h"
#include "fedcons/util/flags.h"
#include "fedcons/util/mini_json.h"
#include "fedcons/util/perf_counters.h"
#include "fedcons/util/table.h"

using namespace fedcons;

namespace {

constexpr const char* kExample = R"(# Example fedcons workload (ticks are abstract time units).
task sensor-fusion
  deadline 2
  period 10
  vertex 1
  vertex 1
  vertex 1
  vertex 1
end
task control-law
  deadline 16
  period 20
  vertex 1
  vertex 2
  vertex 3
  vertex 2
  vertex 1
  edge 0 1
  edge 0 2
  edge 1 3
  edge 2 3
  edge 2 4
end
task logger
  deadline 12
  period 40
  vertex 2
  vertex 1
  edge 0 1
end
)";

int usage() {
  std::cerr
      << "usage: fedcons_cli --file=<workload> --m=<processors>\n"
         "                   [--simulate] [--horizon=N] [--seed=N] [--dot]\n"
         "                   [--strategy=fedcons|arbfed|arbfed-clamp]\n"
         "                   [--algo=NAME] [--variant=full|literal] [--json]\n"
         "                   [--explain[=json]] [--trace-out=FILE]\n"
         "                   [--inject=SPEC] [--enforce=on|off]\n"
         "       fedcons_cli --online=TRACE [--m=N] [--json | --explain]\n"
         "       fedcons_cli --list-algos\n"
         "       fedcons_cli --example\n";
  return 2;
}

// Machine-readable run report. Key order and formatting are fixed so the
// document is byte-stable for a given workload and build.
void print_json_report(std::ostream& os, const std::string& file, int m,
                       const TaskSystem& system, const FedconsResult& result,
                       const PerfCounters& counters,
                       std::uint64_t workspace_reuses) {
  os << "{\n";
  os << "  \"schema_version\": 1,\n";
  os << "  \"file\": \"" << json_escape(file) << "\",\n";
  os << "  \"m\": " << m << ",\n";
  os << "  \"strategy\": \"fedcons\",\n";
  // Provenance only: verdicts and counters are backend-invariant (the
  // simd-smoke battery pins it), so this records what ran, not what decided.
  os << "  \"simd_backend\": \"" << simd::to_string(simd::active_backend())
     << "\",\n";
  os << "  \"schedulable\": " << (result.success ? "true" : "false") << ",\n";
  os << "  \"failure\": \"" << to_string(result.failure) << "\",\n";
  os << "  \"tasks\": [\n";
  for (std::size_t i = 0; i < system.size(); ++i) {
    const DagTask& task = system[i];
    const std::string name =
        task.name().empty() ? "task" + std::to_string(i + 1) : task.name();
    os << "    {\"index\": " << i << ", \"name\": \"" << json_escape(name)
       << "\", \"density\": \""
       << (task.is_high_density() ? "high" : "low") << "\", \"vol\": "
       << task.vol() << ", \"len\": " << task.len() << ", \"deadline\": "
       << task.deadline() << ", \"period\": " << task.period()
       << ", \"minprocs_scan_lb\": " << minprocs_lower_bound(task)
       << ", \"minprocs_scan_cap\": " << minprocs_scan_cap(task) << "}"
       << (i + 1 < system.size() ? "," : "") << "\n";
  }
  os << "  ],\n";
  os << "  \"clusters\": [\n";
  for (std::size_t c = 0; c < result.clusters.size(); ++c) {
    const ClusterAssignment& cl = result.clusters[c];
    os << "    {\"task\": " << cl.task << ", \"first_processor\": "
       << cl.first_processor << ", \"num_processors\": " << cl.num_processors
       << ", \"makespan\": " << cl.sigma.makespan() << "}"
       << (c + 1 < result.clusters.size() ? "," : "") << "\n";
  }
  os << "  ],\n";
  os << "  \"shared_processors\": " << result.shared_processors << ",\n";
  os << "  \"counters\": {\"ls_invocations\": " << counters.ls_invocations
     << ", \"minprocs_scan_iterations\": "
     << counters.minprocs_scan_iterations
     << ", \"dbf_star_evaluations\": " << counters.dbf_star_evaluations
     << ", \"ls_probes_pruned\": " << counters.ls_probes_pruned
     << ", \"ls_probes_blocked\": " << counters.ls_probes_blocked
     << ", \"simd_breakpoints_vectorized\": "
     << counters.simd_breakpoints_vectorized
     << ", \"minprocs_memo_hits\": " << counters.minprocs_memo_hits
     << ", \"minprocs_memo_misses\": " << counters.minprocs_memo_misses
     << ", \"partition_bins_revalidated\": "
     << counters.partition_bins_revalidated
     << ", \"workspace_reuses\": " << workspace_reuses << "}\n";
  os << "}\n";
}

// Writes the Chrome trace on every exit path once --trace-out is set.
struct TraceDump {
  std::string path;
  ~TraceDump() {
    if (path.empty()) return;
    std::ofstream out(path);
    if (!out) {
      std::cerr << "error: cannot write trace to '" << path << "'\n";
      return;
    }
    obs::write_chrome_trace(out);
  }
};

int list_algos() {
  const TestRegistry& reg = TestRegistry::global();
  Table t({"name", "deadlines", "description"});
  for (const std::string& name : reg.names()) {
    TestPtr test = reg.make(name);
    t.add_row({test->name(), to_string(test->max_deadline_class()),
               test->description()});
  }
  t.print(std::cout);
  return 0;
}

/// Per-task fault-injection replay: admit, inject, simulate, attribute.
/// Exit 0 iff no task the plan does not target missed a deadline.
int run_injection(const TaskSystem& system, int m, const FaultPlan& plan,
                  const Flags& flags, const FedconsOptions& options) {
  const std::string enforce_str = flags.get_string("enforce", "on");
  if (enforce_str != "on" && enforce_str != "off") {
    std::cerr << "error: --enforce takes 'on' or 'off'\n";
    return 2;
  }
  const SupervisionMode supervision = enforce_str == "on"
                                          ? SupervisionMode::kEnforce
                                          : SupervisionMode::kNone;
  const FedconsResult fed = fedcons_schedule(system, m, options);
  if (!fed.success) {
    std::cout << "FEDCONS rejected the system on m=" << m
              << " — nothing to inject into\n";
    return 1;
  }
  SimConfig cfg;
  cfg.horizon = flags.get_int("horizon", 100000);
  cfg.release = ReleaseModel::kSporadic;
  cfg.exec = ExecModel::kUniform;
  cfg.exec_lo = 0.5;
  cfg.seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
  cfg.faults = plan;
  cfg.supervision = supervision;
  const SystemSimReport rep = simulate_system(system, fed, cfg);

  std::cout << "Fault injection (" << format_fault_plan(plan)
            << "), supervision " << to_string(supervision) << ", horizon "
            << cfg.horizon << ":\n";
  Table table({"task", "faulted", "released", "misses", "throttles",
               "deferrals", "slot-overruns"});
  std::uint64_t cross_misses = 0;
  for (std::size_t t = 0; t < system.size(); ++t) {
    const std::string name = task_display_name(system, t);
    const bool targeted = plan.find(name) != nullptr;
    const SimStats& s = rep.per_task[t];
    if (!targeted) cross_misses += s.deadline_misses;
    table.add_row({name, targeted ? "yes" : "no",
                   std::to_string(s.jobs_released),
                   std::to_string(s.deadline_misses),
                   std::to_string(s.budget_throttles),
                   std::to_string(s.arrival_deferrals),
                   std::to_string(s.slot_overruns)});
  }
  table.print(std::cout);
  std::cout << (cross_misses == 0
                    ? "isolation held: no non-targeted task missed\n"
                    : "ISOLATION VIOLATED: " + std::to_string(cross_misses) +
                          " miss(es) on non-targeted tasks\n");
  return cross_misses == 0 ? 0 : 1;
}

/// --online=TRACE: replay an admission-event trace through a live
/// AdmissionSession, timing every event. The per-event latency table is the
/// observable the O(changed-task) claim is judged on; the memo / bin-probe
/// counters say where the saved work went. Exit 0 iff the final verdict is
/// schedulable (matching the batch CLI's convention), 2 on bad input.
int run_online(const Flags& flags) {
  const std::string path = flags.get_string("online", "");
  if (path.empty() || path == "true") {
    std::cerr << "error: --online needs a trace file (--online=FILE)\n";
    return 2;
  }
  std::ifstream in(path);
  if (!in) {
    std::cerr << "error: cannot open '" << path << "'\n";
    return 2;
  }
  const std::string text((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());
  OnlineTrace trace;
  try {
    trace = parse_online_trace(text);
  } catch (const ParseError& e) {
    std::cerr << "parse error in '" << path << "': " << e.what() << "\n";
    return 2;
  }

  const bool json = flags.has("json");
  const bool explain = flags.has("explain");
  if (json && explain) {
    std::cerr << "error: --json and --explain are mutually exclusive "
                 "(each emits one document)\n";
    return 2;
  }
  if (explain && flags.get_string("explain", "true") == "json") {
    std::cerr << "error: --explain=json is not supported with --online\n";
    return 2;
  }

  AdmissionSession::Config config;
  config.processors = static_cast<int>(flags.get_int("m", trace.processors));
  if (config.processors < 1) {
    std::cerr << "error: --m must be >= 1\n";
    return 2;
  }
  if (flags.get_string("variant", "full") == "literal") {
    config.partition.variant = PartitionVariant::kPaperLiteral;
  }

  AdmissionSession session(config);
  std::vector<OnlineEventReport> reports;
  reports.reserve(trace.events.size());
  const PerfCounters before = perf_counters();
  const OnlineReplayResult result = replay_online_trace(
      trace, session, [&](const OnlineEventReport& r) { reports.push_back(r); });
  const PerfCounters delta = perf_counters() - before;
  const MinprocsMemoStats memo = session.memo_stats();
  const std::uint64_t lookups = memo.hits + memo.misses;
  const double hit_rate =
      lookups == 0 ? 0.0
                   : static_cast<double>(memo.hits) / static_cast<double>(lookups);

  if (json) {
    std::cout << "{\n";
    std::cout << "  \"schema_version\": 1,\n";
    std::cout << "  \"trace\": \"" << json_escape(path) << "\",\n";
    std::cout << "  \"simd_backend\": \""
              << simd::to_string(simd::active_backend()) << "\",\n";
    std::cout << "  \"m\": " << config.processors << ",\n";
    std::cout << "  \"events\": " << result.events << ",\n";
    std::cout << "  \"applied\": " << result.applied << ",\n";
    std::cout << "  \"rejected\": " << result.rejected << ",\n";
    std::cout << "  \"final_schedulable\": "
              << (result.final_schedulable ? "true" : "false") << ",\n";
    std::cout << "  \"residents\": " << session.num_residents() << ",\n";
    std::cout << "  \"per_event\": [\n";
    for (std::size_t i = 0; i < reports.size(); ++i) {
      const OnlineEventReport& r = reports[i];
      std::cout << "    {\"index\": " << r.index << ", \"event\": \""
                << to_string(r.kind) << "\", \"applied\": "
                << (r.outcome.applied ? "true" : "false")
                << ", \"schedulable\": "
                << (r.outcome.schedulable ? "true" : "false")
                << ", \"latency_us\": " << r.latency_us
                << ", \"residents\": " << r.residents_after
                << ", \"bins_revalidated\": " << r.outcome.bins_revalidated
                << ", \"memo_hit\": " << (r.outcome.memo_hit ? "true" : "false")
                << "}" << (i + 1 < reports.size() ? "," : "") << "\n";
    }
    std::cout << "  ],\n";
    std::cout << "  \"counters\": {\"minprocs_memo_hits\": " << memo.hits
              << ", \"minprocs_memo_misses\": " << memo.misses
              << ", \"memo_hit_rate\": " << format_double(hit_rate)
              << ", \"partition_bins_revalidated\": "
              << delta.partition_bins_revalidated
              << ", \"ls_probes_pruned\": " << delta.ls_probes_pruned
              << ", \"ls_probes_blocked\": " << delta.ls_probes_blocked
              << ", \"simd_breakpoints_vectorized\": "
              << delta.simd_breakpoints_vectorized
              << ", \"total_latency_us\": " << result.total_latency_us
              << ", \"max_latency_us\": " << result.max_latency_us << "}\n";
    std::cout << "}\n";
    return result.final_schedulable ? 0 : 1;
  }

  std::cout << "Online replay of '" << path << "' on m=" << config.processors
            << " (" << trace.events.size() << " events):\n";
  Table table({"#", "event", "applied", "schedulable", "latency-us",
               "residents", "bins-probed", "memo-hit"});
  for (const OnlineEventReport& r : reports) {
    table.add_row({std::to_string(r.index), to_string(r.kind),
                   r.outcome.applied ? "yes" : "no",
                   r.outcome.schedulable ? "yes" : "NO",
                   std::to_string(r.latency_us),
                   std::to_string(r.residents_after),
                   std::to_string(r.outcome.bins_revalidated),
                   r.outcome.memo_hit ? "yes" : ""});
  }
  table.print(std::cout);
  const double mean_us =
      reports.empty() ? 0.0
                      : static_cast<double>(result.total_latency_us) /
                            static_cast<double>(reports.size());
  std::cout << result.applied << " applied, " << result.rejected
            << " rejected; latency mean " << fmt_double(mean_us, 1)
            << " us, max " << result.max_latency_us << " us\n";
  std::cout << "memo: " << memo.hits << "/" << lookups << " lookups hit ("
            << fmt_double(hit_rate * 100.0, 1) << "%); partition probes "
            << "replayed: " << delta.partition_bins_revalidated << "\n";
  std::cout << "final verdict on " << session.num_residents()
            << " residents: "
            << (result.final_schedulable ? "SCHEDULABLE" : "unschedulable")
            << "\n";

  if (explain) {
    std::vector<SessionTaskId> ids;
    const TaskSystem residents = session.resident_system(&ids);
    std::cout << "\nPhase-1 decisions for resident high-density tasks:\n";
    bool any = false;
    for (std::size_t i = 0; i < residents.size(); ++i) {
      const MinprocsProvenance* scan = session.scan_of(ids[i]);
      if (scan == nullptr) continue;  // low-density: no mu scan to show
      any = true;
      std::cout << "  task " << ids[i] << " ("
                << task_display_name(residents, i) << "): mu = "
                << scan->chosen_mu
                << (session.from_memo(ids[i]) ? " (memo cache)"
                                              : " (fresh scan)")
                << ", scan range [" << scan->scan_lb << ", " << scan->scan_cap
                << "]\n";
      for (const MinprocsProbeRecord& p : scan->probes) {
        std::cout << "    mu=" << p.mu << " -> makespan " << p.makespan
                  << (p.makespan <= residents[i].deadline() ? " <= D"
                                                            : " > D")
                  << "\n";
      }
    }
    if (!any) std::cout << "  (no high-density residents)\n";
  }
  return result.final_schedulable ? 0 : 1;
}

int run(const Flags& flags) {
  if (flags.has("example")) {
    std::cout << kExample;
    return 0;
  }
  if (flags.has("list-algos")) return list_algos();
  if (flags.has("online")) return run_online(flags);
  const std::string path = flags.get_string("file", "");
  const int m = static_cast<int>(flags.get_int("m", 0));
  if (path.empty() || m < 1) return usage();

  TaskSystem system;
  try {
    std::ifstream in(path);
    if (!in) {
      std::cerr << "error: cannot open '" << path << "'\n";
      return 2;
    }
    system = parse_task_system(in);
  } catch (const ParseError& e) {
    std::cerr << "parse error in '" << path << "': " << e.what() << "\n";
    return 2;
  }

  const bool json = flags.has("json");
  const bool explain = flags.has("explain");
  // Bare --explain parses as "true"; --explain=json selects the document.
  const bool explain_as_json =
      explain && flags.get_string("explain", "true") == "json";
  if (json && explain) {
    std::cerr << "error: --json and --explain are mutually exclusive "
                 "(each emits one document; use --explain=json for the "
                 "machine-readable provenance)\n";
    return 2;
  }

  TraceDump trace_dump;
  trace_dump.path = flags.get_string("trace-out", "");
  if (!trace_dump.path.empty()) obs::set_tracing_enabled(true);

  if (flags.has("inject")) {
    FaultPlan plan;
    try {
      plan = parse_fault_plan(flags.get_string("inject", ""));
    } catch (const ParseError& e) {
      std::cerr << "error: bad --inject spec: " << e.what() << "\n";
      return 2;
    }
    FedconsOptions inj_options;
    if (flags.get_string("variant", "full") == "literal") {
      inj_options.partition.variant = PartitionVariant::kPaperLiteral;
    }
    if (plan.processor_failure.processor >= 0) {
      if (plan.processor_failure.processor >= m) {
        std::cerr << "error: failed processor "
                  << plan.processor_failure.processor
                  << " out of range for m=" << m << "\n";
        return 2;
      }
      const DegradedModeReport rep = degrade_on_processor_failure(
          system, m, plan.processor_failure, inj_options);
      if (json) {
        std::cout << degraded_report_json(system, rep);
      } else {
        std::cout << rep.describe(system);
      }
      return rep.full_reschedule ? 0 : 1;
    }
    return run_injection(system, m, plan, flags, inj_options);
  }

  const bool machine = json || explain_as_json;
  if (!machine) {
    std::cout << system.summary() << "\n";
    if (flags.has("dot")) {
      for (std::size_t i = 0; i < system.size(); ++i) {
        std::cout << system[i].graph().to_dot("task" + std::to_string(i + 1));
      }
    }

    auto nec = necessary_feasibility(system, m);
    std::cout << "Necessary conditions on m=" << m << ": "
              << (nec.passed ? "pass" : "FAIL (" + nec.failed_condition + ")")
              << "\n\n";
  }

  if (flags.has("algo")) {
    if (json || explain) {
      std::cerr << "error: --json/--explain are only supported with "
                   "--strategy=fedcons\n";
      return 2;
    }
    const std::string algo = flags.get_string("algo", "");
    TestPtr test;
    try {
      test = TestRegistry::global().make(algo);
    } catch (const ContractViolation&) {
      std::cerr << "error: unknown algorithm '" << algo
                << "' (see --list-algos)\n";
      return 2;
    }
    if (!test->supports(system)) {
      std::cerr << "error: " << test->name() << " handles "
                << to_string(test->max_deadline_class())
                << "-deadline systems; this system is "
                << to_string(system.deadline_class()) << "-deadline\n";
      return 2;
    }
    const bool ok = test->admits_checked(system, m);
    std::cout << test->name() << " on m=" << m << ": "
              << (ok ? "SCHEDULABLE" : "rejected") << "\n";
    return ok ? 0 : 1;
  }

  const std::string strategy = flags.get_string("strategy", "fedcons");
  FedconsOptions options;
  if (flags.get_string("variant", "full") == "literal") {
    options.partition.variant = PartitionVariant::kPaperLiteral;
  }
  options.record_provenance = explain;

  if ((json || explain) && strategy != "fedcons") {
    std::cerr << "error: --json/--explain are only supported with "
                 "--strategy=fedcons\n";
    return 2;
  }

  bool schedulable = false;
  FedconsResult fed_result;
  if (strategy == "fedcons") {
    if (system.deadline_class() == DeadlineClass::kArbitrary) {
      std::cerr << "error: system has D > T tasks; use "
                   "--strategy=arbfed or arbfed-clamp\n";
      return 2;
    }
    const PerfCounters before = perf_counters();
    const std::uint64_t reuses_before = workspace_reuse_count();
    fed_result = fedcons_schedule(system, m, options);
    schedulable = fed_result.success;
    if (json) {
      print_json_report(std::cout, path, m, system, fed_result,
                        perf_counters() - before,
                        workspace_reuse_count() - reuses_before);
      return schedulable ? 0 : 1;
    }
    if (explain_as_json) {
      std::cout << explain_json(system, *fed_result.provenance);
      return schedulable ? 0 : 1;
    }
    std::cout << fed_result.describe(system);
    if (explain) {
      std::cout << "\n" << explain_text(system, *fed_result.provenance);
    }
    if (schedulable && flags.has("gantt")) {
      for (const auto& c : fed_result.clusters) {
        std::cout << "\nTemplate schedule sigma for task " << c.task + 1
                  << " (cluster of " << c.num_processors << "):\n"
                  << render_gantt(c.sigma);
      }
    }
  } else if (strategy == "arbfed" || strategy == "arbfed-clamp") {
    auto arb = arbitrary_federated_schedule(
        system, m,
        strategy == "arbfed" ? ArbitraryStrategy::kPipelined
                             : ArbitraryStrategy::kClampToPeriod,
        options);
    std::cout << arb.describe(system);
    schedulable = arb.success;
    if (schedulable && flags.has("simulate")) {
      SimConfig cfg;
      cfg.horizon = flags.get_int("horizon", 100000);
      cfg.release = ReleaseModel::kSporadic;
      cfg.exec = ExecModel::kUniform;
      cfg.exec_lo = 0.5;
      cfg.seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
      SystemSimReport rep = simulate_arbitrary_system(system, arb, cfg);
      std::cout << "\nSimulation over " << cfg.horizon << " ticks: "
                << rep.total.jobs_released << " dag-jobs, "
                << rep.total.deadline_misses << " misses, max response "
                << rep.total.max_response_time << "\n";
      if (rep.total.deadline_misses != 0) return 1;
    }
  } else {
    return usage();
  }
  if (!schedulable) return 1;

  if (flags.has("margins") && strategy == "fedcons") {
    std::cout << "\nWCET growth margins (how far each budget can grow "
                 "before the verdict flips):\n";
    Table margins({"task", "margin"});
    SensitivityTest accept = [&options](const TaskSystem& s, int mm) {
      return fedcons_schedulable(s, mm, options);
    };
    for (const auto& tm : wcet_sensitivity(system, m, accept)) {
      std::string name = system[tm.task].name().empty()
                             ? "task" + std::to_string(tm.task + 1)
                             : system[tm.task].name();
      margins.add_row({name, fmt_double(tm.margin, 2) + "x"});
    }
    margins.add_row({"(all tasks)",
                     fmt_double(system_wcet_margin(system, m, accept), 2) +
                         "x"});
    margins.print(std::cout);
  }

  if (flags.has("simulate") && strategy == "fedcons") {
    SimConfig cfg;
    cfg.horizon = flags.get_int("horizon", 100000);
    cfg.release = ReleaseModel::kSporadic;
    cfg.exec = ExecModel::kUniform;
    cfg.exec_lo = 0.5;
    cfg.seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
    SystemSimReport rep = simulate_system(system, fed_result, cfg);
    std::cout << "\nSimulation over " << cfg.horizon << " ticks: "
              << rep.total.jobs_released << " dag-jobs, "
              << rep.total.deadline_misses << " misses, max response "
              << rep.total.max_response_time << "\n";
    if (rep.total.deadline_misses != 0) return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const Flags flags(argc, argv);
    static constexpr std::string_view kAllowed[] = {
        "example", "list-algos", "file",    "m",        "simulate",
        "horizon", "seed",       "dot",     "gantt",    "margins",
        "strategy", "algo",      "variant", "json",     "explain",
        "trace-out", "inject",   "enforce", "online",
    };
    const auto unknown = flags.unknown_keys(kAllowed);
    if (!unknown.empty() || !flags.positional().empty()) {
      for (const auto& key : unknown) {
        std::cerr << "error: unknown flag --" << key << "\n";
      }
      for (const auto& arg : flags.positional()) {
        std::cerr << "error: unexpected argument '" << arg << "'\n";
      }
      return usage();
    }
    return run(flags);
  } catch (const std::exception& e) {
    // Malformed flag syntax, contract violations from absurd parameter
    // combinations, filesystem surprises: report and exit 2, never abort.
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }
}
