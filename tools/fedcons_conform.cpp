// fedcons_conform — differential conformance harness driver.
//
// Modes (mutually exclusive):
//   (default)        run the randomized harness over the built-in battery
//   --demo-anomaly   build the Graham-anomaly exhibit (template replay vs
//                    online LS rerun on the same seed)
//   --isolation      fuzz the federated ISOLATION property: inject a fault
//                    plan against one task per trial and check no OTHER task
//                    misses (--enforce=on, default) or demonstrate the
//                    cascade supervision prevents (--enforce=off)
//   --online         differential fuzz of the incremental admission engine:
//                    randomized admit/release/swap traces, with the session
//                    verdict compared field-by-field against a full batch
//                    re-analysis after EVERY event; divergences shrink to
//                    minimal traces (--events N sets events per trial)
//   --replay=FILE    re-run a pinned artifact: conformance-/fault-schema
//                    artifacts must still reproduce their violation; online
//                    trace artifacts must conform (incremental == batch)
//   --list           print the available conformance entries
//
// Harness flags: --trials N --threads N --seed S --m M --horizon H
//   --exec-lo F --jitter F --util-lo F --util-hi F --shrink-budget N
//   --algos NAME[,NAME...]   (battery subset; demonstration entries such as
//                             FEDCONS@online-rerun may be named explicitly)
//   --out-dir DIR            (write one JSON artifact per violation)
//   --json                   (machine-readable report on stdout)
//   --trace-out FILE         (span-trace the run; Chrome trace-event JSON)
//
// Exit codes: 0 — success (zero violations / isolation held with
// enforcement on / a cascade was exhibited with enforcement off / artifact
// reproduced / demo exhibited); 1 — the run refuted its claim; 2 — usage or
// input error. Unknown or malformed flags exit 2 with usage.
#include <exception>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "fedcons/conform/anomaly_demo.h"
#include "fedcons/conform/artifact.h"
#include "fedcons/conform/harness.h"
#include "fedcons/conform/online_check.h"
#include "fedcons/conform/oracle.h"
#include "fedcons/core/io.h"
#include "fedcons/fault/fault_artifact.h"
#include "fedcons/fault/isolation.h"
#include "fedcons/obs/span_tracer.h"
#include "fedcons/util/flags.h"

namespace {

using namespace fedcons;

std::vector<std::string> split_csv(const std::string& csv) {
  std::vector<std::string> out;
  std::stringstream stream(csv);
  std::string item;
  while (std::getline(stream, item, ',')) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

void print_outcome(std::ostream& os, const char* label,
                   const ConformanceOutcome& o) {
  os << "  " << label << ": supported=" << (o.supported ? "yes" : "no")
     << " admitted=" << (o.admitted ? "yes" : "no")
     << " jobs=" << o.sim.jobs_released << " misses=" << o.sim.deadline_misses
     << " max_lateness=" << o.sim.max_lateness << "\n";
}

int run_replay(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::cerr << "error: cannot open artifact " << path << "\n";
    return 2;
  }
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string text = buffer.str();

  // Dispatch on the schema tag: online traces replay through the incremental
  // session and must CONFORM; fault-isolation artifacts replay through the
  // isolation oracle, conformance artifacts through their named entry (both
  // must still reproduce their violation).
  if (text.find("fedcons-online-trace") != std::string::npos) {
    const OnlineTrace trace = parse_online_trace(text);
    std::cout << "online trace " << path << "\n  processors: "
              << trace.processors << "  events: " << trace.events.size()
              << "\n";
    const std::optional<std::string> diff = check_online_trace(trace);
    if (!diff.has_value()) {
      std::cout << "incremental == batch after every event (conforms)\n";
      return 0;
    }
    std::cout << "DIVERGENCE: " << *diff << "\n";
    return 1;
  }

  if (text.find("fedcons-fault-repro-v1") != std::string::npos) {
    const FaultArtifact artifact = parse_fault_artifact(text);
    const ConformanceOutcome outcome = replay_fault_artifact(artifact);
    std::cout << "fault artifact " << path << "\n"
              << "  plan: " << format_fault_plan(artifact.plan) << "\n"
              << "  supervision: " << to_string(artifact.supervision)
              << "  m: " << artifact.m << "  sim seed: " << artifact.sim.seed
              << "\n  note: " << artifact.note << "\n";
    print_outcome(std::cout, "replay (cross-task)", outcome);
    if (outcome.violation()) {
      std::cout << "cross-task violation REPRODUCED\n";
      return 0;
    }
    std::cout << "cross-task violation did NOT reproduce\n";
    return 1;
  }

  const ViolationArtifact artifact = parse_artifact(text);
  const ConformanceOutcome outcome = replay_artifact(artifact);
  std::cout << "artifact " << path << "\n"
            << "  algorithm: " << artifact.algorithm << "\n"
            << "  m: " << artifact.m << "  sim seed: " << artifact.sim.seed
            << "  note: " << artifact.note << "\n";
  print_outcome(std::cout, "replay", outcome);
  if (outcome.violation()) {
    std::cout << "violation REPRODUCED\n";
    return 0;
  }
  std::cout << "violation did NOT reproduce\n";
  return 1;
}

int run_isolation(const Flags& flags) {
  IsolationConfig config = default_isolation_config();
  config.trials = static_cast<std::size_t>(flags.get_int("trials", 500));
  config.num_threads = static_cast<int>(flags.get_int("threads", 0));
  config.master_seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
  config.m = static_cast<int>(flags.get_int("m", 8));
  config.sim.horizon = flags.get_int("horizon", config.sim.horizon);
  config.sim.exec_lo = flags.get_double("exec-lo", config.sim.exec_lo);
  config.sim.jitter_frac = flags.get_double("jitter", config.sim.jitter_frac);
  config.util_lo = flags.get_double("util-lo", config.util_lo);
  config.util_hi = flags.get_double("util-hi", config.util_hi);
  config.shrink_budget = static_cast<std::size_t>(flags.get_int(
      "shrink-budget", static_cast<std::int64_t>(config.shrink_budget)));
  const std::string enforce_str = flags.get_string("enforce", "on");
  if (enforce_str != "on" && enforce_str != "off") {
    std::cerr << "error: --enforce takes 'on' or 'off'\n";
    return 2;
  }
  const bool enforcing = enforce_str == "on";
  config.supervision =
      enforcing ? SupervisionMode::kEnforce : SupervisionMode::kNone;

  const IsolationReport report = run_isolation_fuzz(config);

  if (flags.get_bool("json", false)) {
    std::cout << isolation_report_json(report);
  } else {
    std::cout << "isolation: " << report.trials << " trials (" <<
        report.admitted << " admitted), m=" << report.m << ", supervision "
              << to_string(report.supervision) << ", master_seed="
              << config.master_seed << "\n"
              << "  target misses (faulted tasks):   "
              << report.target_misses << "\n"
              << "  cross misses (innocent tasks):   " << report.cross_misses
              << "\n"
              << "  enforcement events: "
              << report.counters.fault_enforcements << " ("
              << report.counters.fault_injections << " injected jobs)\n";
  }

  if (flags.has("out-dir") && !report.incidents.empty()) {
    const std::filesystem::path dir(flags.get_string("out-dir", "."));
    std::filesystem::create_directories(dir);
    for (const auto& inc : report.incidents) {
      const auto path =
          dir / ("isolation-trial" + std::to_string(inc.trial) + ".json");
      std::ofstream out(path);
      out << to_json(inc.artifact);
      std::cout << "wrote " << path.string() << "\n";
    }
  }
  for (const auto& inc : report.incidents) {
    std::cout << "INCIDENT trial " << inc.trial << " target " << inc.target
              << " plan [" << format_fault_plan(inc.plan)
              << "]: cross misses=" << inc.cross_observed.deadline_misses
              << " minimized to m=" << inc.minimized_m << ", "
              << parse_task_system(inc.minimized_text).size() << " task(s) in "
              << inc.shrink_probes << " probes\n";
  }
  // Enforcement ON claims isolation (incidents refute it); enforcement OFF
  // is the demonstration run — finding no cascade means the demo failed.
  if (enforcing) return report.incidents.empty() ? 0 : 1;
  return report.incidents.empty() ? 1 : 0;
}

int run_online(const Flags& flags) {
  OnlineFuzzConfig config;
  config.trials = static_cast<std::size_t>(flags.get_int("trials", 500));
  config.num_threads = static_cast<int>(flags.get_int("threads", 0));
  config.master_seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
  config.m = static_cast<int>(flags.get_int("m", 8));
  config.events_per_trial = static_cast<std::size_t>(flags.get_int(
      "events", static_cast<std::int64_t>(config.events_per_trial)));
  config.util_lo = flags.get_double("util-lo", config.util_lo);
  config.util_hi = flags.get_double("util-hi", config.util_hi);
  config.shrink_budget = static_cast<std::size_t>(flags.get_int(
      "shrink-budget", static_cast<std::int64_t>(config.shrink_budget)));

  const OnlineFuzzReport report = run_online_fuzz(config);

  if (flags.get_bool("json", false)) {
    std::cout << online_fuzz_report_json(report);
  } else {
    const std::uint64_t lookups = report.memo_hits + report.memo_misses;
    std::cout << "online: " << report.trials << " trials, " << report.events
              << " events (" << report.applied << " applied, "
              << report.rejected << " rejected), m=" << config.m
              << ", master_seed=" << config.master_seed << "\n"
              << "  memo: " << report.memo_hits << " hits / " << lookups
              << " lookups\n"
              << "  partition probes replayed: " << report.bins_revalidated
              << "\n";
  }

  if (flags.has("out-dir") && !report.divergences.empty()) {
    const std::filesystem::path dir(flags.get_string("out-dir", "."));
    std::filesystem::create_directories(dir);
    for (const auto& d : report.divergences) {
      const auto path =
          dir / ("online-trial" + std::to_string(d.trial) + ".trace.json");
      std::ofstream out(path);
      out << d.trace_text;
      std::cout << "wrote " << path.string() << "\n";
    }
  }
  for (const auto& d : report.divergences) {
    std::cout << "DIVERGENCE trial " << d.trial << ": " << d.detail
              << " (minimized " << d.original_events << " -> "
              << d.minimized_events << " events in " << d.shrink_probes
              << " probes)\n";
  }
  return report.divergences.empty() ? 0 : 1;
}

int run_demo() {
  const AnomalyDemoReport report = run_anomaly_demo();
  if (!report.found) {
    std::cout << "no refuting seed found within budget\n";
    return 1;
  }
  std::cout << "Graham-anomaly exhibit (same system, m, and seed "
            << report.seed << "):\n";
  print_outcome(std::cout, "kOnlineRerun   ", report.online);
  print_outcome(std::cout, "kTemplateReplay", report.replay);
  std::cout << "online LS rerun missed " << report.online.sim.deadline_misses
            << " deadline(s); template replay missed "
            << report.replay.sim.deadline_misses << "\n";
  const bool exhibited = report.online.sim.deadline_misses > 0 &&
                         report.replay.sim.deadline_misses == 0;
  return exhibited ? 0 : 1;
}

int run_harness(const Flags& flags) {
  ConformConfig config = default_conform_config();
  config.trials = static_cast<std::size_t>(flags.get_int("trials", 1000));
  config.num_threads = static_cast<int>(flags.get_int("threads", 0));
  config.master_seed =
      static_cast<std::uint64_t>(flags.get_int("seed", 1));
  config.m = static_cast<int>(flags.get_int("m", 8));
  config.sim.horizon = flags.get_int("horizon", config.sim.horizon);
  config.sim.exec_lo = flags.get_double("exec-lo", config.sim.exec_lo);
  config.sim.jitter_frac = flags.get_double("jitter", config.sim.jitter_frac);
  config.util_lo = flags.get_double("util-lo", config.util_lo);
  config.util_hi = flags.get_double("util-hi", config.util_hi);
  config.shrink_budget = static_cast<std::size_t>(
      flags.get_int("shrink-budget", static_cast<std::int64_t>(config.shrink_budget)));

  std::vector<ConformanceEntry> entries;
  if (flags.has("algos")) {
    for (const std::string& name : split_csv(flags.get_string("algos", ""))) {
      entries.push_back(find_conformance_entry(name));
    }
    if (entries.empty()) {
      std::cerr << "error: --algos selected no entries\n";
      return 2;
    }
  } else {
    entries = builtin_conformance_entries();
  }

  const ConformReport report = run_conformance(config, entries);

  if (flags.get_bool("json", false)) {
    std::cout << conform_report_json(report);
  } else {
    std::cout << "conformance: " << report.trials << " trials, m=" << report.m
              << ", master_seed=" << config.master_seed
              << ", threads=" << config.num_threads << "\n";
    for (const auto& e : report.entries) {
      std::cout << "  " << e.name << ": supported=" << e.supported
                << " admitted=" << e.admitted << " violations=" << e.violations
                << " jobs=" << e.jobs_released << "\n";
    }
    std::cout << "counters: conform_trials=" << report.counters.conform_trials
              << " conform_violations=" << report.counters.conform_violations
              << " conform_shrink_steps="
              << report.counters.conform_shrink_steps << "\n";
  }

  if (flags.has("out-dir") && !report.violations.empty()) {
    const std::filesystem::path dir(flags.get_string("out-dir", "."));
    std::filesystem::create_directories(dir);
    for (const auto& v : report.violations) {
      std::string slug = v.algorithm;
      for (char& c : slug) {
        if (c == '@' || c == '/' || c == ' ') c = '_';
      }
      const auto path =
          dir / ("conform-" + slug + "-trial" + std::to_string(v.trial) +
                 ".json");
      std::ofstream out(path);
      out << to_json(v.artifact);
      std::cout << "wrote " << path.string() << "\n";
    }
  }
  for (const auto& v : report.violations) {
    std::cout << "VIOLATION trial " << v.trial << " " << v.algorithm
              << ": misses=" << v.observed.deadline_misses
              << " minimized to m=" << v.minimized_m << ", "
              << parse_task_system(v.minimized_text).size() << " task(s) in "
              << v.shrink_probes << " probes\n";
  }
  return report.violations.empty() ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const Flags flags(argc, argv);
    static constexpr std::string_view kAllowed[] = {
        "list",    "demo-anomaly", "replay",  "isolation",     "enforce",
        "trials",  "threads",      "seed",    "m",             "horizon",
        "exec-lo", "jitter",       "util-lo", "util-hi",       "shrink-budget",
        "algos",   "out-dir",      "json",    "trace-out",     "online",
        "events",
    };
    const auto unknown = flags.unknown_keys(kAllowed);
    if (!unknown.empty() || !flags.positional().empty()) {
      for (const auto& key : unknown) {
        std::cerr << "error: unknown flag --" << key << "\n";
      }
      for (const auto& arg : flags.positional()) {
        std::cerr << "error: unexpected argument '" << arg << "'\n";
      }
      std::cerr << "usage: fedcons_conform [--list | --demo-anomaly | "
                   "--isolation | --online | --replay=FILE]\n"
                   "                       [--events N]  (online: events per "
                   "trial)\n"
                   "                       [--trials N] [--threads N] "
                   "[--seed S] [--m M] [--enforce=on|off]\n"
                   "                       [--util-lo F] [--util-hi F] "
                   "[--shrink-budget N] [--algos A,B]\n"
                   "                       [--out-dir DIR] [--json] "
                   "[--trace-out FILE]\n";
      return 2;
    }
    const std::string trace_out = flags.get_string("trace-out", "");
    if (!trace_out.empty()) obs::set_tracing_enabled(true);
    int rc;
    if (flags.get_bool("list", false)) {
      for (const auto& e : builtin_conformance_entries()) {
        std::cout << e.name << "\n";
      }
      for (const auto& e : demonstration_conformance_entries()) {
        std::cout << e.name << " (demonstration)\n";
      }
      rc = 0;
    } else if (flags.get_bool("demo-anomaly", false)) {
      rc = run_demo();
    } else if (flags.get_bool("isolation", false)) {
      rc = run_isolation(flags);
    } else if (flags.get_bool("online", false)) {
      rc = run_online(flags);
    } else if (flags.has("replay")) {
      rc = run_replay(flags.get_string("replay", ""));
    } else {
      rc = run_harness(flags);
    }
    if (!trace_out.empty()) {
      std::ofstream out(trace_out);
      if (!out) {
        std::cerr << "error: cannot write trace to '" << trace_out << "'\n";
        return 2;
      }
      obs::write_chrome_trace(out);
    }
    return rc;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }
}
