// fedcons_serve — the admission-control daemon.
//
// Usage:
//   fedcons_serve --socket=PATH | --port=N
//                 [--threads=N] [--max-batch=N] [--batch-timeout-us=N]
//                 [--queue-depth=N] [--max-frame-bytes=N]
//
// Serves the serve/protocol.h length-prefixed newline-JSON protocol:
// clients open AdmissionSessions, register task-system content, and stream
// admit/release/swap/query events; every accepted request gets exactly one
// response. --socket binds an AF_UNIX listener at PATH; --port binds TCP on
// 127.0.0.1 (0 picks a free port). Exactly one of the two must be given.
//
// Once listening the daemon prints a single readiness line to stdout —
//
//   fedcons_serve listening unix=PATH    (or tcp=PORT)
//
// — and serves until SIGTERM/SIGINT or a protocol "shutdown" request, then
// drains: accepted requests are all answered before exit, new ones are
// refused. On exit it prints the stats snapshot (server counters +
// latency/batch histograms) as one JSON line to stdout.
//
// Unknown or malformed flags exit 2 with usage. Exit 0 on a clean drain.
#include <csignal>
#include <iostream>
#include <string_view>

#include "fedcons/serve/server.h"
#include "fedcons/util/flags.h"

using namespace fedcons;

namespace {

serve::Server* g_server = nullptr;

void on_signal(int) {
  if (g_server != nullptr) g_server->request_shutdown();
}

int usage() {
  std::cerr
      << "usage: fedcons_serve --socket=PATH | --port=N\n"
         "                     [--threads=N] [--max-batch=N]\n"
         "                     [--batch-timeout-us=N] [--queue-depth=N]\n"
         "                     [--max-frame-bytes=N]\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const Flags flags(argc, argv);
    static constexpr std::string_view kAllowed[] = {
        "socket",      "port",        "threads", "max-batch",
        "batch-timeout-us", "queue-depth", "max-frame-bytes"};
    const auto unknown = flags.unknown_keys(kAllowed);
    if (!unknown.empty() || !flags.positional().empty()) {
      for (const auto& key : unknown) {
        std::cerr << "fedcons_serve: unknown flag --" << key << "\n";
      }
      for (const auto& arg : flags.positional()) {
        std::cerr << "fedcons_serve: stray argument '" << arg << "'\n";
      }
      return usage();
    }
    const bool has_socket = flags.has("socket");
    if (has_socket == flags.has("port")) {
      std::cerr << "fedcons_serve: exactly one of --socket/--port required\n";
      return usage();
    }

    serve::ServerConfig config;
    config.unix_path = flags.get_string("socket", "");
    config.tcp_port = static_cast<int>(flags.get_int("port", 0));
    config.threads = static_cast<int>(flags.get_int("threads", 1));
    config.max_batch = static_cast<int>(flags.get_int("max-batch", 64));
    config.batch_timeout_us =
        static_cast<int>(flags.get_int("batch-timeout-us", 200));
    config.queue_depth = static_cast<int>(flags.get_int("queue-depth", 1024));
    config.max_frame_bytes = static_cast<std::size_t>(
        flags.get_int("max-frame-bytes",
                      static_cast<std::int64_t>(serve::kDefaultMaxFrameBytes)));
    if (config.threads < 1 || config.max_batch < 1 ||
        config.batch_timeout_us < 0 || config.queue_depth < 1) {
      std::cerr << "fedcons_serve: flag values out of range\n";
      return usage();
    }

    serve::Server server(config);
    g_server = &server;
    std::signal(SIGTERM, on_signal);
    std::signal(SIGINT, on_signal);
    server.start();
    if (has_socket) {
      std::cout << "fedcons_serve listening unix=" << config.unix_path
                << std::endl;
    } else {
      std::cout << "fedcons_serve listening tcp=" << server.port()
                << std::endl;
    }
    server.wait();
    std::cout << server.stats_snapshot().to_json() << std::endl;
    g_server = nullptr;
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "fedcons_serve: " << e.what() << "\n";
    return 2;
  }
}
