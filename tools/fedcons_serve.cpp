// fedcons_serve — the admission-control daemon.
//
// Usage:
//   fedcons_serve --socket=PATH | --port=N
//                 [--threads=N] [--max-batch=N] [--batch-timeout-us=N]
//                 [--queue-depth=N] [--max-frame-bytes=N]
//                 [--trace-out=FILE] [--trace-sample=N]
//                 [--stats-interval-ms=N] [--stats-ring=N]
//
// Serves the serve/protocol.h length-prefixed newline-JSON protocol:
// clients open AdmissionSessions, register task-system content, and stream
// admit/release/swap/query events; every accepted request gets exactly one
// response. --socket binds an AF_UNIX listener at PATH; --port binds TCP on
// 127.0.0.1 (0 picks a free port). Exactly one of the two must be given.
//
// Once listening the daemon prints a single readiness line to stdout —
//
//   fedcons_serve listening unix=PATH    (or tcp=PORT)
//
// — and serves until SIGTERM/SIGINT or a protocol "shutdown" request, then
// drains: accepted requests are all answered before exit, new ones are
// refused. On exit it prints the stats snapshot (server counters +
// latency/batch histograms) as one JSON line to stdout.
//
// Observability (all optional; verdicts and default responses are
// bit-identical with these on or off):
//   --trace-out=FILE enables span tracing and writes a Chrome trace-event
//     JSON on exit (open in Perfetto / chrome://tracing). Request-scoped
//     spans are SAMPLED: every --trace-sample'th request (default 256 once
//     --trace-out is given) records its queue -> batch -> handle -> write
//     chain under one trace id.
//   --stats-interval-ms (default 250; 0 disables) sets the cadence of the
//     stats_series snapshot ring; --stats-ring (default 256) its capacity.
//
// Unknown or malformed flags exit 2 with usage. Exit 0 on a clean drain.
#include <csignal>
#include <fstream>
#include <iostream>
#include <string_view>

#include "fedcons/obs/span_tracer.h"
#include "fedcons/serve/server.h"
#include "fedcons/util/flags.h"

using namespace fedcons;

namespace {

serve::Server* g_server = nullptr;

void on_signal(int) {
  if (g_server != nullptr) g_server->request_shutdown();
}

int usage() {
  std::cerr
      << "usage: fedcons_serve --socket=PATH | --port=N\n"
         "                     [--threads=N] [--max-batch=N]\n"
         "                     [--batch-timeout-us=N] [--queue-depth=N]\n"
         "                     [--max-frame-bytes=N]\n"
         "                     [--trace-out=FILE] [--trace-sample=N]\n"
         "                     [--stats-interval-ms=N] [--stats-ring=N]\n";
  return 2;
}

// Writes the Chrome trace on every exit path once --trace-out is set.
struct TraceDump {
  std::string path;
  ~TraceDump() {
    if (path.empty()) return;
    std::ofstream out(path);
    if (!out) {
      std::cerr << "fedcons_serve: cannot write trace to '" << path << "'\n";
      return;
    }
    obs::write_chrome_trace(out);
  }
};

}  // namespace

int main(int argc, char** argv) {
  try {
    const Flags flags(argc, argv);
    static constexpr std::string_view kAllowed[] = {
        "socket",      "port",        "threads", "max-batch",
        "batch-timeout-us", "queue-depth", "max-frame-bytes",
        "trace-out",   "trace-sample", "stats-interval-ms", "stats-ring"};
    const auto unknown = flags.unknown_keys(kAllowed);
    if (!unknown.empty() || !flags.positional().empty()) {
      for (const auto& key : unknown) {
        std::cerr << "fedcons_serve: unknown flag --" << key << "\n";
      }
      for (const auto& arg : flags.positional()) {
        std::cerr << "fedcons_serve: stray argument '" << arg << "'\n";
      }
      return usage();
    }
    const bool has_socket = flags.has("socket");
    if (has_socket == flags.has("port")) {
      std::cerr << "fedcons_serve: exactly one of --socket/--port required\n";
      return usage();
    }

    serve::ServerConfig config;
    config.unix_path = flags.get_string("socket", "");
    config.tcp_port = static_cast<int>(flags.get_int("port", 0));
    config.threads = static_cast<int>(flags.get_int("threads", 1));
    config.max_batch = static_cast<int>(flags.get_int("max-batch", 64));
    config.batch_timeout_us =
        static_cast<int>(flags.get_int("batch-timeout-us", 200));
    config.queue_depth = static_cast<int>(flags.get_int("queue-depth", 1024));
    config.max_frame_bytes = static_cast<std::size_t>(
        flags.get_int("max-frame-bytes",
                      static_cast<std::int64_t>(serve::kDefaultMaxFrameBytes)));
    TraceDump trace_dump;
    trace_dump.path = flags.get_string("trace-out", "");
    // Sampling defaults on with the trace sink: 1-in-256 keeps the span
    // buffers bounded under load while still catching requests steadily.
    config.trace_sample = static_cast<int>(
        flags.get_int("trace-sample", trace_dump.path.empty() ? 0 : 256));
    config.stats_interval_ms =
        static_cast<int>(flags.get_int("stats-interval-ms", 250));
    config.stats_ring = static_cast<int>(flags.get_int("stats-ring", 256));
    if (config.threads < 1 || config.max_batch < 1 ||
        config.batch_timeout_us < 0 || config.queue_depth < 1 ||
        config.trace_sample < 0 || config.stats_interval_ms < 0 ||
        config.stats_ring < 1) {
      std::cerr << "fedcons_serve: flag values out of range\n";
      return usage();
    }
    if (!trace_dump.path.empty()) obs::set_tracing_enabled(true);

    serve::Server server(config);
    g_server = &server;
    std::signal(SIGTERM, on_signal);
    std::signal(SIGINT, on_signal);
    server.start();
    if (has_socket) {
      std::cout << "fedcons_serve listening unix=" << config.unix_path
                << std::endl;
    } else {
      std::cout << "fedcons_serve listening tcp=" << server.port()
                << std::endl;
    }
    server.wait();
    std::cout << server.stats_snapshot().to_json() << std::endl;
    g_server = nullptr;
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "fedcons_serve: " << e.what() << "\n";
    return 2;
  }
}
