// Quickstart: the fedcons public API in ~60 lines.
//
//  1. Describe sporadic DAG tasks (here: the paper's Figure-1 example plus
//     a genuinely parallel high-density task).
//  2. Run Algorithm FEDCONS to map them onto a multiprocessor platform.
//  3. Replay the allocation in the discrete-event simulator and confirm
//     zero deadline misses.
//
// Build & run:  cmake -B build -G Ninja && cmake --build build
//               ./build/examples/quickstart
#include <iostream>

#include "fedcons/core/builders.h"
#include "fedcons/sim/system_sim.h"

using namespace fedcons;

int main() {
  // --- 1. Describe the workload. -----------------------------------------
  TaskSystem system;

  // The paper's Figure-1 task: 5 jobs, 5 precedence edges, D=16, T=20.
  system.add(make_paper_example_task());

  // A parallel sensor-fusion stage: fan-out of eight 1-tick jobs that must
  // all finish within 2 ticks — density 4, impossible on any single
  // processor, ideal for a dedicated federated cluster.
  Dag fusion;
  for (int i = 0; i < 8; ++i) fusion.add_vertex(1);
  system.add(DagTask(std::move(fusion), /*deadline=*/2, /*period=*/10,
                     "sensor-fusion"));

  // A light periodic logger, built with the fluent builder.
  Dag logger = DagBuilder{}.vertices({2, 1}).edge(0, 1).build();
  system.add(DagTask(std::move(logger), /*deadline=*/12, /*period=*/40,
                     "logger"));

  std::cout << system.summary() << "\n";

  // --- 2. Schedule with FEDCONS. ------------------------------------------
  const int m = 6;
  FedconsResult allocation = fedcons_schedule(system, m);
  std::cout << allocation.describe(system);
  if (!allocation.success) return 1;

  // --- 3. Validate at run time. -------------------------------------------
  SimConfig sim;
  sim.horizon = 100000;
  sim.release = ReleaseModel::kSporadic;  // legal sporadic arrivals
  sim.exec = ExecModel::kUniform;         // jobs often finish early
  sim.exec_lo = 0.5;
  SystemSimReport report = simulate_system(system, allocation, sim);

  std::cout << "\nSimulated " << report.total.jobs_released
            << " dag-jobs over " << sim.horizon << " ticks: "
            << report.total.deadline_misses << " deadline misses, max "
            << "response time " << report.total.max_response_time
            << " ticks.\n";
  return report.total.deadline_misses == 0 ? 0 : 1;
}
