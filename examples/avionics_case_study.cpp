// Case study: an avionics-style flight-control workload.
//
// The paper's introduction motivates the sporadic DAG model with "complex
// multi-threaded computations … naturally expressed as directed acyclic
// graphs". This example models a representative integrated-modular-avionics
// partition (time units: 100 µs ticks) and walks the full workflow:
// analysis → allocation → platform sizing → run-time validation.
//
// Workload (periods/deadlines loosely follow classic flight-control rates):
//   * flight-control law  — 5 ms period, 2.5 ms deadline: fork–join over the
//     three axes with a fusion source and an actuator sink. High density:
//     must run on a dedicated cluster.
//   * navigation/EKF      — 20 ms period, 10 ms deadline: layered update
//     pipeline (predict → per-sensor correct → commit).
//   * air-data sampling   — 10 ms, tight 2 ms deadline, tiny chain.
//   * telemetry downlink  — 100 ms, relaxed deadline, sequential frame pack.
//   * health monitoring   — 50 ms, sporadic, small diamond.
#include <iostream>

#include "fedcons/analysis/feasibility.h"
#include "fedcons/core/builders.h"
#include "fedcons/federated/sensitivity.h"
#include "fedcons/federated/speedup.h"
#include "fedcons/sim/system_sim.h"
#include "fedcons/util/table.h"

using namespace fedcons;

namespace {

DagTask flight_control_law() {
  // fuse(2) → {roll(8), pitch(8), yaw(8), filters(10)} → actuate(3)
  Dag g = DagBuilder{}
              .vertices({2, 8, 8, 8, 10, 3})
              .fan_out(0, {1, 2, 3, 4})
              .fan_in({1, 2, 3, 4}, 5)
              .build();
  // vol = 39, len = 15; D = 25 ticks (2.5 ms), T = 50 (5 ms): δ = 39/25 > 1.
  return DagTask(std::move(g), 25, 50, "flight-control-law");
}

DagTask navigation_ekf() {
  // predict(12) → {gps(6), imu(4), baro(3)} → commit(8)
  Dag g = DagBuilder{}
              .vertices({12, 6, 4, 3, 8})
              .fan_out(0, {1, 2, 3})
              .fan_in({1, 2, 3}, 4)
              .build();
  return DagTask(std::move(g), 100, 200, "navigation-ekf");
}

DagTask air_data() {
  Time wcets[] = {3, 4};
  return DagTask(make_chain(wcets), 20, 100, "air-data");
}

DagTask telemetry() {
  Time wcets[] = {10, 14, 6};
  return DagTask(make_chain(wcets), 600, 1000, "telemetry");
}

DagTask health_monitor() {
  Dag g = DagBuilder{}
              .vertices({2, 5, 4, 2})
              .edge(0, 1)
              .edge(0, 2)
              .edge(1, 3)
              .edge(2, 3)
              .build();
  return DagTask(std::move(g), 250, 500, "health-monitor");
}

}  // namespace

int main() {
  TaskSystem system;
  system.add(flight_control_law());
  system.add(navigation_ekf());
  system.add(air_data());
  system.add(telemetry());
  system.add(health_monitor());

  std::cout << "Avionics partition workload (1 tick = 100 us):\n"
            << system.summary() << "\n";

  // Platform sizing: smallest processor count FEDCONS accepts.
  std::cout << "== Platform sizing\n";
  Table sizing({"m", "necessary conditions", "FEDCONS verdict"});
  int chosen_m = -1;
  for (int m = 1; m <= 6; ++m) {
    bool nec = passes_necessary_conditions(system, m);
    bool fed = fedcons_schedulable(system, m);
    if (fed && chosen_m < 0) chosen_m = m;
    sizing.add_row({fmt_int(m), nec ? "pass" : "FAIL",
                    fed ? "schedulable" : "rejected"});
  }
  sizing.print(std::cout);
  if (chosen_m < 0) {
    std::cout << "No platform up to 6 cores suffices.\n";
    return 1;
  }
  std::cout << "→ deploy on " << chosen_m << " cores.\n\n";

  // Show the allocation on the chosen platform.
  FedconsResult alloc = fedcons_schedule(system, chosen_m);
  std::cout << alloc.describe(system) << "\n";

  // Safety margin: how much slower could the silicon be?
  auto speed = min_speed(system, chosen_m,
                         [](const TaskSystem& s, int m) {
                           return fedcons_schedulable(s, m);
                         });
  if (speed.has_value()) {
    std::cout << "Minimum processor speed for schedulability: " << *speed
              << "x (theoretical worst-case need: "
              << fedcons_speedup_bound(chosen_m) << "x)\n\n";
  }

  // WCET sensitivity: which task constrains the design, and by how much
  // could each execution budget grow before the verdict flips?
  std::cout << "== WCET sensitivity on " << chosen_m << " cores\n";
  Table margins({"task", "WCET growth margin"});
  SensitivityTest accept = [](const TaskSystem& s, int m) {
    return fedcons_schedulable(s, m);
  };
  for (const auto& tm : wcet_sensitivity(system, chosen_m, accept)) {
    margins.add_row({system[tm.task].name(),
                     fmt_double(tm.margin, 2) + "x"});
  }
  margins.add_row({"(all tasks together)",
                   fmt_double(system_wcet_margin(system, chosen_m, accept), 2) +
                       "x"});
  margins.print(std::cout);
  std::cout << "\n";

  // Run-time validation: one second of flight (10,000 ticks) with sporadic
  // releases and variable execution times.
  SimConfig sim;
  sim.horizon = 10000;
  sim.release = ReleaseModel::kSporadic;
  sim.jitter_frac = 0.2;
  sim.exec = ExecModel::kUniform;
  sim.exec_lo = 0.6;
  sim.seed = 7;
  SystemSimReport report = simulate_system(system, alloc, sim);
  std::cout << "Simulated 1 s of operation: " << report.total.jobs_released
            << " dag-jobs, " << report.total.deadline_misses
            << " deadline misses.\n";
  for (std::size_t c = 0; c < report.cluster_stats.size(); ++c) {
    std::cout << "  cluster " << c << ": busy "
              << fmt_double(report.cluster_stats[c].busy_fraction * 100, 1)
              << "%, max response "
              << report.cluster_stats[c].max_response_time << " ticks\n";
  }
  for (std::size_t p = 0; p < report.shared_stats.size(); ++p) {
    std::cout << "  shared proc " << p << ": busy "
              << fmt_double(report.shared_stats[p].busy_fraction * 100, 1)
              << "%, max response "
              << report.shared_stats[p].max_response_time << " ticks\n";
  }
  return report.total.deadline_misses == 0 ? 0 : 1;
}
