// Demonstration of Graham's timing anomaly — why FEDCONS replays template
// schedules instead of re-running the list scheduler online (paper,
// footnote 2).
//
// Walks through the classic 9-job instance slot by slot: the WCET-based
// template finishes at 12; when every job runs one tick FASTER, an online
// re-run of LS finishes at 13 and would miss a deadline of 12.
#include <iostream>

#include "fedcons/listsched/anomaly.h"
#include "fedcons/listsched/list_scheduler.h"
#include "fedcons/sim/gantt.h"
#include "fedcons/util/table.h"

using namespace fedcons;

namespace {

void print_schedule(const char* title, const TemplateSchedule& s) {
  std::cout << title << " (makespan " << s.makespan() << ", "
            << s.num_processors() << " processors):\n";
  Table t({"job", "processor", "start", "finish"});
  for (const auto& slot : s.jobs()) {
    t.add_row({"v" + std::to_string(slot.vertex), fmt_int(slot.processor),
               fmt_int(slot.start), fmt_int(slot.finish)});
  }
  t.print(std::cout);
  std::cout << render_gantt(s) << "\n";
}

}  // namespace

int main() {
  AnomalyInstance inst = make_graham_anomaly_instance();

  std::cout << "Graham's 9-job anomaly instance on " << inst.processors
            << " processors.\nDAG:\n"
            << inst.dag.to_dot("graham") << "\n";

  TemplateSchedule wcet_schedule =
      list_schedule(inst.dag, inst.processors);
  print_schedule("List schedule with full WCETs", wcet_schedule);

  TemplateSchedule reduced_schedule = list_schedule_with_exec_times(
      inst.dag, inst.processors, inst.reduced_exec_times);
  print_schedule("List schedule RE-RUN with every job one tick shorter",
                 reduced_schedule);

  std::cout << "Every job became FASTER, yet the re-run schedule grew from "
            << inst.wcet_makespan << " to " << inst.reduced_makespan
            << " ticks.\n"
            << "With a relative deadline of " << inst.wcet_makespan
            << ", online re-scheduling misses; FEDCONS's rule — replay the\n"
            << "WCET template as a lookup table and idle early-completing "
               "slots — is immune:\n";

  Time replay_completion = 0;
  for (const auto& slot : wcet_schedule.jobs()) {
    replay_completion = std::max(
        replay_completion, slot.start + inst.reduced_exec_times[slot.vertex]);
  }
  std::cout << "  template-replay completion with the same shorter times: "
            << replay_completion << " <= " << inst.wcet_makespan << "  OK\n";
  return 0;
}
