// Demonstration of the paper's Example 2: why capacity augmentation bounds
// are the wrong metric for constrained-deadline systems.
//
// The family τ(n) = { n tasks, each a single job with C = 1, D = 1, T = n }
// satisfies both premises of a capacity augmentation bound — U_sum ≈ 1 ≤ m
// and len_i ≤ D_i — yet at the synchronous release instant it demands n
// units of work inside a 1-tick window. No fixed speedup rescues a single
// processor as n grows, so "the capacity augmentation bound of any
// scheduling algorithm is necessarily zero" and the paper adopts SPEEDUP
// bounds instead.
#include <iostream>

#include "fedcons/analysis/feasibility.h"
#include "fedcons/core/builders.h"
#include "fedcons/federated/fedcons_algorithm.h"
#include "fedcons/util/table.h"

using namespace fedcons;

int main() {
  std::cout << "Paper Example 2: tau_i = single job, C=1, D=1, T=n\n\n";
  Table t({"n", "U_sum", "len<=D", "feasible on m=n", "feasible on m=n-1",
           "FEDCONS min m"});
  for (int n = 2; n <= 10; ++n) {
    TaskSystem sys = make_capacity_augmentation_counterexample(n);
    int min_m = -1;
    for (int m = 1; m <= n; ++m) {
      if (fedcons_schedulable(sys, m)) {
        min_m = m;
        break;
      }
    }
    t.add_row({fmt_int(n), sys.total_utilization().to_string(), "yes",
               passes_necessary_conditions(sys, n) ? "maybe (nec. pass)"
                                                   : "no",
               passes_necessary_conditions(sys, n - 1) ? "maybe" : "NO",
               fmt_int(min_m)});
  }
  t.print(std::cout);
  std::cout
      << "\nReading: total utilization stays at 1 while the processors\n"
         "required grow linearly with n — a speed-b single processor (any\n"
         "fixed b) fails once n > b, so no capacity augmentation bound\n"
         "exists. FEDCONS handles the family by dedicating one processor\n"
         "per task (each has density exactly 1).\n";
  return 0;
}
