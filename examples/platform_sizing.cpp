// Design-space exploration: sizing a multiprocessor platform for a random
// mixed workload under different scheduling strategies.
//
// For a batch of randomly generated constrained-deadline DAG workloads,
// finds the smallest processor count each strategy needs, quantifying the
// paper's motivation for federated scheduling: pure partitioning cannot
// host high-density tasks AT ALL, while FEDCONS sizes within a small factor
// of the necessary-condition lower bound.
//
// Flags: --workloads=N (default 25) --tasks=N (default 10) --util=U (4.0)
#include <iostream>

#include "fedcons/analysis/feasibility.h"
#include "fedcons/baselines/partitioned_seq.h"
#include "fedcons/federated/fedcons_algorithm.h"
#include "fedcons/federated/federated_implicit.h"
#include "fedcons/gen/taskset_gen.h"
#include "fedcons/util/flags.h"
#include "fedcons/util/stats.h"
#include "fedcons/util/table.h"

using namespace fedcons;

namespace {

/// Smallest m in [1, cap] accepted by `test`, or -1.
template <typename Test>
int min_processors(const TaskSystem& sys, int cap, Test&& test) {
  for (int m = 1; m <= cap; ++m) {
    if (test(sys, m)) return m;
  }
  return -1;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const int workloads = static_cast<int>(flags.get_int("workloads", 25));
  const int tasks = static_cast<int>(flags.get_int("tasks", 10));
  const double util = flags.get_double("util", 4.0);
  constexpr int kCap = 64;

  TaskSetParams params;
  params.num_tasks = tasks;
  params.total_utilization = util;
  params.utilization_cap = util;
  params.period_min = 100;
  params.period_max = 20000;
  params.topology = DagTopology::kMixed;

  Rng rng(20250707);
  Table t({"workload", "high-density tasks", "NEC lower bound", "FEDCONS",
           "FED-LI-adapt", "P-SEQ"});
  OnlineStats overhead;
  int pseq_impossible = 0;
  for (int w = 0; w < workloads; ++w) {
    Rng sys_rng = rng.split();
    TaskSystem sys = generate_task_system(sys_rng, params);
    int nec = min_processors(sys, kCap, [](const TaskSystem& s, int m) {
      return passes_necessary_conditions(s, m);
    });
    int fed = min_processors(sys, kCap, [](const TaskSystem& s, int m) {
      return fedcons_schedulable(s, m);
    });
    int li = min_processors(sys, kCap, [](const TaskSystem& s, int m) {
      return li_federated_constrained_adaptation(s, m).success;
    });
    int pseq = min_processors(sys, kCap, [](const TaskSystem& s, int m) {
      return partitioned_sequential_schedulable(s, m);
    });
    if (pseq < 0) ++pseq_impossible;
    if (fed > 0 && nec > 0) {
      overhead.add(static_cast<double>(fed) / static_cast<double>(nec));
    }
    t.add_row({fmt_int(w),
               fmt_int(static_cast<long long>(sys.high_density_tasks().size())),
               fmt_int(nec), fmt_int(fed), fmt_int(li),
               pseq < 0 ? "impossible" : fmt_int(pseq)});
  }
  t.print(std::cout);
  std::cout << "\nFEDCONS processor count vs necessary lower bound: mean "
            << fmt_double(overhead.mean(), 3) << "x, max "
            << fmt_double(overhead.max(), 3) << "x (worst-case theory: "
            << "3 - 1/m).\nPure partitioning could not host "
            << pseq_impossible << "/" << workloads
            << " workloads at ANY platform size (high-density tasks need "
               "federation).\n";
  return 0;
}
