// Demonstration of the arbitrary-deadline extension (paper §V future work):
// a streaming pipeline whose per-item latency budget exceeds its input rate.
//
// Scenario: a radar processing chain ingests a new dwell every 2 ms but may
// take up to 10 ms to fully process one (D = 5·T) — so up to five dwells are
// in flight simultaneously. Constrained-deadline FEDCONS cannot express
// this; the pipelined-cluster strategy dedicates k = ⌈makespan/T⌉ template
// instances and round-robins dag-jobs across them.
#include <iostream>

#include "fedcons/core/builders.h"
#include "fedcons/federated/arbitrary.h"
#include "fedcons/sim/cluster_sim.h"
#include "fedcons/sim/gantt.h"

using namespace fedcons;

int main() {
  // The per-dwell DAG (ticks = 100 µs): ingest → {beamform, doppler} →
  // detect → track-update. vol = 86, len = 62.
  Dag g = DagBuilder{}
              .vertices({6, 30, 24, 20, 6})
              .fan_out(0, {1, 2})
              .fan_in({1, 2}, 3)
              .edge(3, 4)
              .build();
  TaskSystem sys;
  sys.add(DagTask(std::move(g), /*deadline=*/100, /*period=*/20,
                  "radar-dwell"));
  std::cout << sys.summary() << "\n";

  // Clamping to the period is hopeless: len 62 > T 20.
  bool clamped_ok = arbitrary_federated_schedulable(
      sys, 64, ArbitraryStrategy::kClampToPeriod);
  std::cout << "clamp-to-period on 64 processors: "
            << (clamped_ok ? "schedulable" : "REJECTED (len > T)") << "\n";

  // The pipelined strategy sizes instances automatically.
  auto arb = arbitrary_federated_schedule(sys, 16,
                                          ArbitraryStrategy::kPipelined);
  std::cout << arb.describe(sys) << "\n";
  if (!arb.success) return 1;
  const auto& cluster = arb.clusters[0];
  std::cout << "Template schedule per instance:\n"
            << render_gantt(cluster.sigma) << "\n";

  // Validate at run time: sporadic dwell arrivals, early completions; the
  // simulator also proves no two dag-jobs ever collide on a processor.
  SimConfig cfg;
  cfg.horizon = 100000;
  cfg.release = ReleaseModel::kSporadic;
  cfg.jitter_frac = 0.25;
  cfg.exec = ExecModel::kUniform;
  cfg.exec_lo = 0.6;
  Rng rng(11);
  auto releases = generate_releases(sys[0], cfg, rng);
  ExecutionTrace trace;
  SimStats stats = simulate_pipelined_cluster(
      sys[0], cluster.sigma, cluster.instances, releases, cfg, &trace);
  auto violation = trace.validate();
  std::cout << "Simulated " << stats.jobs_released << " dwells: "
            << stats.deadline_misses << " deadline misses, max latency "
            << stats.max_response_time << " ticks (budget "
            << sys[0].deadline() << "); trace "
            << (violation ? "INVALID: " + *violation : "validated clean")
            << ".\n\nFirst 200 ticks across the cluster ("
            << cluster.total_processors() << " processors, "
            << cluster.instances << " instances):\n";
  GanttOptions window;
  window.end = 200;
  std::cout << render_gantt(trace, cluster.total_processors(), window);
  return stats.deadline_misses == 0 && !violation ? 0 : 1;
}
